// Detect tandem repeats in DNA — the genomic side of the paper's title
// (microsatellite/minisatellite-style repeats; the paper motivates repeats
// in genomes down to 2-3 nucleotides and disease-associated expansions).
//
//   $ ./dna_tandem_repeats                         # synthetic ground truth
//   $ ./dna_tandem_repeats --fasta reads.fa        # scan every record
//
// For the synthetic case the implanted truth is printed next to the
// detected regions so recall is visible at a glance.
#include <iostream>

#include "core/consensus.hpp"
#include "core/delineate.hpp"
#include "core/top_alignment_finder.hpp"
#include "seq/fasta.hpp"
#include "seq/generator.hpp"
#include "util/args.hpp"

namespace {

void scan(const repro::seq::Sequence& dna, int tops_wanted) {
  using namespace repro;
  core::FinderOptions opt;
  opt.num_top_alignments = tops_wanted;
  opt.min_score = 16;  // skip chance self-matches of random background
  // BLAST-like DNA metric. (The paper's running-example metric — match +2,
  // mismatch -1, gap 2+L — is illustrative only: on long random DNA it is
  // in the *linear* score regime, where spurious self-alignments grow with
  // length and swamp real repeats.)
  const seq::Scoring metric{seq::ScoreMatrix::dna(2, -3), seq::GapPenalty{5, 2}};
  const auto res = core::find_top_alignments(dna, metric, opt);
  std::cout << dna.name() << " (" << dna.length() << " bp): "
            << res.tops.size() << " top alignments";
  if (!res.tops.empty())
    std::cout << ", best score " << res.tops.front().score;
  std::cout << '\n';

  core::DelineateOptions dopt;
  dopt.min_region = 12;
  dopt.min_support = 6;
  const auto regions = core::delineate_repeats(dna, res.tops, dopt);
  for (const auto& region : regions) {
    std::cout << "  repeat region [" << region.begin << ", " << region.end
              << ")  unit ~" << region.period << " bp, ~" << region.copies
              << " copies\n";
    const core::RepeatProfile profile = core::build_profile(dna, region);
    if (profile.period > 0) {
      std::cout << "    consensus (phase-tuned @" << profile.begin
                << "): " << profile.consensus << "\n    copy identities:";
      for (const double identity : profile.copy_identity)
        std::cout << ' ' << static_cast<int>(identity * 100 + 0.5) << '%';
      std::cout << "  (mean "
                << static_cast<int>(profile.mean_identity * 100 + 0.5)
                << "%)\n";
    }
  }
  if (regions.empty()) std::cout << "  no repeat regions above thresholds\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"length", "synthetic sequence length"},
                   {"unit", "implanted repeat unit length"},
                   {"copies", "implanted copies"},
                   {"seed", "generator seed"},
                   {"tops", "top alignments per sequence"},
                   {"fasta", "scan records from this FASTA file instead"}});
  if (args.help_requested()) return 0;
  const int tops = static_cast<int>(args.get_int("tops", 12));

  if (args.has("fasta")) {
    const auto records =
        seq::read_fasta_file(args.get("fasta", ""), seq::Alphabet::dna());
    for (const auto& record : records) scan(record, tops);
    return 0;
  }

  const int length = static_cast<int>(args.get_int("length", 600));
  const int unit = static_cast<int>(args.get_int("unit", 18));
  const int copies = static_cast<int>(args.get_int("copies", 9));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto g = seq::synthetic_dna_tandem(length, unit, copies, seed);

  std::cout << "implanted ground truth: " << g.copies.size() << " copies of a "
            << unit << " bp unit at [" << g.copies.front().begin << ", "
            << g.copies.back().end << ")\n\n";
  scan(g.sequence, tops);
  return 0;
}
