// Scan a large titin-like protein for internal repeats — the paper's
// headline workload (§1: "processing the longest known proteins").
//
//   $ ./titin_scan [--length 3000] [--tops 25] [--engine simd|scalar]
//   $ ./titin_scan --fasta my_protein.fa    # scan a real protein instead
//
// Prints the top alignments, the delineated repeat regions, and finder
// statistics (realignments avoided, cells/s) for the chosen engine.
#include <iostream>

#include "align/engine.hpp"
#include "core/delineate.hpp"
#include "core/top_alignment_finder.hpp"
#include "seq/fasta.hpp"
#include "seq/generator.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"length", "synthetic titin length (default 3000)"},
                   {"tops", "top alignments to compute (paper: 10-30+)"},
                   {"seed", "generator seed"},
                   {"engine",
                    "scalar | striped | simd4 | simd8 | simd16 | simd4x32 | "
                    "simd8x32 | best"},
                   {"fasta", "scan the first record of this FASTA file instead"},
                   {"show", "how many alignments to render"}});
  if (args.help_requested()) return 0;

  const int length = static_cast<int>(args.get_int("length", 3000));
  const int tops = static_cast<int>(args.get_int("tops", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2003));
  const int show = static_cast<int>(args.get_int("show", 3));

  std::unique_ptr<align::Engine> engine;
  const std::string kind = args.get("engine", "best");
  if (kind == "scalar") engine = align::make_engine(align::EngineKind::kScalar);
  else if (kind == "striped") engine = align::make_engine(align::EngineKind::kScalarStriped);
  else if (kind == "simd4") engine = align::make_engine(align::EngineKind::kSimd4);
  else if (kind == "simd8") engine = align::make_engine(align::EngineKind::kSimd8);
  else if (kind == "simd16") engine = align::make_engine(align::EngineKind::kSimd16);
  else if (kind == "simd4x32") engine = align::make_engine(align::EngineKind::kSimd4x32);
  else if (kind == "simd8x32") engine = align::make_engine(align::EngineKind::kSimd8x32);
  else engine = align::make_best_engine();

  seq::Sequence protein("empty", {}, seq::Alphabet::protein());
  if (args.has("fasta")) {
    auto records = seq::read_fasta_file(args.get("fasta", ""), seq::Alphabet::protein());
    if (records.empty()) {
      std::cerr << "no records in " << args.get("fasta", "") << '\n';
      return 1;
    }
    protein = std::move(records.front());
  } else {
    protein = seq::synthetic_titin(length, seed).sequence;
  }
  std::cout << "scanning " << protein.name() << " (" << protein.length()
            << " aa) with engine " << engine->name() << " ("
            << engine->lanes() << " lanes)\n";

  core::FinderOptions opt;
  opt.num_top_alignments = tops;
  const auto res = core::find_top_alignments(
      protein, seq::Scoring::protein_default(), opt, *engine);

  std::cout << "\nfound " << res.tops.size() << " top alignments in "
            << res.stats.seconds << " s ("
            << static_cast<double>(res.stats.cells) / res.stats.seconds / 1e6
            << " Mcells/s)\n";
  std::cout << "realignments: " << res.stats.realignments << " of "
            << res.stats.first_alignments << " rectangles x " << res.tops.size()
            << " tops (best-first ordering, paper: 90-97 % avoided)\n\n";

  util::Table table({"top", "split r", "score", "prefix range", "suffix range",
                     "pairs"});
  for (std::size_t t = 0; t < res.tops.size(); ++t) {
    const auto& top = res.tops[t];
    table.add_row({static_cast<long long>(t + 1), static_cast<long long>(top.r),
                   static_cast<long long>(top.score),
                   std::to_string(top.prefix_begin()) + ".." + std::to_string(top.prefix_end()),
                   std::to_string(top.suffix_begin()) + ".." + std::to_string(top.suffix_end()),
                   static_cast<long long>(top.pairs.size())});
  }
  table.print(std::cout);

  for (int t = 0; t < std::min<int>(show, static_cast<int>(res.tops.size())); ++t) {
    std::cout << "\ntop " << t + 1 << ":\n"
              << core::render(res.tops[static_cast<std::size_t>(t)], protein);
  }

  const auto regions = core::delineate_repeats(protein, res.tops);
  std::cout << "\ndelineated repeat regions:\n";
  for (const auto& region : regions) {
    std::cout << "  [" << region.begin << ", " << region.end << ")  period ~"
              << region.period << "  ~" << region.copies << " copies  ("
              << region.support << " pairs)\n";
  }
  if (regions.empty()) std::cout << "  (none above thresholds)\n";
  return 0;
}
