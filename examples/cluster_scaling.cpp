// Run the same repeats search on all three parallel substrates and compare:
//   1. the sequential finder,
//   2. the shared-memory finder (§4.2, worker threads),
//   3. the distributed master/worker finder (§4.3) over the in-process
//      MPI-shaped substrate,
//   4. the virtual 128-CPU cluster (the Fig.-8 simulator).
// All four must report byte-identical top alignments — the determinism the
// whole design hinges on.
//
//   $ ./cluster_scaling [--length 800] [--tops 10] [--threads 4] [--ranks 4]
#include <iostream>

#include "cluster/master_worker.hpp"
#include "cluster/virtual_cluster.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "parallel/parallel_finder.hpp"
#include "seq/generator.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"length", "synthetic titin length"},
                   {"tops", "top alignments"},
                   {"threads", "shared-memory worker threads"},
                   {"ranks", "distributed ranks (incl. master)"},
                   {"seed", "generator seed"}});
  if (args.help_requested()) return 0;
  const int length = static_cast<int>(args.get_int("length", 800));
  const int tops = static_cast<int>(args.get_int("tops", 10));
  const int threads = static_cast<int>(args.get_int("threads", 4));
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2003));

  const auto g = seq::synthetic_titin(length, seed);
  const seq::Scoring scoring = seq::Scoring::protein_default();
  core::FinderOptions opt;
  opt.num_top_alignments = tops;
  const auto factory = align::engine_factory(align::EngineKind::kScalar);

  std::cout << "sequence: " << g.sequence.name() << " (" << length << " aa), "
            << tops << " top alignments\n\n";

  // 1. Sequential.
  const auto engine = align::make_engine(align::EngineKind::kScalar);
  const auto seq_res = core::find_top_alignments(g.sequence, scoring, opt, *engine);
  std::cout << "sequential:      " << seq_res.stats.seconds << " s, "
            << seq_res.stats.realignments << " realignments\n";

  // 2. Shared memory.
  parallel::ParallelOptions popt;
  popt.threads = threads;
  popt.finder = opt;
  const auto smp_res =
      parallel::find_top_alignments_parallel(g.sequence, scoring, popt, factory);
  std::cout << "shared-memory (" << threads << " threads): "
            << smp_res.stats.seconds << " s\n";

  // 3. Distributed master/worker.
  cluster::ClusterOptions copt;
  copt.ranks = ranks;
  copt.finder = opt;
  cluster::ClusterRunInfo info;
  const auto mpi_res = cluster::find_top_alignments_cluster(
      g.sequence, scoring, copt, factory, &info);
  std::cout << "distributed (" << ranks << " ranks):   "
            << mpi_res.stats.seconds << " s, " << info.messages
            << " messages, " << info.row_replicas_served
            << " row replicas served\n";

  // 4. Virtual 128-CPU cluster.
  const auto oracle_engine = align::make_engine(align::EngineKind::kScalar);
  cluster::AlignmentOracle oracle(g.sequence, scoring, *oracle_engine);
  cluster::ClusterModel model;
  model.processors = 128;
  model.worker_cells_per_sec = 5e8;
  model.traceback_cells_per_sec = 5e8;
  const auto sim = cluster::simulate_cluster(oracle, model, opt);
  model.processors = 1;
  const auto sim1 = cluster::simulate_cluster(oracle, model, opt);
  std::cout << "virtual cluster: 128 CPUs would take " << sim.makespan_sec
            << " virtual s (vs " << sim1.makespan_sec
            << " s on one; speedup " << sim1.makespan_sec / sim.makespan_sec
            << ")\n\n";

  // Cross-check: all paths must produce identical top alignments.
  std::string diff;
  bool ok = core::same_tops(seq_res.tops, smp_res.tops, &diff);
  if (ok) ok = core::same_tops(seq_res.tops, mpi_res.tops, &diff);
  if (ok) ok = core::same_tops(seq_res.tops, oracle.accepted(), &diff);
  if (!ok) {
    std::cerr << "DETERMINISM VIOLATION: " << diff << '\n';
    return 1;
  }
  std::cout << "all four substrates produced identical top alignments [OK]\n";
  std::cout << "best alignment: " << core::summary(seq_res.tops.front()) << '\n';
  return 0;
}
