// Quickstart: find and display the top alignments and repeats of a small
// sequence — the paper's own running examples.
//
//   $ ./quickstart
//
// Walks through: (1) the Fig.-2 pairwise alignment, (2) the Fig.-4
// nonoverlapping top alignments of ATGCATGCATGC, (3) repeat delineation.
#include <iostream>

#include "align/engine.hpp"
#include "core/delineate.hpp"
#include "core/top_alignment_finder.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"

int main() {
  using namespace repro;

  // --- 1. A single local alignment (paper Fig. 2) -------------------------
  // Rectangle view: vertical prefix ATTGCGA vs horizontal suffix CTTACAGA.
  const auto fig2 =
      seq::Sequence::from_string("fig2", "ATTGCGACTTACAGA", seq::Alphabet::dna());
  const seq::Scoring metric = seq::Scoring::paper_example();

  core::FinderOptions one;
  one.num_top_alignments = 1;
  const auto pair_result = core::find_top_alignments(fig2, metric, one);
  std::cout << "Fig. 2 — best local alignment of ATTGCGA vs CTTACAGA "
            << "(match +2, mismatch -1, gap 2+L):\n"
            << core::render(pair_result.tops.at(0), fig2)
            << "score = " << pair_result.tops.at(0).score << " (paper: 6)\n\n";

  // --- 2. Nonoverlapping top alignments (paper Fig. 4) --------------------
  const auto fig4 =
      seq::Sequence::from_string("fig4", "ATGCATGCATGC", seq::Alphabet::dna());
  core::FinderOptions three;
  three.num_top_alignments = 3;
  const auto tops = core::find_top_alignments(fig4, metric, three);
  std::cout << "Fig. 4 — the three top alignments of ATGCATGCATGC:\n";
  for (std::size_t t = 0; t < tops.tops.size(); ++t) {
    std::cout << "top " << t + 1 << ": " << core::summary(tops.tops[t]) << '\n'
              << core::render(tops.tops[t], fig4);
  }

  // --- 3. Repeat delineation (Repro phase 2) ------------------------------
  core::DelineateOptions dopt;  // tiny toy sequence: lower the thresholds
  dopt.min_region = 4;
  dopt.min_support = 3;
  dopt.max_gap = 2;
  const auto regions = core::delineate_repeats(fig4, tops.tops, dopt);
  std::cout << "\nDelineated repeat regions:\n";
  for (const auto& region : regions) {
    std::cout << "  [" << region.begin << ", " << region.end << ") period "
              << region.period << ", ~" << region.copies << " copies, "
              << region.support << " supporting pairs\n";
  }

  std::cout << "\nEngine used by default: " << align::make_best_engine()->name()
            << " (" << align::make_best_engine()->lanes() << " lanes)\n";
  return 0;
}
