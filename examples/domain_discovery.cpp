// Domain discovery across a set of proteins with automatic significance
// thresholds — the workflow the paper's introduction motivates: scan
// proteins for internal domain repeats whose ancestral similarity has
// eroded, and characterise the repeating unit.
//
//   $ ./domain_discovery                     # synthetic family, ground truth
//   $ ./domain_discovery --fasta prots.fa    # your own proteins
//
// Pipeline per protein: (1) calibrate a null score threshold from shuffled
// copies (composition-preserving), (2) search top alignments above it,
// (3) delineate repeat regions, (4) build phase-tuned consensus profiles.
#include <iostream>

#include "core/consensus.hpp"
#include "core/delineate.hpp"
#include "core/significance.hpp"
#include "core/top_alignment_finder.hpp"
#include "seq/fasta.hpp"
#include "seq/generator.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using namespace repro;

struct Discovery {
  std::string name;
  int length = 0;
  align::Score threshold = 0;
  int tops = 0;
  int regions = 0;
  int best_period = 0;
  double best_identity = 0.0;
};

Discovery scan(const seq::Sequence& protein, int tops_wanted) {
  Discovery d;
  d.name = protein.name();
  d.length = protein.length();
  const seq::Scoring scoring = seq::Scoring::protein_default();

  core::SignificanceOptions sopt;
  sopt.samples = 8;
  d.threshold = core::score_threshold(protein, scoring, sopt);

  core::FinderOptions opt;
  opt.num_top_alignments = tops_wanted;
  opt.min_score = d.threshold;
  const auto res = core::find_top_alignments(protein, scoring, opt);
  d.tops = static_cast<int>(res.tops.size());

  const auto regions = core::delineate_repeats(protein, res.tops);
  d.regions = static_cast<int>(regions.size());
  const auto profiles = core::build_profiles(protein, regions);
  for (const auto& profile : profiles) {
    if (profile.mean_identity > d.best_identity) {
      d.best_identity = profile.mean_identity;
      d.best_period = profile.period;
    }
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv,
                  {{"fasta", "scan proteins from this FASTA file"},
                   {"proteins", "number of synthetic proteins (default 4)"},
                   {"length", "synthetic protein length (default 900)"},
                   {"tops", "top alignments per protein (default 20)"},
                   {"seed", "generator seed"}});
  if (args.help_requested()) return 0;
  const int tops = static_cast<int>(args.get_int("tops", 20));

  std::vector<seq::Sequence> proteins;
  if (args.has("fasta")) {
    proteins = seq::read_fasta_file(args.get("fasta", ""), seq::Alphabet::protein());
  } else {
    // A synthetic "family": repeat-bearing proteins with different unit
    // lengths and conservations, plus one repeat-free negative control.
    const int length = static_cast<int>(args.get_int("length", 900));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const int n = static_cast<int>(args.get_int("proteins", 4));
    for (int k = 0; k < n - 1; ++k) {
      seq::RepeatSpec spec;
      spec.unit_length = 40 + 25 * k;
      spec.copies = std::max(3, length / (spec.unit_length + 10) - 1);
      spec.conservation = 0.45 + 0.1 * k;
      spec.indel_rate = 0.02;
      auto g = seq::make_repeat_sequence(seq::Alphabet::protein(), length, spec,
                                         seed + static_cast<std::uint64_t>(k),
                                         "family-member-" + std::to_string(k + 1));
      proteins.push_back(std::move(g.sequence));
      std::cout << "ground truth " << proteins.back().name() << ": unit "
                << spec.unit_length << ", ~" << spec.copies << " copies, "
                << static_cast<int>(spec.conservation * 100) << " % conserved\n";
    }
    proteins.push_back(seq::random_sequence(seq::Alphabet::protein(), length,
                                            seed + 99, "negative-control"));
    std::cout << "ground truth negative-control: no repeats\n\n";
  }

  util::Table table({"protein", "len", "null threshold", "tops", "regions",
                     "best period", "identity %"});
  for (const auto& protein : proteins) {
    const Discovery d = scan(protein, tops);
    table.add_row({d.name, static_cast<long long>(d.length),
                   static_cast<long long>(d.threshold),
                   static_cast<long long>(d.tops),
                   static_cast<long long>(d.regions),
                   static_cast<long long>(d.best_period),
                   static_cast<double>(static_cast<int>(d.best_identity * 1000 + 0.5)) / 10.0});
  }
  table.print(std::cout);
  std::cout << "\n(a repeat-free protein should show few/no tops above its "
               "null threshold and no regions)\n";
  return 0;
}
