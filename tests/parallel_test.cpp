// Shared-memory finder (§4.2): identical results for every thread count,
// determinism across repeats, and the thread pool itself.
#include <gtest/gtest.h>

#include <atomic>

#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "parallel/parallel_finder.hpp"
#include "parallel/thread_pool.hpp"
#include "seq/generator.hpp"

namespace repro::parallel {
namespace {

using core::FinderOptions;
using seq::Scoring;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i)
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesTaskException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(64, [](int i) {
      if (i % 7 == 0) throw std::runtime_error("task failed");
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
}

TEST(ThreadPool, ParallelForDrainsAllWorkersBeforeThrowing) {
  // parallel_for's loop state lives on the caller's stack; every worker
  // future must be awaited before the exception escapes, or the pool would
  // race on dead stack frames. Observable contract: the pool is immediately
  // reusable and later runs see no leftover work.
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(
        pool.parallel_for(64,
                          [](int i) {
                            if (i == 3) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    std::atomic<int> covered{0};
    pool.parallel_for(50, [&covered](int) { covered.fetch_add(1); });
    EXPECT_EQ(covered.load(), 50);
  }
}

class ParallelFinderTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFinderTest, MatchesSequentialForAnyThreadCount) {
  const int threads = GetParam();
  const auto g = seq::synthetic_titin(280, 55);
  FinderOptions opt;
  opt.num_top_alignments = 8;

  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto reference =
      core::find_top_alignments(g.sequence, Scoring::protein_default(), opt, *scalar);

  ParallelOptions popt;
  popt.threads = threads;
  popt.finder = opt;
  const auto res = find_top_alignments_parallel(
      g.sequence, Scoring::protein_default(), popt,
      align::engine_factory(align::EngineKind::kScalar));
  std::string diff;
  EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
      << threads << " threads: " << diff;
  core::validate_tops(res.tops, g.sequence, Scoring::protein_default());
}

TEST_P(ParallelFinderTest, SimdEnginesMatchToo) {
  const int threads = GetParam();
  const auto g = seq::synthetic_dna_tandem(200, 15, 8, 66);
  FinderOptions opt;
  opt.num_top_alignments = 6;
  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto reference = core::find_top_alignments(
      g.sequence, Scoring::paper_example(), opt, *scalar);

  ParallelOptions popt;
  popt.threads = threads;
  popt.finder = opt;
  const auto res = find_top_alignments_parallel(
      g.sequence, Scoring::paper_example(), popt,
      align::engine_factory(align::EngineKind::kSimd8Generic));
  std::string diff;
  EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
      << threads << " threads: " << diff;
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelFinderTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ParallelFinder, DeterministicAcrossRepeats) {
  const auto g = seq::synthetic_titin(240, 77);
  FinderOptions opt;
  opt.num_top_alignments = 6;
  ParallelOptions popt;
  popt.threads = 4;
  popt.finder = opt;
  const auto factory = align::engine_factory(align::EngineKind::kScalar);
  const auto first = find_top_alignments_parallel(
      g.sequence, Scoring::protein_default(), popt, factory);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto res = find_top_alignments_parallel(
        g.sequence, Scoring::protein_default(), popt, factory);
    std::string diff;
    EXPECT_TRUE(core::same_tops(first.tops, res.tops, &diff)) << diff;
  }
}

TEST(ParallelFinder, MinScoreStopsEarly) {
  const auto s = seq::random_sequence(seq::Alphabet::dna(), 100, 5);
  ParallelOptions popt;
  popt.threads = 3;
  popt.finder.num_top_alignments = 500;
  popt.finder.min_score = 12;
  const auto res = find_top_alignments_parallel(
      s, Scoring::paper_example(), popt,
      align::engine_factory(align::EngineKind::kScalar));
  EXPECT_LT(res.tops.size(), 500u);
  for (const auto& top : res.tops) EXPECT_GE(top.score, 12);
}

TEST(ParallelFinder, WorkerEnginePropagatesFailure) {
  // Saturating i16 engines throw; the parallel finder must surface it.
  const auto s = seq::Sequence::from_string(
      "sat", std::string(1400, 'A'), seq::Alphabet::dna());
  ParallelOptions popt;
  popt.threads = 2;
  popt.finder.num_top_alignments = 2;
  const Scoring hot{seq::ScoreMatrix::dna(100, -1), seq::GapPenalty{2, 1}};
  EXPECT_THROW(find_top_alignments_parallel(
                   s, hot, popt,
                   align::engine_factory(align::EngineKind::kSimd8Generic)),
               std::logic_error);
}

TEST(ParallelFinder, RejectsSequentialOnlyModes) {
  const auto g = seq::synthetic_titin(150, 1);
  ParallelOptions popt;
  popt.threads = 2;
  popt.finder.memory = core::MemoryMode::kRecomputeRows;
  EXPECT_THROW(find_top_alignments_parallel(
                   g.sequence, Scoring::protein_default(), popt,
                   align::engine_factory(align::EngineKind::kScalar)),
               std::logic_error);
  popt.finder.memory = core::MemoryMode::kArchiveRows;
  popt.finder.traceback = core::TracebackMode::kLinearSpace;
  EXPECT_THROW(find_top_alignments_parallel(
                   g.sequence, Scoring::protein_default(), popt,
                   align::engine_factory(align::EngineKind::kScalar)),
               std::logic_error);
}

TEST(ParallelFinder, StatsAccumulate) {
  const auto g = seq::synthetic_titin(220, 88);
  ParallelOptions popt;
  popt.threads = 4;
  popt.finder.num_top_alignments = 5;
  const auto res = find_top_alignments_parallel(
      g.sequence, Scoring::protein_default(), popt,
      align::engine_factory(align::EngineKind::kScalar));
  EXPECT_EQ(res.stats.first_alignments,
            static_cast<std::uint64_t>(g.sequence.length() - 1));
  EXPECT_EQ(res.stats.tracebacks, res.tops.size());
  EXPECT_GT(res.stats.cells, 0u);
}

}  // namespace
}  // namespace repro::parallel
