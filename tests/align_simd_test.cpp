// Equivalence of every SIMD engine with the scalar reference, across group
// widths, stripe widths, overrides, and partial final groups — plus the i16
// saturation guard.
#include <gtest/gtest.h>

#include <tuple>

#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "test_support.hpp"

namespace repro::align {
namespace {

using seq::Alphabet;
using seq::Scoring;

/// Saturating i16 SIMD kinds available in this build/CPU.
std::vector<EngineKind> simd_kinds() {
  std::vector<EngineKind> kinds{EngineKind::kSimd4Generic,
                                EngineKind::kSimd8Generic};
#if REPRO_HAVE_SSE2
  kinds.push_back(EngineKind::kSimd4);
  kinds.push_back(EngineKind::kSimd8);
#endif
  if (avx2_available()) kinds.push_back(EngineKind::kSimd16);
  return kinds;
}

/// 32-bit SIMD kinds (no saturation limit).
std::vector<EngineKind> simd32_kinds() {
  std::vector<EngineKind> kinds{EngineKind::kSimd4x32Generic};
  if (sse41_available()) kinds.push_back(EngineKind::kSimd4x32);
  if (avx2_available()) kinds.push_back(EngineKind::kSimd8x32);
  return kinds;
}

/// Everything the equivalence sweeps should cover.
std::vector<EngineKind> all_simd_kinds() {
  auto kinds = simd_kinds();
  for (EngineKind k : simd32_kinds()) kinds.push_back(k);
  return kinds;
}

/// Aligns every rectangle of `s` in engine-sized groups and compares every
/// bottom row against the scalar engine.
void expect_engine_matches_scalar(Engine& engine, const seq::Sequence& s,
                                  const Scoring& scoring,
                                  const OverrideTriangle* tri) {
  const auto scalar = make_engine(EngineKind::kScalar);
  const int m = s.length();
  const int lanes = engine.lanes();
  for (int r0 = 1; r0 <= m - 1; r0 += lanes) {
    const int count = std::min(lanes, m - r0);
    GroupJob job;
    job.seq = s.codes();
    job.scoring = &scoring;
    job.overrides = tri;
    job.r0 = r0;
    job.count = count;
    std::vector<std::vector<Score>> rows(static_cast<std::size_t>(count));
    std::vector<std::span<Score>> outs(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
      rows[static_cast<std::size_t>(k)].resize(static_cast<std::size_t>(m - (r0 + k)));
      outs[static_cast<std::size_t>(k)] = rows[static_cast<std::size_t>(k)];
    }
    engine.align(job, outs);
    for (int k = 0; k < count; ++k) {
      const auto expected =
          scalar->align_one(testing::make_job(s, r0 + k, scoring, tri));
      EXPECT_EQ(rows[static_cast<std::size_t>(k)], expected)
          << engine.name() << " lane " << k << " of group r0=" << r0;
    }
  }
}

class SimdEquivalence
    : public ::testing::TestWithParam<std::tuple<EngineKind, int>> {};

TEST_P(SimdEquivalence, MatchesScalarOnRepeatProtein) {
  const auto [kind, stripe] = GetParam();
  const auto engine = make_engine(kind, stripe);
  const auto g = seq::synthetic_titin(220, 77);
  const Scoring scoring = Scoring::protein_default();
  expect_engine_matches_scalar(*engine, g.sequence, scoring, nullptr);
}

TEST_P(SimdEquivalence, MatchesScalarWithOverrides) {
  const auto [kind, stripe] = GetParam();
  const auto engine = make_engine(kind, stripe);
  const auto g = seq::synthetic_dna_tandem(150, 10, 6, 99);
  const Scoring scoring = Scoring::paper_example();
  util::Rng rng(1234);
  OverrideTriangle tri(g.sequence.length());
  testing::random_overrides(g.sequence.length(), 400, rng, &tri);
  expect_engine_matches_scalar(*engine, g.sequence, scoring, &tri);
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<EngineKind, int>>& info) {
  const auto [kind, stripe] = info.param;
  std::string name;
  switch (kind) {
    case EngineKind::kSimd4: name = "sse4"; break;
    case EngineKind::kSimd8: name = "sse8"; break;
    case EngineKind::kSimd16: name = "avx16"; break;
    case EngineKind::kSimd4Generic: name = "gen4"; break;
    case EngineKind::kSimd8Generic: name = "gen8"; break;
    case EngineKind::kSimd4x32: name = "sse4x32"; break;
    case EngineKind::kSimd8x32: name = "avx8x32"; break;
    case EngineKind::kSimd4x32Generic: name = "gen4x32"; break;
    default: name = "other"; break;
  }
  return name + "_stripe" + (stripe < 0 ? "none" : std::to_string(stripe));
}

std::vector<std::tuple<EngineKind, int>> make_params() {
  std::vector<std::tuple<EngineKind, int>> params;
  for (EngineKind kind : all_simd_kinds())
    for (int stripe : {-1, 5, 33, 0})  // none, tiny, odd, engine default
      params.emplace_back(kind, stripe);
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllEngines, SimdEquivalence,
                         ::testing::ValuesIn(make_params()), param_name);

TEST(SimdEngine, PartialFinalGroupAndSingleLane) {
  // count < lanes exercises the column masks; count == 1 the degenerate
  // group. m chosen so the last group of an 8-lane engine has 3 members.
  const auto g = seq::synthetic_titin(200, 5);
  const auto s = g.sequence.subsequence(0, 60);  // m-1 = 59 = 7*8 + 3
  const Scoring scoring = Scoring::protein_default();
  for (EngineKind kind : simd_kinds()) {
    const auto engine = make_engine(kind);
    const auto scalar = make_engine(EngineKind::kScalar);
    for (int count = 1; count <= std::min(engine->lanes(), 4); ++count) {
      GroupJob job;
      job.seq = s.codes();
      job.scoring = &scoring;
      job.r0 = 30;
      job.count = count;
      std::vector<std::vector<Score>> rows(static_cast<std::size_t>(count));
      std::vector<std::span<Score>> outs(static_cast<std::size_t>(count));
      for (int k = 0; k < count; ++k) {
        rows[static_cast<std::size_t>(k)].resize(
            static_cast<std::size_t>(s.length() - (30 + k)));
        outs[static_cast<std::size_t>(k)] = rows[static_cast<std::size_t>(k)];
      }
      engine->align(job, outs);
      for (int k = 0; k < count; ++k)
        EXPECT_EQ(rows[static_cast<std::size_t>(k)],
                  scalar->align_one(testing::make_job(s, 30 + k, scoring)))
            << engine->name() << " count=" << count << " lane " << k;
    }
  }
}

TEST(SimdEngine, ThinRectanglesAtBothEnds) {
  // r = 1 (one row) and r = m-1 (one column) are the degenerate extremes;
  // every engine must agree with scalar, grouped or not.
  const auto g = seq::synthetic_titin(120, 44);
  const auto& s = g.sequence;
  const int m = s.length();
  const Scoring scoring = Scoring::protein_default();
  const auto scalar = make_engine(EngineKind::kScalar);
  for (EngineKind kind : all_simd_kinds()) {
    const auto engine = make_engine(kind);
    for (const int r : {1, 2, m - 2, m - 1}) {
      EXPECT_EQ(engine->align_one(testing::make_job(s, r, scoring)),
                scalar->align_one(testing::make_job(s, r, scoring)))
          << engine->name() << " r=" << r;
    }
    // The final group of the sequence straddles r = m-1.
    const int lanes = engine->lanes();
    const int r0 = std::max(1, m - 1 - lanes + 1);
    const int count = m - r0;
    GroupJob job;
    job.seq = s.codes();
    job.scoring = &scoring;
    job.r0 = r0;
    job.count = count;
    std::vector<std::vector<Score>> rows(static_cast<std::size_t>(count));
    std::vector<std::span<Score>> outs(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
      rows[static_cast<std::size_t>(k)].resize(static_cast<std::size_t>(m - (r0 + k)));
      outs[static_cast<std::size_t>(k)] = rows[static_cast<std::size_t>(k)];
    }
    engine->align(job, outs);
    for (int k = 0; k < count; ++k)
      EXPECT_EQ(rows[static_cast<std::size_t>(k)],
                scalar->align_one(testing::make_job(s, r0 + k, scoring)))
          << engine->name() << " final-group lane " << k;
  }
}

TEST(SimdEngine, TinySequences) {
  // m = 2 is the smallest legal input (one split).
  const auto s = seq::Sequence::from_string("mini", "AT", seq::Alphabet::dna());
  const Scoring scoring = Scoring::paper_example();
  for (EngineKind kind : all_simd_kinds()) {
    const auto engine = make_engine(kind);
    const auto row = engine->align_one(testing::make_job(s, 1, scoring));
    ASSERT_EQ(row.size(), 1u) << engine->name();
    EXPECT_EQ(row[0], 0) << engine->name();  // A vs T never scores
  }
  const auto s2 = seq::Sequence::from_string("mini2", "AA", seq::Alphabet::dna());
  for (EngineKind kind : all_simd_kinds()) {
    const auto engine = make_engine(kind);
    EXPECT_EQ(engine->align_one(testing::make_job(s2, 1, scoring))[0], 2)
        << engine->name();
  }
}

TEST(SimdEngine, SaturationIsDetectedNotSilent) {
  // A long self-identical sequence under a huge match score must overflow
  // i16 somewhere in the matrix; the engine must throw, not corrupt.
  const auto s = seq::Sequence::from_string(
      "sat", std::string(700, 'A') + std::string(700, 'A'), Alphabet::dna());
  const Scoring scoring{seq::ScoreMatrix::dna(100, -1), seq::GapPenalty{2, 1}};
  for (EngineKind kind : simd_kinds()) {
    const auto engine = make_engine(kind);
    EXPECT_THROW(engine->align_one(testing::make_job(s, 700, scoring)),
                 std::logic_error)
        << engine->name();
  }
  // The 32-bit engines (scalar and SIMD) handle the same input fine.
  const auto scalar = make_engine(EngineKind::kScalar);
  const auto row = scalar->align_one(testing::make_job(s, 700, scoring));
  EXPECT_EQ(row.back(), 700 * 100);
  for (EngineKind kind : simd32_kinds()) {
    const auto engine = make_engine(kind);
    const auto wide = engine->align_one(testing::make_job(s, 700, scoring));
    EXPECT_EQ(wide, row) << engine->name();
  }
}

TEST(SimdEngine, CellAccountingIncludesLanes) {
  const auto g = seq::synthetic_titin(200, 6);
  const Scoring scoring = Scoring::protein_default();
  const auto engine = make_engine(EngineKind::kSimd8Generic);
  GroupJob job;
  job.seq = g.sequence.codes();
  job.scoring = &scoring;
  job.r0 = 50;
  job.count = 8;
  std::vector<std::vector<Score>> rows(8);
  std::vector<std::span<Score>> outs(8);
  for (int k = 0; k < 8; ++k) {
    rows[static_cast<std::size_t>(k)].resize(
        static_cast<std::size_t>(200 - (50 + k)));
    outs[static_cast<std::size_t>(k)] = rows[static_cast<std::size_t>(k)];
  }
  engine->align(job, outs);
  EXPECT_EQ(engine->cells_computed(), 57ull * 150ull * 8ull);
}

TEST(SimdEngine, BestEngineWorks) {
  const auto engine = make_best_engine();
  ASSERT_GE(engine->lanes(), 1);
  const auto g = seq::synthetic_titin(200, 9);
  const Scoring scoring = Scoring::protein_default();
  expect_engine_matches_scalar(*engine, g.sequence, scoring, nullptr);
}

}  // namespace
}  // namespace repro::align
