// Behavior of the REPRO_DCHECK contract macros (src/check/contracts.hpp).
//
// Contracts are compiled in under !NDEBUG or -DREPRO_CONTRACTS_ENABLED=1
// (the `checked` preset); in plain Release they vanish entirely — including
// their condition expressions, which this test proves by side effect. The
// zero-codegen guarantee for kernel TUs is additionally checked by
// tools/lint.sh (no dcheck_failed symbol in Release engine objects).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "check/contracts.hpp"

namespace {

TEST(Contracts, FlagMatchesMacro) {
#if REPRO_CONTRACTS_ENABLED
  EXPECT_TRUE(repro::check::kContractsEnabled);
#else
  EXPECT_FALSE(repro::check::kContractsEnabled);
#endif
}

TEST(Contracts, PassingCheckIsSilent) {
  EXPECT_NO_THROW(REPRO_DCHECK(1 + 1 == 2));
  EXPECT_NO_THROW(REPRO_DCHECK_MSG(true, "never shown"));
}

#if REPRO_CONTRACTS_ENABLED

TEST(Contracts, FailingCheckThrowsLogicError) {
  EXPECT_THROW(REPRO_DCHECK(false), std::logic_error);
}

TEST(Contracts, MessageNamesExpressionAndLocation) {
  try {
    REPRO_DCHECK_MSG(2 < 1, "two is not less than " << 1);
    FAIL() << "REPRO_DCHECK_MSG(false) did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("contract violated"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than 1"), std::string::npos) << what;
  }
}

TEST(Contracts, ConditionIsEvaluatedWhenEnabled) {
  int evaluations = 0;
  const auto probe = [&]() {
    ++evaluations;
    return true;
  };
  REPRO_DCHECK(probe());
  EXPECT_EQ(evaluations, 1);
}

#else  // !REPRO_CONTRACTS_ENABLED

TEST(Contracts, DisabledChecksDoNotEvaluateCondition) {
  // In Release the macro must compile the condition away entirely — a
  // contract with an expensive or throwing condition costs nothing.
  int evaluations = 0;
  const auto probe = [&]() {
    ++evaluations;
    return false;
  };
  REPRO_DCHECK(probe());
  REPRO_DCHECK_MSG(probe(), "never evaluated either");
  (void)probe;  // the disabled macros must not odr-use it
  EXPECT_EQ(evaluations, 0);
}

#endif

}  // namespace
