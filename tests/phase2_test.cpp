// Phase-2 extensions: consensus/profile extraction (with the paper's
// future-work phase tuning) and empirical score significance.
#include <gtest/gtest.h>

#include "core/consensus.hpp"
#include "core/significance.hpp"
#include "core/top_alignment_finder.hpp"
#include "seq/generator.hpp"

namespace repro::core {
namespace {

using seq::Alphabet;
using seq::Scoring;

/// Detects repeats end-to-end and returns the best-supported region.
RepeatRegion main_region(const seq::Sequence& s, const Scoring& scoring,
                         int tops, align::Score min_score = 1) {
  FinderOptions opt;
  opt.num_top_alignments = tops;
  opt.min_score = min_score;
  const auto res = find_top_alignments(s, scoring, opt);
  const auto regions = delineate_repeats(s, res.tops);
  REPRO_CHECK_MSG(!regions.empty(), "no regions detected");
  const RepeatRegion* best = &regions.front();
  for (const auto& region : regions)
    if (region.support > best->support) best = &region;
  return *best;
}

TEST(Consensus, RecoversImplantedDnaUnit) {
  const int unit = 16;
  const auto g = seq::synthetic_dna_tandem(500, unit, 10, 5);
  const Scoring metric{seq::ScoreMatrix::dna(2, -3), seq::GapPenalty{5, 2}};
  const RepeatRegion region = main_region(g.sequence, metric, 12, 16);
  ASSERT_NEAR(region.period, unit, 2);

  const RepeatProfile profile = build_profile(g.sequence, region);
  ASSERT_EQ(profile.period, region.period);
  ASSERT_GE(profile.copy_begins.size(), 5u);
  EXPECT_EQ(static_cast<int>(profile.consensus.size()), profile.period);
  // Copies were implanted at 85 % conservation; the consensus should match
  // each copy clearly better than chance (25 % for DNA).
  EXPECT_GT(profile.mean_identity, 0.6);
  for (const double identity : profile.copy_identity) EXPECT_GT(identity, 0.4);
}

TEST(Consensus, PhaseTuningFindsImplantedBoundary) {
  // With no indels the segmentation should lock onto the exact implant
  // phase: the tuned first copy starts at the truth modulo the period.
  seq::RepeatSpec spec;
  spec.unit_length = 20;
  spec.copies = 8;
  spec.conservation = 0.95;
  spec.indel_rate = 0.0;
  const auto g = seq::make_repeat_sequence(Alphabet::dna(), 400, spec, 9);
  const Scoring metric{seq::ScoreMatrix::dna(2, -3), seq::GapPenalty{5, 2}};
  const RepeatRegion region = main_region(g.sequence, metric, 12, 16);
  ASSERT_NEAR(region.period, 20, 1);
  const RepeatProfile profile = build_profile(g.sequence, region);
  ASSERT_GT(profile.period, 0);
  const int truth = g.copies.front().begin;
  const int phase_error =
      std::abs(profile.begin - truth) % profile.period;
  EXPECT_TRUE(phase_error <= 2 || phase_error >= profile.period - 2)
      << "tuned begin " << profile.begin << " vs truth " << truth;
  // And the consensus at the tuned phase matches the implanted unit nearly
  // perfectly (95 % conservation).
  EXPECT_GT(profile.mean_identity, 0.85);
}

TEST(Consensus, DegenerateRegionsAreRejected) {
  const auto s = seq::random_sequence(Alphabet::dna(), 60, 3);
  RepeatRegion region;
  region.begin = 0;
  region.end = 25;
  region.period = 20;  // only one full copy fits
  EXPECT_EQ(build_profile(s, region).period, 0);
  region.period = 0;
  EXPECT_EQ(build_profile(s, region).period, 0);
}

TEST(Consensus, BuildProfilesSkipsDegenerates) {
  const auto g = seq::synthetic_dna_tandem(400, 15, 9, 4);
  const Scoring metric{seq::ScoreMatrix::dna(2, -3), seq::GapPenalty{5, 2}};
  FinderOptions opt;
  opt.num_top_alignments = 10;
  opt.min_score = 16;
  const auto res = find_top_alignments(g.sequence, metric, opt);
  auto regions = delineate_repeats(g.sequence, res.tops);
  RepeatRegion bogus;
  bogus.begin = 0;
  bogus.end = 10;
  bogus.period = 9;
  regions.push_back(bogus);
  const auto profiles = build_profiles(g.sequence, regions);
  for (const auto& profile : profiles) EXPECT_GT(profile.period, 0);
  EXPECT_EQ(profiles.size(), regions.size() - 1);
}

TEST(Significance, ShuffledPreservesComposition) {
  const auto s = seq::random_sequence(Alphabet::protein(), 300, 17);
  const auto t = shuffled(s, 1);
  ASSERT_EQ(t.length(), s.length());
  std::vector<int> ca(24, 0), cb(24, 0);
  for (int i = 0; i < s.length(); ++i) {
    ++ca[s[i]];
    ++cb[t[i]];
  }
  EXPECT_EQ(ca, cb);
  EXPECT_NE(s.to_string(), t.to_string());
  // Deterministic per seed.
  EXPECT_EQ(shuffled(s, 1).to_string(), t.to_string());
  EXPECT_NE(shuffled(s, 2).to_string(), t.to_string());
}

TEST(Significance, ThresholdSeparatesRepeatFromBackground) {
  // The threshold from shuffles must sit above the background's best
  // self-alignment but below the score of a genuine implanted repeat.
  const Scoring metric{seq::ScoreMatrix::dna(2, -3), seq::GapPenalty{5, 2}};
  const auto g = seq::synthetic_dna_tandem(500, 18, 10, 21);
  SignificanceOptions sopt;
  sopt.samples = 10;
  const align::Score threshold = score_threshold(g.sequence, metric, sopt);
  EXPECT_GT(threshold, 5);

  FinderOptions opt;
  opt.num_top_alignments = 1;
  const auto res = find_top_alignments(g.sequence, metric, opt);
  ASSERT_FALSE(res.tops.empty());
  EXPECT_GT(res.tops.front().score, threshold)
      << "implanted repeat should clear the null threshold";
}

TEST(Significance, LinearRegimeMetricGetsHighThreshold) {
  // Under the paper's toy metric (match +2 / mismatch -1 / gap 2+L) random
  // DNA self-alignments grow with length (linear regime); the empirical
  // threshold must reflect that, unlike a fixed small cutoff.
  const auto s = seq::random_sequence(Alphabet::dna(), 400, 31);
  SignificanceOptions sopt;
  sopt.samples = 5;
  const align::Score toy =
      score_threshold(s, Scoring::paper_example(), sopt);
  const align::Score strict = score_threshold(
      s, Scoring{seq::ScoreMatrix::dna(2, -3), seq::GapPenalty{5, 2}}, sopt);
  EXPECT_GT(toy, 2 * strict) << "toy=" << toy << " strict=" << strict;
}

TEST(Significance, OptionValidation) {
  const auto s = seq::random_sequence(Alphabet::dna(), 50, 1);
  SignificanceOptions bad;
  bad.samples = 0;
  EXPECT_THROW(score_threshold(s, Scoring::paper_example(), bad),
               std::logic_error);
  bad.samples = 2;
  bad.quantile = 0.0;
  EXPECT_THROW(score_threshold(s, Scoring::paper_example(), bad),
               std::logic_error);
}

}  // namespace
}  // namespace repro::core
