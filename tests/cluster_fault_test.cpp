// Fault tolerance of the distributed finder: deterministic fault plans,
// closed-channel semantics, and the chaos matrix — under every seeded
// schedule of drops/delays/duplicates/crashes that leaves the master and at
// least one worker alive, the cluster finder must accept top alignments
// identical to the sequential finder's.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <tuple>

#include "cluster/fault.hpp"
#include "cluster/master_worker.hpp"
#include "cluster/mpisim.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "seq/generator.hpp"

namespace repro::cluster {
namespace {

using core::FinderOptions;
using seq::Scoring;

// ---------------------------------------------------------------------------
// FaultPlan: spec grammar, seeding, invariants.

TEST(FaultPlan, ParsesSpecGrammar) {
  const auto plan = FaultPlan::parse(
      "drop:from=1,to=0,op=3; delay:from=0,to=2,op=0,ticks=64;"
      "dup:from=2,to=0,op=5; crash:rank=3,op=40");
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kDrop);
  EXPECT_EQ(plan.events[0].from, 1);
  EXPECT_EQ(plan.events[0].to, 0);
  EXPECT_EQ(plan.events[0].op, 3u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.events[1].ticks, 64u);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kDuplicate);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events[3].from, 3);
  EXPECT_TRUE(plan.schedules_crash());
  EXPECT_EQ(plan.crashed_ranks(), std::vector<int>{3});
  EXPECT_TRUE(plan.has_delays());
}

TEST(FaultPlan, ToStringRoundTrips) {
  const char* spec =
      "drop:from=1,to=0,op=3;delay:from=0,to=2,op=0,ticks=64;"
      "dup:from=2,to=0,op=5;crash:rank=3,op=40";
  EXPECT_EQ(FaultPlan::parse(spec).to_string(), spec);
  EXPECT_EQ(FaultPlan::parse(FaultPlan::parse(spec).to_string()).to_string(),
            spec);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("nonsense"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("explode:from=0,to=1,op=2"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("drop:from=1"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("drop:from=1,to=0,op=x"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("delay:from=0,to=1,op=2"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("drop:from=0,to=1,op=1,ticks=4"),
               std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,to=0,op=4"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("drop:from=0,to=1,op=2,why=5"),
               std::runtime_error);
}

TEST(FaultPlan, SeededPlansAreDeterministic) {
  for (std::uint64_t seed : {1u, 7u, 99u}) {
    const auto a = FaultPlan::from_seed(seed, 4);
    const auto b = FaultPlan::from_seed(seed, 4);
    EXPECT_EQ(a.to_string(), b.to_string()) << "seed " << seed;
    EXPECT_FALSE(a.empty());
  }
  EXPECT_NE(FaultPlan::from_seed(1, 4).to_string(),
            FaultPlan::from_seed(2, 4).to_string());
}

TEST(FaultPlan, SeededPlansRespectRecoveryRegime) {
  // Never crash the master; always leave at least one worker alive; never
  // crash at all with a single worker.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    for (int ranks : {2, 3, 8}) {
      const auto crashed = FaultPlan::from_seed(seed, ranks).crashed_ranks();
      for (int c : crashed) {
        EXPECT_GT(c, 0) << "seed " << seed;
        EXPECT_LT(c, ranks) << "seed " << seed;
      }
      EXPECT_LT(static_cast<int>(crashed.size()), ranks - 1)
          << "seed " << seed << " ranks " << ranks;
    }
  }
}

// ---------------------------------------------------------------------------
// Comm under injection: per-event semantics and closed-channel behavior.

TEST(CommFault, DropsScheduledMessage) {
  Comm comm(2, FaultPlan::parse("drop:from=0,to=1,op=1"));
  for (int k = 0; k < 3; ++k) comm.send(0, 1, {k, {}});
  EXPECT_EQ(comm.recv(1, 0).tag, 0);
  EXPECT_EQ(comm.recv(1, 0).tag, 2);  // op 1 vanished
  EXPECT_EQ(comm.fault_stats().drops, 1u);
  EXPECT_EQ(comm.messages_sent(), 3u);  // attempts are still counted
}

TEST(CommFault, DuplicateDeliveredBackToBack) {
  Comm comm(2, FaultPlan::parse("dup:from=0,to=1,op=0"));
  comm.send(0, 1, {5, {42}});
  comm.send(0, 1, {6, {}});
  EXPECT_EQ(comm.recv(1, 0).tag, 5);
  EXPECT_EQ(comm.recv(1, 0).tag, 5);
  EXPECT_EQ(comm.recv(1, 0).tag, 6);
  EXPECT_EQ(comm.fault_stats().duplicates, 1u);
}

TEST(CommFault, DelayPreservesChannelFifo) {
  // Message 0 is held; message 1 must queue behind it, not overtake.
  Comm comm(2, FaultPlan::parse("delay:from=0,to=1,op=0,ticks=8"));
  comm.send(0, 1, {0, {}});
  comm.send(0, 1, {1, {}});
  EXPECT_EQ(comm.recv(1, 0).tag, 0);
  EXPECT_EQ(comm.recv(1, 0).tag, 1);
  EXPECT_EQ(comm.fault_stats().delays, 1u);
}

TEST(CommFault, CrashFiresAtScheduledOp) {
  Comm comm(2, FaultPlan::parse("crash:rank=1,op=2"));
  std::atomic<int> sends_completed{0};
  run_ranks(comm, [&](int rank) {
    if (rank == 1) {
      comm.send(1, 0, {1, {}});
      ++sends_completed;
      comm.send(1, 0, {2, {}});  // op 2: dies here
      ++sends_completed;
    }
  });
  EXPECT_EQ(sends_completed.load(), 1);
  EXPECT_TRUE(comm.closed(1));
  EXPECT_EQ(comm.fault_stats().crashes, 1u);
  EXPECT_EQ(comm.alive_ranks(), 0);  // rank 0 exited too (normally)
}

TEST(CommFault, RecvOnClosedSourceThrows) {
  Comm comm(2);
  comm.close(0);
  EXPECT_THROW(comm.recv(1, 0), ChannelClosed);
  EXPECT_THROW(comm.recv_tagged(1, 0, 7), ChannelClosed);
  EXPECT_THROW(comm.recv_any(1), ChannelClosed);
}

TEST(CommFault, QueuedMessagesDrainBeforeClosedThrows) {
  Comm comm(2);
  comm.send(0, 1, {4, {11}});
  comm.close(0);
  EXPECT_EQ(comm.recv(1, 0).data.at(0), 11);  // already-sent data survives
  EXPECT_THROW(comm.recv(1, 0), ChannelClosed);
}

TEST(CommFault, SendToClosedRankIsDiscarded) {
  Comm comm(2);
  comm.close(1);
  comm.send(0, 1, {3, {}});  // must not throw; the peer can never receive
  EXPECT_EQ(comm.messages_sent(), 1u);
  EXPECT_EQ(comm.alive_ranks(), 1);
}

TEST(CommFault, RecvAnyForTimesOut) {
  Comm comm(2);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(comm.recv_any_for(1, std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(25));
  comm.send(0, 1, {2, {}});
  const auto got = comm.recv_any_for(1, std::chrono::milliseconds(1000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->second.tag, 2);
}

// Regression: this exact shape deadlocked before closed-channel signaling —
// rank 0 exits without sending, rank 1 blocks in recv forever. It must now
// fail fast (well within the 5 s watchdog) with ChannelClosed, which
// run_ranks surfaces as the run's error.
TEST(CommFault, RecvAfterPeerExitFailsFastNotDeadlock) {
  struct Probe {
    std::atomic<bool> finished{false};
    std::atomic<bool> channel_closed_thrown{false};
  };
  auto probe = std::make_shared<Probe>();
  std::thread runner([probe] {
    Comm comm(2);
    try {
      run_ranks(comm, [&](int rank) {
        if (rank == 1) comm.recv(1, 0);  // rank 0 exits immediately
      });
    } catch (const ChannelClosed&) {
      probe->channel_closed_thrown = true;
    }
    probe->finished = true;
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!probe->finished.load() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  if (!probe->finished.load()) {
    runner.detach();  // leak the wedged thread; the probe keeps state alive
    FAIL() << "recv after peer exit still deadlocks";
  }
  runner.join();
  EXPECT_TRUE(probe->channel_closed_thrown.load());
}

// ---------------------------------------------------------------------------
// Cluster finder under chaos.

/// Aggressive recovery tuning so 50-seed sweeps stay fast; safe because
/// result dedup makes spurious timeouts cost only repeated work.
FaultToleranceOptions test_ft() {
  FaultToleranceOptions ft;
  ft.task_timeout_ms = 60;
  ft.row_timeout_ms = 30;
  ft.hello_timeout_ms = 40;
  ft.max_backoff_ms = 400;
  ft.poll_ms = 5;
  return ft;
}

core::FinderResult run_faulted(const seq::Sequence& s, const Scoring& scoring,
                               int ranks, RowStorage storage, FaultPlan plan,
                               int tops, ClusterRunInfo* info = nullptr) {
  ClusterOptions copt;
  copt.ranks = ranks;
  copt.row_storage = storage;
  copt.finder.num_top_alignments = tops;
  copt.fault_plan = std::move(plan);
  copt.ft = test_ft();
  return find_top_alignments_cluster(
      s, scoring, copt, align::engine_factory(align::EngineKind::kScalar),
      info);
}

class ChaosMatrixTest
    : public ::testing::TestWithParam<std::tuple<RowStorage, int>> {};

TEST_P(ChaosMatrixTest, SeededSchedulesMatchSequential) {
  const auto [storage, ranks] = GetParam();
  const auto g = seq::synthetic_titin(140, 91);
  FinderOptions opt;
  opt.num_top_alignments = 4;
  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto reference = core::find_top_alignments(
      g.sequence, Scoring::protein_default(), opt, *scalar);

  std::uint64_t total_injected = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ClusterRunInfo info;
    const auto res = run_faulted(g.sequence, Scoring::protein_default(), ranks,
                                 storage, FaultPlan::from_seed(seed, ranks),
                                 opt.num_top_alignments, &info);
    std::string diff;
    ASSERT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
        << "seed " << seed << ", ranks " << ranks << ", storage "
        << (storage == RowStorage::kPartitioned ? "partitioned" : "replica")
        << ": " << diff;
    total_injected += info.faults_injected;
    EXPECT_EQ(info.fault_stats.injected(), info.faults_injected);
  }
  // Across 50 seeded schedules real faults must actually have fired — a
  // suite that injects nothing proves nothing.
  EXPECT_GT(total_injected, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    StorageByRanks, ChaosMatrixTest,
    ::testing::Combine(::testing::Values(RowStorage::kMasterReplica,
                                         RowStorage::kPartitioned),
                       ::testing::Values(2, 3, 4, 8)),
    [](const auto& info) {
      const RowStorage storage = std::get<0>(info.param);
      return std::string(storage == RowStorage::kPartitioned ? "Partitioned"
                                                             : "Replica") +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Targeted schedules: the specific failure windows called out in the issue.

struct ChaosFixture {
  seq::GeneratedSequence g = seq::synthetic_titin(140, 91);
  FinderOptions opt;
  core::FinderResult reference;

  ChaosFixture() {
    opt.num_top_alignments = 4;
    const auto scalar = align::make_engine(align::EngineKind::kScalar);
    reference = core::find_top_alignments(g.sequence,
                                          Scoring::protein_default(), opt,
                                          *scalar);
  }

  void expect_identical(const core::FinderResult& res,
                        const std::string& label) const {
    std::string diff;
    EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
        << label << ": " << diff;
  }
};

TEST(ChaosTargeted, CrashBeforeFirstTask) {
  // Worker 1 dies on its very first comm op (the hello send): the master
  // must detect the closed channel and finish the run on worker 2 alone.
  ChaosFixture fx;
  ClusterRunInfo info;
  const auto res =
      run_faulted(fx.g.sequence, Scoring::protein_default(), 3,
                  RowStorage::kMasterReplica, FaultPlan::parse("crash:rank=1,op=1"),
                  fx.opt.num_top_alignments, &info);
  fx.expect_identical(res, "crash before first task");
  EXPECT_EQ(info.workers_lost, 1u);
  EXPECT_EQ(info.fault_stats.crashes, 1u);
}

TEST(ChaosTargeted, CrashMidBroadcastWindow) {
  // A worker dies deep in the run, with assignments and update broadcasts
  // in flight: its task must be reassigned and the survivors resynced.
  ChaosFixture fx;
  ClusterRunInfo info;
  const auto res =
      run_faulted(fx.g.sequence, Scoring::protein_default(), 4,
                  RowStorage::kMasterReplica, FaultPlan::parse("crash:rank=2,op=30"),
                  fx.opt.num_top_alignments, &info);
  fx.expect_identical(res, "crash mid broadcast");
  EXPECT_EQ(info.workers_lost, 1u);
}

TEST(ChaosTargeted, CrashDuringPartitionedRowFetch) {
  // Partitioned mode: every deposit worker 1 makes is dropped, and it dies
  // mid-v0 — so every row it computed is simply gone. Consumers (including
  // the master's traceback fetches) must re-route to the survivor, which
  // rebuilds the lost rows from scratch.
  ChaosFixture fx;
  FaultPlan plan = FaultPlan::parse("crash:rank=1,op=150");
  for (std::uint64_t op = 0; op < 80; ++op)
    plan.events.push_back({FaultKind::kDrop, 1, 2, op, 0});
  ClusterRunInfo info;
  const auto res =
      run_faulted(fx.g.sequence, Scoring::protein_default(), 3,
                  RowStorage::kPartitioned, std::move(plan),
                  fx.opt.num_top_alignments, &info);
  fx.expect_identical(res, "crash during partitioned row fetch");
  EXPECT_EQ(info.workers_lost, 1u);
  EXPECT_GT(info.row_rebuilds, 0u);
}

TEST(ChaosTargeted, AllMessagesDelayed) {
  // Every channel jittered on every early op: nothing is lost, everything
  // is late. FIFO-per-channel must hold and the result must not change.
  ChaosFixture fx;
  FaultPlan plan;
  for (int from = 0; from < 3; ++from)
    for (int to = 0; to < 3; ++to) {
      if (from == to) continue;
      for (std::uint64_t op = 0; op < 120; ++op)
        plan.events.push_back(
            {FaultKind::kDelay, from, to, op, 2 + (op % 7)});
    }
  ClusterRunInfo info;
  const auto res =
      run_faulted(fx.g.sequence, Scoring::protein_default(), 3,
                  RowStorage::kMasterReplica, std::move(plan),
                  fx.opt.num_top_alignments, &info);
  fx.expect_identical(res, "all messages delayed");
  EXPECT_GT(info.fault_stats.delays, 0u);
  EXPECT_EQ(info.workers_lost, 0u);
}

TEST(ChaosTargeted, MostWorkersCrashStaggered) {
  // Six of seven workers die at staggered points; the lone survivor must
  // absorb every reassignment and still reproduce the sequential result.
  ChaosFixture fx;
  FaultPlan plan = FaultPlan::parse(
      "crash:rank=2,op=10;crash:rank=3,op=20;crash:rank=4,op=30;"
      "crash:rank=5,op=40;crash:rank=6,op=50;crash:rank=7,op=60");
  ClusterRunInfo info;
  const auto res =
      run_faulted(fx.g.sequence, Scoring::protein_default(), 8,
                  RowStorage::kMasterReplica, std::move(plan),
                  fx.opt.num_top_alignments, &info);
  fx.expect_identical(res, "staggered mass crash");
  EXPECT_EQ(info.workers_lost, 6u);
  core::validate_tops(res.tops, fx.g.sequence, Scoring::protein_default());
}

TEST(ChaosTargeted, RecoveryCountersSurfaceInRunInfo) {
  // Heavy drop schedule on the master->worker assign channel: recovery must
  // go through the timeout/requeue machinery and say so in the counters.
  ChaosFixture fx;
  FaultPlan plan;
  for (std::uint64_t op = 0; op < 6; ++op)
    plan.events.push_back({FaultKind::kDrop, 0, 1, op, 0});
  ClusterRunInfo info;
  const auto res =
      run_faulted(fx.g.sequence, Scoring::protein_default(), 3,
                  RowStorage::kMasterReplica, std::move(plan),
                  fx.opt.num_top_alignments, &info);
  fx.expect_identical(res, "assign drops");
  EXPECT_GT(info.faults_injected, 0u);
  EXPECT_GT(info.heartbeat_misses + info.retries + info.stale_results, 0u);
}

TEST(ChaosTargeted, PlanCrashingMasterIsRejected) {
  ChaosFixture fx;
  EXPECT_THROW(run_faulted(fx.g.sequence, Scoring::protein_default(), 3,
                           RowStorage::kMasterReplica,
                           FaultPlan::parse("crash:rank=0,op=5"),
                           fx.opt.num_top_alignments),
               std::logic_error);
}

TEST(ChaosTargeted, PlanKillingAllWorkersIsRejected) {
  ChaosFixture fx;
  EXPECT_THROW(run_faulted(fx.g.sequence, Scoring::protein_default(), 3,
                           RowStorage::kMasterReplica,
                           FaultPlan::parse("crash:rank=1,op=5;crash:rank=2,op=9"),
                           fx.opt.num_top_alignments),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Partitioned-storage edge cases (previously untested).

TEST(PartitionedEdge, SingleWorkerOwnsAllShardsFaultFree) {
  // ranks == 2: one worker owns every row shard, so every row request it
  // makes is against itself and no deposit ever crosses a rank boundary.
  ChaosFixture fx;
  ClusterRunInfo info;
  const auto res = run_faulted(fx.g.sequence, Scoring::protein_default(), 2,
                               RowStorage::kPartitioned, FaultPlan{},
                               fx.opt.num_top_alignments, &info);
  fx.expect_identical(res, "single-worker partitioned");
  EXPECT_EQ(info.row_deposits, 0u);         // owner-services-own-request only
  EXPECT_EQ(info.row_replicas_served, 0u);  // master serves nothing
  EXPECT_EQ(info.faults_injected, 0u);
}

TEST(PartitionedEdge, SingleWorkerOwnsAllShardsUnderFaults) {
  // Same topology under 20 seeded schedules (no crashes are ever generated
  // for a single worker — the recovery regime needs a survivor).
  ChaosFixture fx;
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const auto plan = FaultPlan::from_seed(seed, 2);
    EXPECT_FALSE(plan.schedules_crash()) << "seed " << seed;
    ClusterRunInfo info;
    const auto res = run_faulted(fx.g.sequence, Scoring::protein_default(), 2,
                                 RowStorage::kPartitioned, plan,
                                 fx.opt.num_top_alignments, &info);
    std::string diff;
    ASSERT_TRUE(core::same_tops(fx.reference.tops, res.tops, &diff))
        << "seed " << seed << ": " << diff;
    EXPECT_EQ(info.row_deposits, 0u);
  }
}

TEST(PartitionedEdge, OwnerServicesOwnRequestsAcrossRanks) {
  // With three workers each owner both serves peers and consumes its own
  // shards; deposits must cross ranks while self-owned rows stay local.
  ChaosFixture fx;
  ClusterRunInfo info;
  const auto res = run_faulted(fx.g.sequence, Scoring::protein_default(), 4,
                               RowStorage::kPartitioned, FaultPlan{},
                               fx.opt.num_top_alignments, &info);
  fx.expect_identical(res, "multi-owner partitioned");
  EXPECT_GT(info.row_deposits, 0u);
  EXPECT_EQ(info.row_replicas_served, 0u);
}

}  // namespace
}  // namespace repro::cluster
