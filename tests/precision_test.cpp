// Adaptive-precision SIMD: headroom boundaries (bias-aware, the
// check_i16_headroom regression), saturation certification at the exact u8
// ceiling, transparent i8 -> i16 escalation matching the scalar oracle, and
// query-profile reuse across runs and parallel partitions.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "align/engine.hpp"
#include "align/query_profile.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "parallel/parallel_finder.hpp"
#include "seq/generator.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"
#include "util/aligned.hpp"

namespace repro {
namespace {

using align::EngineKind;
using align::Precision;
using core::FinderOptions;

seq::Sequence homopolymer(int m) {
  // All-A DNA: the split at r0 = m/2 scores exactly match * (m/2), so the
  // kernel peak hits the static headroom bound with equality.
  return seq::Sequence::from_string("homopoly", std::string(
                                        static_cast<std::size_t>(m), 'A'),
                                    seq::Alphabet::dna());
}

std::vector<EngineKind> adaptive_kinds() {
  return {EngineKind::kSimdAutoGeneric, EngineKind::kSimdAuto};
}

std::vector<EngineKind> explicit_u8_kinds() {
  std::vector<EngineKind> kinds{EngineKind::kSimd8x8Generic};
#if REPRO_HAVE_SSE2
  kinds.push_back(EngineKind::kSimd16x8);
#endif
  if (align::avx2_available()) kinds.push_back(EngineKind::kSimd32x8);
  return kinds;
}

// ---------------------------------------------------------------------------
// Static headroom: precision_fits / check_headroom boundaries

TEST(PrecisionHeadroom, I16BoundaryIsExact) {
  // paper_example (match +2): bound = 2 * (m/2) = m for even m. The i16
  // ceiling is 32766 — a peak of 32767 is indistinguishable from a clamped
  // lane, so 32767 must already be rejected.
  const seq::Scoring dna = seq::Scoring::paper_example();
  EXPECT_TRUE(align::precision_fits(Precision::kI16, 32766, dna));
  EXPECT_TRUE(align::precision_fits(Precision::kI16, 32767, dna));  // bound 32766
  EXPECT_FALSE(align::precision_fits(Precision::kI16, 32768, dna));
  EXPECT_NO_THROW(align::check_headroom(EngineKind::kSimd8Generic, 32766, dna));
  EXPECT_THROW(align::check_headroom(EngineKind::kSimd8Generic, 32768, dna),
               std::logic_error);
}

TEST(PrecisionHeadroom, I8BoundaryAccountsForBias) {
  // The u8 ceiling is 255 - bias - max_score, NOT 255 - max_score: with a
  // deeply negative mismatch the bias eats most of the range. This is the
  // regression for the old check that ignored the bias entirely.
  const seq::Scoring biased{seq::ScoreMatrix::uniform(seq::Alphabet::dna(),
                                                      3, -100),
                            seq::GapPenalty{2, 1}};
  // bias 100, max 3 -> ceiling 152; bound = 3 * (m/2).
  EXPECT_TRUE(align::precision_fits(Precision::kI8, 100, biased));   // 150
  EXPECT_FALSE(align::precision_fits(Precision::kI8, 104, biased));  // 156
  EXPECT_THROW(align::check_headroom(EngineKind::kSimd8x8Generic, 104, biased),
               std::logic_error);

  const seq::Scoring dna = seq::Scoring::paper_example();  // ceiling 252
  EXPECT_TRUE(align::precision_fits(Precision::kI8, 252, dna));
  EXPECT_FALSE(align::precision_fits(Precision::kI8, 254, dna));
}

TEST(PrecisionHeadroom, I8RejectsUnbiasableScoringOutright) {
  // bias + max > 255: no u8 profile exists at any length.
  const seq::Scoring wild{seq::ScoreMatrix::uniform(seq::Alphabet::dna(),
                                                    2, -300),
                          seq::GapPenalty{2, 1}};
  EXPECT_FALSE(align::precision_fits(Precision::kI8, 4, wild));
  // Gap penalties past a u8 also disqualify the precision.
  const seq::Scoring wide_gap{seq::ScoreMatrix::dna(2, -1),
                              seq::GapPenalty{300, 1}};
  EXPECT_FALSE(align::precision_fits(Precision::kI8, 4, wide_gap));
}

TEST(PrecisionHeadroom, AdaptiveAndI32AreNeverRejected) {
  const seq::Scoring protein = seq::Scoring::protein_default();
  EXPECT_NO_THROW(align::check_headroom(EngineKind::kSimdAuto, 100000, protein));
  EXPECT_NO_THROW(
      align::check_headroom(EngineKind::kSimd4x32Generic, 100000, protein));
  EXPECT_TRUE(align::precision_fits(Precision::kAdaptive, 100000, protein));
  EXPECT_TRUE(align::precision_fits(Precision::kI32, 100000, protein));
}

// ---------------------------------------------------------------------------
// Kernel saturation certification at the exact u8 ceiling

TEST(PrecisionSaturation, HomopolymerAtCeilingStaysCleanAndMatchesScalar) {
  // m = 252: peak == 252 == ceiling, certified clean — the conservative
  // certificate must not false-positive at equality.
  const seq::Sequence s = homopolymer(252);
  const seq::Scoring dna = seq::Scoring::paper_example();
  ASSERT_TRUE(align::precision_fits(Precision::kI8, s.length(), dna));
  FinderOptions opt;
  opt.num_top_alignments = 2;
  const auto scalar = align::make_engine(EngineKind::kScalar);
  const auto reference = find_top_alignments(s, dna, opt, *scalar);
  for (const auto kind : explicit_u8_kinds()) {
    const auto engine = align::make_engine(kind);
    const auto res = find_top_alignments(s, dna, opt, *engine);
    std::string diff;
    EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
        << engine->name() << ": " << diff;
    EXPECT_GT(engine->precision_stats().i8_sweeps, 0u) << engine->name();
    EXPECT_EQ(engine->precision_stats().escalations, 0u) << engine->name();
  }
}

TEST(PrecisionSaturation, PastCeilingExplicitU8ThrowsAdaptiveEscalates) {
  // m = 254: the middle split reaches 254 > ceiling 252. An explicit u8
  // engine must refuse (uncertifiable sweep); the adaptive engines must
  // escalate that group to i16 and still match the scalar oracle exactly.
  const seq::Sequence s = homopolymer(254);
  const seq::Scoring dna = seq::Scoring::paper_example();
  ASSERT_FALSE(align::precision_fits(Precision::kI8, s.length(), dna));
  FinderOptions opt;
  opt.num_top_alignments = 2;
  for (const auto kind : explicit_u8_kinds()) {
    const auto engine = align::make_engine(kind);
    EXPECT_THROW(find_top_alignments(s, dna, opt, *engine), std::logic_error)
        << engine->name();
  }
  const auto scalar = align::make_engine(EngineKind::kScalar);
  const auto reference = find_top_alignments(s, dna, opt, *scalar);
  for (const auto kind : adaptive_kinds()) {
    const auto engine = align::make_engine(kind);
    const auto res = find_top_alignments(s, dna, opt, *engine);
    std::string diff;
    EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
        << engine->name() << ": " << diff;
    EXPECT_GT(engine->precision_stats().escalations, 0u) << engine->name();
    EXPECT_GT(engine->precision_stats().i16_sweeps, 0u) << engine->name();
  }
}

// ---------------------------------------------------------------------------
// Adaptive escalation on realistic workloads

// Highly conserved protein repeats: alignments run across several copies,
// so blosum62 scores blow past the biased u8 ceiling (255 - 4 - 11 = 240).
seq::GeneratedSequence saturating_protein(std::uint64_t seed) {
  seq::RepeatSpec spec;
  spec.unit_length = 24;
  spec.copies = 8;
  spec.conservation = 0.95;
  spec.indel_rate = 0.0;
  spec.tandem = true;
  return seq::make_repeat_sequence(seq::Alphabet::protein(), 240, spec, seed);
}

TEST(PrecisionAdaptive, EscalatesOnProteinAndMatchesScalar) {
  // The adaptive engines must demonstrably escalate on a saturating
  // workload and still be lossless.
  const auto g = saturating_protein(22);
  const seq::Scoring protein = seq::Scoring::protein_default();
  FinderOptions opt;
  opt.num_top_alignments = 6;
  const auto scalar = align::make_engine(EngineKind::kScalar);
  const auto reference = find_top_alignments(g.sequence, protein, opt, *scalar);
  for (const auto kind : adaptive_kinds()) {
    const auto engine = align::make_engine(kind);
    const auto res = find_top_alignments(g.sequence, protein, opt, *engine);
    std::string diff;
    EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
        << engine->name() << ": " << diff;
    const auto stats = engine->precision_stats();
    EXPECT_GT(stats.escalations, 0u) << engine->name();
    EXPECT_GT(stats.i16_sweeps, 0u) << engine->name();
    // The finder surfaces the engine's counters in its own stats.
    EXPECT_EQ(res.stats.precision_escalations, stats.escalations)
        << engine->name();
    EXPECT_EQ(res.stats.i16_sweeps, stats.i16_sweeps) << engine->name();
  }
}

TEST(PrecisionAdaptive, StaysI8InRangeAndReusesProfile) {
  // In-range DNA: no sweep may escalate, and the query profile is built
  // exactly once per (sequence, scoring) — later sweeps and a whole second
  // run on the same engine hit the cache.
  const auto s = seq::random_sequence(seq::Alphabet::dna(), 120, 24);
  const seq::Scoring dna = seq::Scoring::paper_example();
  FinderOptions opt;
  opt.num_top_alignments = 5;
  for (const auto kind : adaptive_kinds()) {
    const auto engine = align::make_engine(kind);
    const auto res = find_top_alignments(s, dna, opt, *engine);
    const auto stats = engine->precision_stats();
    EXPECT_EQ(stats.escalations, 0u) << engine->name();
    EXPECT_EQ(stats.i16_sweeps, 0u) << engine->name();
    EXPECT_GT(stats.i8_sweeps, 0u) << engine->name();
    EXPECT_EQ(stats.profile_builds, 1u) << engine->name();
    EXPECT_GT(stats.profile_hits, 0u) << engine->name();
    EXPECT_EQ(res.stats.i8_sweeps, stats.i8_sweeps) << engine->name();

    const auto again = find_top_alignments(s, dna, opt, *engine);
    std::string diff;
    EXPECT_TRUE(core::same_tops(res.tops, again.tops, &diff))
        << engine->name() << ": " << diff;
    EXPECT_EQ(engine->precision_stats().profile_builds, 1u)
        << engine->name() << ": second run must reuse the cached profile";
  }
}

TEST(PrecisionAdaptive, ParallelAutoMatchesSequentialAndSumsStats) {
  const auto g = saturating_protein(17);
  const seq::Scoring protein = seq::Scoring::protein_default();
  FinderOptions opt;
  opt.num_top_alignments = 8;
  const auto seq_engine = align::make_engine(EngineKind::kSimdAuto);
  const auto reference = find_top_alignments(g.sequence, protein, opt, *seq_engine);

  parallel::ParallelOptions popt;
  popt.threads = 3;
  popt.finder.num_top_alignments = 8;
  const auto par = parallel::find_top_alignments_parallel(
      g.sequence, protein, popt, align::engine_factory(EngineKind::kSimdAuto));
  std::string diff;
  EXPECT_TRUE(core::same_tops(reference.tops, par.tops, &diff)) << diff;
  // Worker engines are fresh per partition; their precision counters are
  // summed into the parallel result.
  EXPECT_GT(par.stats.i8_sweeps + par.stats.i16_sweeps, 0u);
  EXPECT_GT(par.stats.precision_escalations, 0u);
}

// ---------------------------------------------------------------------------
// Query-profile content keying and scratch alignment contract

TEST(PrecisionProfile, ContentKeyedCacheDetectsEveryIngredientChange) {
  align::PrecisionStats stats;
  align::QueryProfileT<std::uint8_t> profile;
  const auto s1 = seq::random_sequence(seq::Alphabet::dna(), 40, 7);
  const auto s2 = seq::random_sequence(seq::Alphabet::dna(), 40, 8);
  const seq::Scoring a = seq::Scoring::paper_example();
  seq::Scoring b = a;
  b.gap.extend += 1;

  EXPECT_TRUE(profile.ensure(s1.codes(), a, stats));   // build
  EXPECT_FALSE(profile.ensure(s1.codes(), a, stats));  // hit
  EXPECT_TRUE(profile.ensure(s2.codes(), a, stats));   // sequence changed
  EXPECT_TRUE(profile.ensure(s2.codes(), b, stats));   // gap changed
  EXPECT_FALSE(profile.ensure(s2.codes(), b, stats));
  EXPECT_EQ(stats.profile_builds, 3u);
  EXPECT_EQ(stats.profile_hits, 2u);
  EXPECT_TRUE(profile.feasible());
  EXPECT_EQ(profile.bias(), 1);
  EXPECT_EQ(profile.max_score(), 2);
}

TEST(PrecisionProfile, InfeasibleScoringIsMarkedNotCrashed) {
  // A scoring whose bias + max exceeds the u8 range still builds (for the
  // content key) but reports infeasible, so callers fall back to i16.
  align::PrecisionStats stats;
  align::QueryProfileT<std::uint8_t> profile;
  const auto s = seq::random_sequence(seq::Alphabet::dna(), 40, 7);
  const seq::Scoring wild{seq::ScoreMatrix::uniform(seq::Alphabet::dna(),
                                                    2, -300),
                          seq::GapPenalty{2, 1}};
  EXPECT_TRUE(profile.ensure(s.codes(), wild, stats));
  EXPECT_FALSE(profile.feasible());
}

TEST(PrecisionProfile, AlignedAllocatorSatisfiesAvx2Loads) {
  // The u8 scratch rows are loaded with 32-byte AVX2 vectors; the shared
  // allocator must hand out storage that satisfies them.
  std::vector<std::uint8_t, util::AlignedAllocator<std::uint8_t>> v(100);
  EXPECT_TRUE(util::is_vector_aligned(v.data()));
  std::vector<std::int16_t, util::AlignedAllocator<std::int16_t>> w(100);
  EXPECT_TRUE(util::is_vector_aligned(w.data()));
}

}  // namespace
}  // namespace repro
