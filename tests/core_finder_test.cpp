// The new sequential algorithm, anchored on the paper's Fig.-4 example:
// the three nonoverlapping top alignments of ATGCATGCATGC.
#include <gtest/gtest.h>

#include "align/engine.hpp"
#include "core/old_finder.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "seq/generator.hpp"

namespace repro::core {
namespace {

using seq::Alphabet;
using seq::Scoring;
using seq::Sequence;

std::vector<std::pair<int, int>> shift_pairs(int i0, int j0, int n) {
  std::vector<std::pair<int, int>> out;
  for (int k = 0; k < n; ++k) out.emplace_back(i0 + k, j0 + k);
  return out;
}

TEST(Finder, PaperFig4ThreeTopAlignments) {
  const auto s = Sequence::from_string("fig4", "ATGCATGCATGC", Alphabet::dna());
  const Scoring scoring = Scoring::paper_example();
  FinderOptions opt;
  opt.num_top_alignments = 3;
  const auto engine = align::make_engine(align::EngineKind::kScalar);
  const FinderResult res = find_top_alignments(s, scoring, opt, *engine);
  ASSERT_EQ(res.tops.size(), 3u);
  validate_tops(res.tops, s, scoring);

  // Top 1: prefix ATGC matched with the first ATGC of the suffix.
  EXPECT_EQ(res.tops[0].r, 4);
  EXPECT_EQ(res.tops[0].score, 8);
  EXPECT_EQ(res.tops[0].pairs, shift_pairs(0, 4, 4));
  // Top 2: the same rectangle, second ATGC of the suffix (the paper's
  // "equivalent" alignment).
  EXPECT_EQ(res.tops[1].r, 4);
  EXPECT_EQ(res.tops[1].score, 8);
  EXPECT_EQ(res.tops[1].pairs, shift_pairs(0, 8, 4));
  // Top 3: prefix ATGCATGC's second half matched with the suffix ATGC.
  EXPECT_EQ(res.tops[2].r, 8);
  EXPECT_EQ(res.tops[2].score, 8);
  EXPECT_EQ(res.tops[2].pairs, shift_pairs(4, 8, 4));
}

TEST(Finder, ScoresAreNonincreasing) {
  const auto g = seq::synthetic_titin(300, 1);
  FinderOptions opt;
  opt.num_top_alignments = 12;
  const auto res = find_top_alignments(g.sequence, Scoring::protein_default(), opt);
  ASSERT_GE(res.tops.size(), 2u);
  for (std::size_t t = 1; t < res.tops.size(); ++t)
    EXPECT_LE(res.tops[t].score, res.tops[t - 1].score);
}

TEST(Finder, FindsImplantedRepeats) {
  // Top alignments should land on the implanted repeat copies.
  const auto g = seq::synthetic_dna_tandem(300, 20, 6, 7);
  FinderOptions opt;
  opt.num_top_alignments = 5;
  const auto res =
      find_top_alignments(g.sequence, Scoring::paper_example(), opt);
  ASSERT_FALSE(res.tops.empty());
  validate_tops(res.tops, g.sequence, Scoring::paper_example());
  // The strongest alignment covers a decent stretch of the repeat block.
  EXPECT_GE(static_cast<int>(res.tops[0].pairs.size()), 15);
}

TEST(Finder, MinScoreStopsEarly) {
  const auto s = seq::random_sequence(Alphabet::dna(), 80, 3);
  FinderOptions opt;
  opt.num_top_alignments = 1000;
  opt.min_score = 10;  // random DNA rarely sustains score-10 self-alignments
  const auto res = find_top_alignments(s, Scoring::paper_example(), opt);
  EXPECT_LT(res.tops.size(), 1000u);
  for (const auto& top : res.tops) EXPECT_GE(top.score, 10);
}

TEST(Finder, StatsAreCoherent) {
  const auto g = seq::synthetic_titin(250, 2);
  FinderOptions opt;
  opt.num_top_alignments = 8;
  const auto engine = align::make_engine(align::EngineKind::kScalar);
  const auto res =
      find_top_alignments(g.sequence, Scoring::protein_default(), opt, *engine);
  const int m = g.sequence.length();
  EXPECT_EQ(res.stats.first_alignments, static_cast<std::uint64_t>(m - 1));
  EXPECT_EQ(res.stats.tracebacks, res.tops.size());
  EXPECT_GT(res.stats.realignments, 0u);
  EXPECT_GT(res.stats.cells, 0u);
  EXPECT_EQ(res.stats.speculative, 0u);  // scalar groups have one member
}

TEST(Finder, BestFirstSkipsMostRealignments) {
  // The paper: best-first ordering avoids 90-97 % of the realignments an
  // exhaustive sweep performs. On synthetic repeats the exact fraction
  // varies; require a substantial cut.
  const auto g = seq::synthetic_titin(400, 3);
  FinderOptions best;
  best.num_top_alignments = 10;
  FinderOptions sweep = best;
  sweep.policy = RescanPolicy::kExhaustiveSweep;
  const auto e1 = align::make_engine(align::EngineKind::kScalar);
  const auto e2 = align::make_engine(align::EngineKind::kScalar);
  const auto res_best =
      find_top_alignments(g.sequence, Scoring::protein_default(), best, *e1);
  const auto res_sweep =
      find_top_alignments(g.sequence, Scoring::protein_default(), sweep, *e2);
  ASSERT_EQ(res_best.tops.size(), res_sweep.tops.size());
  EXPECT_LT(res_best.stats.realignments * 2, res_sweep.stats.realignments);
}

TEST(Finder, RequestingMoreTopsThanExistIsSafe) {
  const auto s = Sequence::from_string("tiny", "ATGCATGC", Alphabet::dna());
  FinderOptions opt;
  opt.num_top_alignments = 500;
  const auto res = find_top_alignments(s, Scoring::paper_example(), opt);
  EXPECT_LT(res.tops.size(), 500u);
  validate_tops(res.tops, s, Scoring::paper_example());
}

TEST(Finder, RejectsDegenerateInput) {
  const auto s = Sequence::from_string("one", "A", Alphabet::dna());
  EXPECT_THROW(find_top_alignments(s, Scoring::paper_example(), {}),
               std::logic_error);
  const auto p = seq::random_sequence(Alphabet::protein(), 50, 1);
  // Alphabet mismatch between sequence and matrix must be rejected.
  EXPECT_THROW(find_top_alignments(p, Scoring::paper_example(), {}),
               std::logic_error);
}

TEST(Finder, RenderAndSummaryWork) {
  const auto s = Sequence::from_string("fig4", "ATGCATGCATGC", Alphabet::dna());
  FinderOptions opt;
  opt.num_top_alignments = 1;
  const auto res = find_top_alignments(s, Scoring::paper_example(), opt);
  ASSERT_EQ(res.tops.size(), 1u);
  EXPECT_EQ(render(res.tops[0], s), "ATGC\n||||\nATGC\n");
  EXPECT_NE(summary(res.tops[0]).find("r=4"), std::string::npos);
}

TEST(OldFinder, PaperFig4MatchesNewAlgorithm) {
  const auto s = Sequence::from_string("fig4", "ATGCATGCATGC", Alphabet::dna());
  const Scoring scoring = Scoring::paper_example();
  FinderOptions opt;
  opt.num_top_alignments = 3;
  const auto old_res = find_top_alignments_old(s, scoring, opt);
  const auto new_res = find_top_alignments(s, scoring, opt);
  std::string diff;
  EXPECT_TRUE(same_tops(old_res.tops, new_res.tops, &diff)) << diff;
}

}  // namespace
}  // namespace repro::core
