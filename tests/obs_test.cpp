// Observability layer: registry slots, snapshot/reset semantics, the
// perf-record JSON schema, and the end-to-end wiring through the finder.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "align/engine.hpp"
#include "core/top_alignment_finder.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "seq/generator.hpp"
#include "util/json.hpp"

namespace repro::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  if constexpr (kEnabled) {
    EXPECT_EQ(c.value(), 42u);
  } else {
    EXPECT_EQ(c.value(), 0u);  // disabled builds report zero, never garbage
  }
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TimeAccum, AccumulatesSeconds) {
  TimeAccum t;
  t.add_seconds(0.25);
  t.add_seconds(0.5);
  if constexpr (kEnabled) {
    EXPECT_NEAR(t.seconds(), 0.75, 1e-6);
  } else {
    EXPECT_EQ(t.seconds(), 0.0);
  }
}

TEST(RegistryTest, CounterSlotsAreFindOrCreateAndStable) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  // reset() zeroes values but must keep the slot reference valid — hot
  // paths cache the reference in a function-local static.
  reg.reset();
  EXPECT_EQ(a.value(), 0u);
  a.add(5);
  EXPECT_EQ(&reg.counter("x"), &a);
  if constexpr (kEnabled) {
    EXPECT_EQ(reg.snapshot().counters.at("x"), 5u);
  }
}

TEST(RegistryTest, SnapshotCapturesEverySlotKind) {
  Registry reg;
  reg.counter("cells").add(100);
  reg.timer("compute").add_seconds(1.5);
  reg.set_gauge("efficiency_pct", 95.0);
  reg.set_gauge("efficiency_pct", 96.1);  // last write wins
  reg.record_span("run", 0.0, 2.0);

  const auto snap = reg.snapshot();
  if constexpr (kEnabled) {
    EXPECT_EQ(snap.counters.at("cells"), 100u);
    EXPECT_NEAR(snap.timers_sec.at("compute"), 1.5, 1e-6);
    EXPECT_DOUBLE_EQ(snap.gauges.at("efficiency_pct"), 96.1);
    ASSERT_EQ(snap.spans.size(), 1u);
    EXPECT_EQ(snap.spans[0].name, "run");
    EXPECT_DOUBLE_EQ(snap.spans[0].duration_sec, 2.0);
  } else {
    EXPECT_EQ(snap.counters.at("cells"), 0u);
  }
  EXPECT_EQ(snap.spans_dropped, 0u);
}

TEST(RegistryTest, ResetClearsGaugesAndSpans) {
  Registry reg;
  reg.set_gauge("g", 1.0);
  reg.record_span("s", 0.0, 1.0);
  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.spans.empty());
}

TEST(RegistryTest, SpanLogIsBounded) {
  Registry reg;
  for (std::size_t i = 0; i < Registry::kMaxSpans + 10; ++i)
    reg.record_span("s", 0.0, 0.0);
  const auto snap = reg.snapshot();
  EXPECT_LE(snap.spans.size(), Registry::kMaxSpans);
  if constexpr (kEnabled) {
    EXPECT_EQ(snap.spans_dropped, 10u);
  }
}

TEST(RegistryTest, ConcurrentAddsAreLossless) {
  if constexpr (!kEnabled) GTEST_SKIP() << "REPRO_OBS=OFF build";
  Registry reg;
  Counter& c = reg.counter("shared");
  std::vector<std::thread> threads;
  constexpr int kThreads = 4, kAdds = 10000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(RegistryTest, WriteJsonShape) {
  Registry reg;
  reg.counter("cells").add(7);
  reg.timer("sec").add_seconds(0.5);
  reg.set_gauge("pct", 50.0);
  reg.record_span("phase", 0.25, 1.0);
  util::JsonWriter json;
  reg.write_json(json);
  const std::string doc = json.str();
  EXPECT_NE(doc.find("\"counters\":{"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"timers_sec\":{"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"gauges\":{"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"spans\":["), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"spans_dropped\":"), std::string::npos) << doc;
  if constexpr (kEnabled) {
    EXPECT_NE(doc.find("\"cells\":7"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"name\":\"phase\""), std::string::npos) << doc;
  }
}

TEST(ScopedTimerTest, AddsElapsedTime) {
  TimeAccum t;
  { ScopedTimer timer(t); }
  if constexpr (kEnabled) {
    EXPECT_GE(t.seconds(), 0.0);
  }
}

TEST(ScopedSpanTest, RecordsOnDestruction) {
  Registry reg;
  { ScopedSpan span(reg, "scope"); }
  const auto snap = reg.snapshot();
  if constexpr (kEnabled) {
    ASSERT_EQ(snap.spans.size(), 1u);
    EXPECT_EQ(snap.spans[0].name, "scope");
    EXPECT_GE(snap.spans[0].duration_sec, 0.0);
  } else {
    EXPECT_TRUE(snap.spans.empty());
  }
}

TEST(MetricsReportTest, SchemaShape) {
  MetricsReport report("unit_test");
  report.param("engine", "scalar");
  report.param("m", 1200);
  report.param("fast", true);
  report.metric("cells_per_sec", 1.5e9);
  report.counter("cells", 42);
  const std::string doc = report.to_json();
  EXPECT_NE(doc.find("\"schema\":\"repro-metrics-v1\""), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"name\":\"unit_test\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"engine\":\"scalar\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"m\":1200"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"fast\":true"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"cells\":42"), std::string::npos) << doc;
  // No registry requested: the key must be absent entirely.
  EXPECT_EQ(doc.find("\"registry\""), std::string::npos) << doc;
}

TEST(MetricsReportTest, EmbedsRegistrySnapshot) {
  Registry reg;
  reg.counter("finder.cells").add(9);
  MetricsReport report("with_registry");
  report.include_registry(reg);
  const std::string doc = report.to_json();
  EXPECT_NE(doc.find("\"registry\":{"), std::string::npos) << doc;
  if constexpr (kEnabled) {
    EXPECT_NE(doc.find("\"finder.cells\":9"), std::string::npos) << doc;
  }
}

// End-to-end: a sequential finder run populates the global registry with
// the paper-claim counters (§3 skip rate inputs, cell counts, spans).
TEST(Integration, FinderRunPopulatesGlobalRegistry) {
  if constexpr (!kEnabled) GTEST_SKIP() << "REPRO_OBS=OFF build";
  Registry::global().reset();
  const auto g = seq::synthetic_titin(200, 11);
  core::FinderOptions opt;
  opt.num_top_alignments = 5;
  const auto engine = align::make_engine(align::EngineKind::kScalar);
  const auto res = core::find_top_alignments(
      g.sequence, seq::Scoring::protein_default(), opt, *engine);
  ASSERT_FALSE(res.tops.empty());

  const auto snap = Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("finder.cells"), res.stats.cells);
  EXPECT_EQ(snap.counters.at("finder.first_alignments"),
            res.stats.first_alignments);
  EXPECT_EQ(snap.counters.at("finder.tracebacks"), res.stats.tracebacks);
  // The engine's own accounting must agree with the finder's.
  EXPECT_EQ(snap.counters.at("align.lane_cells"), res.stats.cells);
  EXPECT_GT(snap.counters.at("finder.queue.pushes"), 0u);
  std::set<std::string> span_names;
  for (const auto& span : snap.spans) span_names.insert(span.name);
  EXPECT_TRUE(span_names.count("finder.run")) << "finder.run span missing";
}

}  // namespace
}  // namespace repro::obs
