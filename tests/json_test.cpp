#include <gtest/gtest.h>

#include "util/json.hpp"

namespace repro::util {
namespace {

TEST(Json, EmptyObjectAndArray) {
  EXPECT_EQ(JsonWriter().begin_object().end_object().str(), "{}");
  EXPECT_EQ(JsonWriter().begin_array().end_array().str(), "[]");
}

TEST(Json, KeyValuePairs) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "titin");
  w.kv("length", 34350);
  w.kv("score", 2.5);
  w.kv("ok", true);
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"titin","length":34350,"score":2.5,"ok":true})");
}

TEST(Json, NestedContainersAndCommas) {
  JsonWriter w;
  w.begin_array();
  w.begin_object().kv("a", 1).end_object();
  w.begin_object().kv("b", 2).end_object();
  w.value(3);
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"a":1},{"b":2},3])");
}

TEST(Json, ArrayInsideObject) {
  JsonWriter w;
  w.begin_object();
  w.key("xs").begin_array().value(1).value(2).end_array();
  w.kv("tail", "z");
  w.end_object();
  EXPECT_EQ(w.str(), R"({"xs":[1,2],"tail":"z"})");
}

TEST(Json, Escaping) {
  JsonWriter w;
  w.begin_object().kv("k\"1", "a\\b\nc\t").end_object();
  EXPECT_EQ(w.str(), "{\"k\\\"1\":\"a\\\\b\\nc\\t\"}");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, StructureErrors) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // keys only in objects
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.end_object(), std::logic_error);  // dangling key
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), std::logic_error);  // unterminated
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.kv("x", 1.0 / 0.0), std::logic_error);  // non-finite
  }
}

}  // namespace
}  // namespace repro::util
