#include <gtest/gtest.h>

#include "seq/generator.hpp"

namespace repro::seq {
namespace {

TEST(Generator, RandomSequenceDeterministic) {
  const auto a = random_sequence(Alphabet::protein(), 200, 7);
  const auto b = random_sequence(Alphabet::protein(), 200, 7);
  EXPECT_EQ(a.to_string(), b.to_string());
  const auto c = random_sequence(Alphabet::protein(), 200, 8);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(Generator, RandomSequenceUsesCoreAlphabetOnly) {
  const auto s = random_sequence(Alphabet::dna(), 500, 3);
  for (int i = 0; i < s.length(); ++i)
    EXPECT_LT(s[i], Alphabet::dna().core_size());
}

TEST(Generator, RepeatSequenceExactLength) {
  RepeatSpec spec;
  spec.unit_length = 20;
  spec.copies = 5;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto g = make_repeat_sequence(Alphabet::protein(), 300, spec, seed);
    EXPECT_EQ(g.sequence.length(), 300);
    EXPECT_EQ(g.copies.size(), 5u);
  }
}

TEST(Generator, CopiesAreOrderedAndInBounds) {
  RepeatSpec spec;
  spec.unit_length = 30;
  spec.copies = 6;
  spec.spacer_min = 2;
  spec.spacer_max = 10;
  const auto g = make_repeat_sequence(Alphabet::protein(), 400, spec, 11);
  int prev_end = 0;
  for (const auto& c : g.copies) {
    EXPECT_GE(c.begin, prev_end);
    EXPECT_LT(c.begin, c.end);
    EXPECT_LE(c.end, g.sequence.length());
    prev_end = c.end;
  }
}

TEST(Generator, InterspersedMode) {
  RepeatSpec spec;
  spec.unit_length = 25;
  spec.copies = 4;
  spec.tandem = false;
  const auto g = make_repeat_sequence(Alphabet::protein(), 500, spec, 13);
  EXPECT_EQ(g.sequence.length(), 500);
  EXPECT_EQ(g.copies.size(), 4u);
  int prev_end = 0;
  for (const auto& c : g.copies) {
    EXPECT_GE(c.begin, prev_end);
    prev_end = c.end;
  }
}

TEST(Generator, ConservationControlsIdentity) {
  // With full conservation and no indels every copy equals the unit.
  RepeatSpec spec;
  spec.unit_length = 15;
  spec.copies = 4;
  spec.conservation = 1.0;
  spec.indel_rate = 0.0;
  const auto g = make_repeat_sequence(Alphabet::dna(), 120, spec, 5);
  std::string first;
  for (const auto& c : g.copies) {
    const auto str = g.sequence.subsequence(c.begin, c.end).to_string();
    if (first.empty()) first = str;
    EXPECT_EQ(str, first);
    EXPECT_EQ(static_cast<int>(str.size()), 15);
  }
}

TEST(Generator, LowConservationDiverges) {
  RepeatSpec spec;
  spec.unit_length = 50;
  spec.copies = 2;
  spec.conservation = 0.2;
  spec.indel_rate = 0.0;
  const auto g = make_repeat_sequence(Alphabet::protein(), 150, spec, 17);
  const auto a = g.sequence.subsequence(g.copies[0].begin, g.copies[0].end).to_string();
  const auto b = g.sequence.subsequence(g.copies[1].begin, g.copies[1].end).to_string();
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += a[i] == b[i];
  // Roughly conservation^2 + noise; must be far from identical.
  EXPECT_LT(same, 30);
  EXPECT_GT(same, 0);
}

TEST(Generator, SyntheticTitinShape) {
  const auto g = synthetic_titin(2000, 42);
  EXPECT_EQ(g.sequence.length(), 2000);
  EXPECT_GT(g.copies.size(), 10u);  // ~95-residue domains over 90 % of 2000
  EXPECT_EQ(&g.sequence.alphabet(), &Alphabet::protein());
  // Deterministic.
  const auto h = synthetic_titin(2000, 42);
  EXPECT_EQ(g.sequence.to_string(), h.sequence.to_string());
}

TEST(Generator, SyntheticDnaTandem) {
  const auto g = synthetic_dna_tandem(600, 12, 8, 3);
  EXPECT_EQ(g.sequence.length(), 600);
  EXPECT_EQ(g.copies.size(), 8u);
  EXPECT_EQ(&g.sequence.alphabet(), &Alphabet::dna());
}

TEST(Generator, TandemShedsCopiesWhenOverBudget) {
  // A tandem block larger than the budget sheds trailing copies instead of
  // failing (the ground truth shrinks with it).
  RepeatSpec spec;
  spec.unit_length = 100;
  spec.copies = 10;
  const auto g = make_repeat_sequence(Alphabet::dna(), 250, spec, 1);
  EXPECT_EQ(g.sequence.length(), 250);
  EXPECT_LT(g.copies.size(), 10u);
  EXPECT_GE(g.copies.size(), 1u);
}

TEST(Generator, RejectsImpossibleSpecs) {
  RepeatSpec spec;
  spec.unit_length = 100;
  spec.copies = 10;
  spec.tandem = false;  // interspersed mode cannot shed copies
  EXPECT_THROW(make_repeat_sequence(Alphabet::dna(), 200, spec, 1),
               std::logic_error);
  RepeatSpec bad;
  bad.conservation = 1.5;
  EXPECT_THROW(make_repeat_sequence(Alphabet::dna(), 200, bad, 1),
               std::logic_error);
}

}  // namespace
}  // namespace repro::seq
