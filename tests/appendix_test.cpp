// Property tests for the Appendix-A claims the whole design rests on:
//   1. Bottom-row sufficiency: the best local alignment over *all cells of
//      all rectangles* equals the best over *bottom rows only*.
//   2. Override monotonicity: growing the override triangle never increases
//      any bottom-row value (the correctness basis of the best-first
//      upper-bound ordering).
//   3. Shadow detection: a rerouted (suboptimal) alignment's end value
//      differs from the archived original, so equality filtering rejects it.
#include <gtest/gtest.h>

#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "align/traceback.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "test_support.hpp"

namespace repro::align {
namespace {

using seq::Alphabet;
using seq::Scoring;

/// Best score over every cell of rectangle r (full-matrix recompute).
Score full_matrix_max(const seq::Sequence& s, int r, const Scoring& scoring) {
  const int m = s.length();
  const int rows = r;
  const int cols = m - r;
  std::vector<Score> h(static_cast<std::size_t>(cols) + 1, 0);
  std::vector<Score> max_y(static_cast<std::size_t>(cols) + 1, kNegInf);
  Score best = 0;
  for (int y = 1; y <= rows; ++y) {
    Score diag = 0;
    Score max_x = kNegInf;
    const std::int16_t* erow = scoring.matrix.row(s[y - 1]);
    for (int x = 1; x <= cols; ++x) {
      const Score up = h[static_cast<std::size_t>(x)];
      const Score inner = std::max({max_x, max_y[static_cast<std::size_t>(x)], diag});
      const Score cell =
          std::max(Score{0}, erow[s[r + x - 1]] + inner);
      h[static_cast<std::size_t>(x)] = cell;
      best = std::max(best, cell);
      max_x = std::max(diag - scoring.gap.open, max_x) - scoring.gap.extend;
      max_y[static_cast<std::size_t>(x)] =
          std::max(diag - scoring.gap.open, max_y[static_cast<std::size_t>(x)]) -
          scoring.gap.extend;
      diag = up;
    }
  }
  return best;
}

class AppendixProperty : public ::testing::TestWithParam<int> {};

TEST_P(AppendixProperty, BottomRowSufficiency) {
  // max over all cells of all rectangles == max over bottom rows of all
  // rectangles (an alignment ending v rows above the bottom of rectangle r
  // reappears, at least as strong, in the bottom row of rectangle r - v).
  const int seed = GetParam();
  const auto g = seq::synthetic_titin(150, 7000 + static_cast<std::uint64_t>(seed));
  const auto& s = g.sequence;
  const Scoring scoring = Scoring::protein_default();
  const auto engine = make_engine(EngineKind::kScalar);

  Score best_all_cells = 0;
  Score best_bottom = 0;
  for (int r = 1; r <= s.length() - 1; ++r) {
    best_all_cells = std::max(best_all_cells, full_matrix_max(s, r, scoring));
    const auto row = engine->align_one(testing::make_job(s, r, scoring));
    best_bottom = std::max(best_bottom, find_best_end(row).score);
  }
  EXPECT_EQ(best_all_cells, best_bottom);
}

TEST_P(AppendixProperty, OverrideMonotonicity) {
  // Adding pairs to the triangle can lower bottom-row values, never raise
  // them — cell by cell, for any pair set.
  const int seed = GetParam();
  util::Rng rng(9000 + static_cast<std::uint64_t>(seed));
  const auto g = seq::synthetic_dna_tandem(120, 10, 7, 100 + static_cast<std::uint64_t>(seed));
  const auto& s = g.sequence;
  const int m = s.length();
  const Scoring scoring = Scoring::paper_example();
  const auto engine = make_engine(EngineKind::kScalar);

  OverrideTriangle tri(m);
  std::vector<std::vector<Score>> prev_rows;
  for (int r = 1; r <= m - 1; ++r)
    prev_rows.push_back(engine->align_one(testing::make_job(s, r, scoring)));

  for (int grow = 0; grow < 4; ++grow) {
    testing::random_overrides(m, 60, rng, &tri);
    for (int r = 1; r <= m - 1; ++r) {
      const auto row = engine->align_one(testing::make_job(s, r, scoring, &tri));
      const auto& prev = prev_rows[static_cast<std::size_t>(r - 1)];
      for (std::size_t x = 0; x < row.size(); ++x)
        ASSERT_LE(row[x], prev[x]) << "r=" << r << " x=" << x;
      prev_rows[static_cast<std::size_t>(r - 1)] = row;
    }
  }
}

TEST_P(AppendixProperty, QueueBoundsAreUpperBounds) {
  // End-to-end consequence of monotonicity: during a best-first run, every
  // realignment's new score is <= the score it held from the older triangle.
  // (Checked indirectly: accepted scores are nonincreasing and every
  // accepted score equals its queued bound — validate_tops + the finder's
  // internal acceptance check cover this.)
  const int seed = GetParam();
  const auto g = seq::synthetic_titin(200, 7100 + static_cast<std::uint64_t>(seed));
  core::FinderOptions opt;
  opt.num_top_alignments = 8;
  const auto res = core::find_top_alignments(g.sequence,
                                             Scoring::protein_default(), opt);
  core::validate_tops(res.tops, g.sequence, Scoring::protein_default());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AppendixProperty, ::testing::Range(0, 4));

TEST(AppendixShadow, ReroutedAlignmentsAreRejected) {
  // Construct the shadow scenario directly: find the best alignment of some
  // rectangle, override its pairs, realign. Wherever the realigned bottom
  // row changed, a rerouted/suppressed alignment ends; where it is equal,
  // the paper accepts the cell. Verify that tracing a *changed* cell under
  // the old (value-agnostic) rule would yield an alignment whose score
  // differs from the true optimum through that cell — i.e. the equality
  // filter is exactly the right test.
  const auto g = seq::synthetic_dna_tandem(140, 12, 6, 77);
  const auto& s = g.sequence;
  const int m = s.length();
  const Scoring scoring = Scoring::paper_example();
  const auto engine = make_engine(EngineKind::kScalar);

  const int r = m / 2;
  const auto original = engine->align_one(testing::make_job(s, r, scoring));
  const Traceback tb = traceback_best(testing::make_job(s, r, scoring));

  OverrideTriangle tri(m);
  for (const auto& [i, j] : tb.pairs) tri.set(i, j);
  const auto realigned = engine->align_one(testing::make_job(s, r, scoring, &tri));

  // The accepted alignment's own end cell must have changed (its path is
  // now overridden).
  EXPECT_LT(realigned[static_cast<std::size_t>(tb.end_x - 1)],
            original[static_cast<std::size_t>(tb.end_x - 1)]);

  // Every changed cell is strictly lower (monotonicity), and the valid-max
  // the finder would use is the max over unchanged cells only.
  Score valid_max = 0;
  bool any_valid = false;
  for (std::size_t x = 0; x < realigned.size(); ++x) {
    ASSERT_LE(realigned[x], original[x]);
    if (realigned[x] == original[x]) {
      valid_max = std::max(valid_max, realigned[x]);
      any_valid = true;
    }
  }
  std::vector<std::int16_t> narrow(original.size());
  for (std::size_t x = 0; x < original.size(); ++x)
    narrow[x] = static_cast<std::int16_t>(original[x]);
  const BestEnd end = find_best_end(realigned, narrow);
  if (any_valid) {
    EXPECT_EQ(end.score, valid_max);
  } else {
    EXPECT_EQ(end.end_x, 0);
  }
}

TEST(AppendixShadow, RecomputedOriginalsEqualArchivedOriginals) {
  // The two shadow-check strategies (archive at version 0 vs recompute with
  // an empty triangle) see identical reference rows — overrides don't leak
  // into override-free alignments.
  const auto g = seq::synthetic_titin(160, 88);
  const auto& s = g.sequence;
  const Scoring scoring = Scoring::protein_default();
  const auto engine = make_engine(EngineKind::kScalar);
  OverrideTriangle tri(s.length());
  util::Rng rng(5);
  testing::random_overrides(s.length(), 200, rng, &tri);
  for (int r : {10, 60, 100, 150}) {
    const auto archived = engine->align_one(testing::make_job(s, r, scoring));
    const auto recomputed = engine->align_one(testing::make_job(s, r, scoring));
    EXPECT_EQ(archived, recomputed);
  }
}

}  // namespace
}  // namespace repro::align
