// Waterman–Eggert baseline: K-best nonoverlapping pair alignments (the
// cited predecessor of the paper's override machinery).
#include <gtest/gtest.h>

#include <set>

#include "align/engine.hpp"
#include "core/waterman_eggert.hpp"
#include "seq/generator.hpp"

namespace repro::core {
namespace {

using seq::Alphabet;
using seq::Scoring;
using seq::Sequence;

TEST(WatermanEggert, PaperExamplePair) {
  // The paper's §2.1 example: CTTACAGA vs ATTGCGA scores 6.
  const auto a = Sequence::from_string("a", "ATTGCGA", Alphabet::dna());
  const auto b = Sequence::from_string("b", "CTTACAGA", Alphabet::dna());
  const auto alignments = waterman_eggert(a, b, Scoring::paper_example(), 1);
  ASSERT_EQ(alignments.size(), 1u);
  EXPECT_EQ(alignments[0].score, 6);
  EXPECT_EQ(pair_score(alignments[0], a, b, Scoring::paper_example()), 6);
}

TEST(WatermanEggert, FindsBothCopies) {
  const auto a = Sequence::from_string("a", "ATGCATGC", Alphabet::dna());
  const auto b = Sequence::from_string("b", "ATGC", Alphabet::dna());
  const auto alignments = waterman_eggert(a, b, Scoring::paper_example(), 5);
  ASSERT_GE(alignments.size(), 2u);
  EXPECT_EQ(alignments[0].score, 8);  // first ATGC vs ATGC
  EXPECT_EQ(alignments[1].score, 8);  // second copy
  // Both use all four columns of b but different rows of a.
  EXPECT_NE(alignments[0].pairs.front().first, alignments[1].pairs.front().first);
}

TEST(WatermanEggert, AlignmentsNeverShareCells) {
  const auto ga = seq::synthetic_dna_tandem(120, 10, 5, 3);
  const auto gb = seq::synthetic_dna_tandem(100, 10, 4, 4);
  const auto alignments =
      waterman_eggert(ga.sequence, gb.sequence, Scoring::paper_example(), 10);
  std::set<std::pair<int, int>> used;
  for (const auto& alignment : alignments) {
    for (const auto& p : alignment.pairs)
      EXPECT_TRUE(used.insert(p).second)
          << "cell (" << p.first << "," << p.second << ") reused";
  }
}

TEST(WatermanEggert, ScoresNonincreasingAndReproducible) {
  const auto ga = seq::synthetic_titin(150, 11);
  const auto gb = seq::synthetic_titin(150, 12);
  const Scoring scoring = Scoring::protein_default();
  const auto alignments = waterman_eggert(ga.sequence, gb.sequence, scoring, 8);
  ASSERT_FALSE(alignments.empty());
  for (std::size_t k = 0; k < alignments.size(); ++k) {
    EXPECT_EQ(pair_score(alignments[k], ga.sequence, gb.sequence, scoring),
              alignments[k].score);
    if (k > 0) EXPECT_LE(alignments[k].score, alignments[k - 1].score);
  }
}

TEST(WatermanEggert, MinScoreStops) {
  const auto a = seq::random_sequence(Alphabet::dna(), 60, 5);
  const auto b = seq::random_sequence(Alphabet::dna(), 60, 6);
  const auto alignments = waterman_eggert(a, b, Scoring::paper_example(), 100, 12);
  for (const auto& alignment : alignments) EXPECT_GE(alignment.score, 12);
  EXPECT_LT(alignments.size(), 100u);
}

TEST(WatermanEggert, KZeroReturnsNothing) {
  const auto a = Sequence::from_string("a", "ACGT", Alphabet::dna());
  EXPECT_TRUE(waterman_eggert(a, a, Scoring::paper_example(), 0).empty());
}

TEST(WatermanEggert, FirstAlignmentMatchesSelfAlignmentMachinery) {
  // Aligning prefix vs suffix as an independent PAIR must reproduce the
  // rectangle machinery's first top alignment when that alignment ends in
  // the bottom row (which the best one always can, per Appendix A): compare
  // against the full self-alignment search.
  const auto g = seq::synthetic_dna_tandem(90, 9, 6, 8);
  const auto& s = g.sequence;
  const int r = 45;
  const auto prefix = s.subsequence(0, r);
  const auto suffix = s.subsequence(r, s.length());
  const auto pair =
      waterman_eggert(prefix, suffix, Scoring::paper_example(), 1);
  ASSERT_EQ(pair.size(), 1u);
  // The pair search is free to end anywhere, so its score can only be >=
  // the bottom-row-restricted rectangle score, and both are bounded by the
  // best over all rectangles.
  const auto engine = align::make_engine(align::EngineKind::kScalar);
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = nullptr;  // set below
  const Scoring scoring = Scoring::paper_example();
  job.scoring = &scoring;
  job.r0 = r;
  job.count = 1;
  std::vector<align::Score> row(static_cast<std::size_t>(s.length() - r));
  std::span<align::Score> out(row);
  engine->align(job, std::span<const std::span<align::Score>>(&out, 1));
  align::Score bottom_best = 0;
  for (align::Score v : row) bottom_best = std::max(bottom_best, v);
  EXPECT_GE(pair[0].score, bottom_best);
}

}  // namespace
}  // namespace repro::core
