// Linear-memory traceback: must reproduce the full-matrix traceback's score,
// end cell, validity and override avoidance on every input; the pair path
// may differ only among co-optimal alternatives.
#include <gtest/gtest.h>

#include "align/engine.hpp"
#include "align/linear_traceback.hpp"
#include "align/override_triangle.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "test_support.hpp"

namespace repro::align {
namespace {

using seq::Alphabet;
using seq::Scoring;

core::TopAlignment as_top(const Traceback& tb) {
  core::TopAlignment top;
  top.r = tb.r;
  top.score = tb.score;
  top.end_x = tb.end_x;
  top.pairs = tb.pairs;
  return top;
}

/// Full structural comparison against the reference traceback.
void expect_equivalent(const seq::Sequence& s, int r, const Scoring& scoring,
                       const OverrideTriangle* tri,
                       const std::set<std::pair<int, int>>* overridden) {
  const GroupJob job = testing::make_job(s, r, scoring, tri);
  const Traceback full = traceback_best(job);
  const Traceback linear = traceback_best_linear(job);
  EXPECT_EQ(linear.score, full.score) << "r=" << r;
  EXPECT_EQ(linear.end_x, full.end_x) << "r=" << r;
  // The path itself may be a different co-optimal one; its own invariants
  // must hold exactly.
  EXPECT_EQ(core::score_from_pairs(as_top(linear), s, scoring), linear.score);
  EXPECT_EQ(linear.pairs.back().first, r - 1);
  EXPECT_EQ(linear.pairs.back().second, r + linear.end_x - 1);
  if (overridden != nullptr) {
    for (const auto& p : linear.pairs)
      EXPECT_FALSE(overridden->contains(p))
          << "overridden pair (" << p.first << "," << p.second << ") on path";
  }
}

TEST(LinearTraceback, PaperFig2) {
  const auto s =
      seq::Sequence::from_string("fig2", "ATTGCGACTTACAGA", Alphabet::dna());
  const Scoring scoring = Scoring::paper_example();
  const Traceback tb =
      traceback_best_linear(testing::make_job(s, 7, scoring));
  EXPECT_EQ(tb.score, 6);
  EXPECT_EQ(tb.end_x, 8);
  EXPECT_EQ(core::score_from_pairs(as_top(tb), s, scoring), 6);
}

TEST(LinearTraceback, MatchesFullMatrixOnRandomDna) {
  util::Rng rng(606);
  const Scoring scoring = Scoring::paper_example();
  for (int iter = 0; iter < 15; ++iter) {
    const auto g = seq::synthetic_dna_tandem(
        60 + static_cast<int>(rng.below(80)), 9, 5, 7000 + iter);
    const int m = g.sequence.length();
    const int r =
        m / 4 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m / 2)));
    expect_equivalent(g.sequence, r, scoring, nullptr, nullptr);
  }
}

TEST(LinearTraceback, MatchesFullMatrixOnProtein) {
  util::Rng rng(707);
  const Scoring scoring = Scoring::protein_default();
  for (int iter = 0; iter < 10; ++iter) {
    const auto g = seq::synthetic_titin(
        150 + static_cast<int>(rng.below(150)), 8000 + iter);
    const int m = g.sequence.length();
    const int r =
        m / 4 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m / 2)));
    expect_equivalent(g.sequence, r, scoring, nullptr, nullptr);
  }
}

TEST(LinearTraceback, RespectsOverrides) {
  util::Rng rng(808);
  const Scoring scoring = Scoring::paper_example();
  for (int iter = 0; iter < 10; ++iter) {
    const auto g = seq::synthetic_dna_tandem(120, 10, 7, 9000 + iter);
    const int m = g.sequence.length();
    OverrideTriangle tri(m);
    const auto overridden = testing::random_overrides(m, 2 * m, rng, &tri);
    const int r = m / 2;
    const auto engine = make_engine(EngineKind::kScalar);
    const auto row =
        engine->align_one(testing::make_job(g.sequence, r, scoring, &tri));
    if (find_best_end(row).score <= 0) continue;
    expect_equivalent(g.sequence, r, scoring, &tri, &overridden);
  }
}

TEST(LinearTraceback, ShadowRejectionViaOriginalRow) {
  // Override the best alignment's own pairs and re-trace with the stored
  // original row: both tracebacks must pick the same (valid) end cell.
  const auto g = seq::synthetic_dna_tandem(140, 12, 6, 77);
  const auto& s = g.sequence;
  const Scoring scoring = Scoring::paper_example();
  const int r = s.length() / 2;
  const auto engine = make_engine(EngineKind::kScalar);
  const auto original = engine->align_one(testing::make_job(s, r, scoring));
  const Traceback first = traceback_best(testing::make_job(s, r, scoring));

  OverrideTriangle tri(s.length());
  for (const auto& [i, j] : first.pairs) tri.set(i, j);
  const auto realigned =
      engine->align_one(testing::make_job(s, r, scoring, &tri));
  if (find_best_end(realigned, std::span<const Score>(original)).score <= 0)
    GTEST_SKIP() << "everything shadowed on this seed";

  const GroupJob job = testing::make_job(s, r, scoring, &tri);
  const Traceback full =
      traceback_best(job, std::span<const Score>(original));
  const Traceback linear =
      traceback_best_linear(job, std::span<const Score>(original));
  EXPECT_EQ(linear.score, full.score);
  EXPECT_EQ(linear.end_x, full.end_x);
}

TEST(LinearTraceback, DeepRecursionOnLargeRectangle) {
  // A large span forces many checkpoint levels; memory stays linear while
  // the result matches the full-matrix walk's score.
  const auto g = seq::synthetic_titin(1500, 99);
  const Scoring scoring = Scoring::protein_default();
  expect_equivalent(g.sequence, 750, scoring, nullptr, nullptr);
}

TEST(LinearTraceback, FinderModeProducesValidResults) {
  const auto g = seq::synthetic_titin(300, 41);
  const Scoring scoring = Scoring::protein_default();
  core::FinderOptions full;
  full.num_top_alignments = 8;
  core::FinderOptions linear = full;
  linear.traceback = core::TracebackMode::kLinearSpace;

  const auto e1 = make_engine(EngineKind::kScalar);
  const auto e2 = make_engine(EngineKind::kScalar);
  const auto a = core::find_top_alignments(g.sequence, scoring, full, *e1);
  const auto b = core::find_top_alignments(g.sequence, scoring, linear, *e2);
  core::validate_tops(b.tops, g.sequence, scoring);
  ASSERT_FALSE(b.tops.empty());
  // The first acceptance is co-optimal-path-independent in score/end.
  EXPECT_EQ(a.tops[0].score, b.tops[0].score);
  EXPECT_EQ(a.tops[0].r, b.tops[0].r);
  EXPECT_EQ(a.tops[0].end_x, b.tops[0].end_x);
  EXPECT_EQ(a.tops.size(), b.tops.size());
}

TEST(LinearTraceback, FinderModeComposesWithLowMemory) {
  // Linear traceback + recompute-rows: the fully linear-memory pipeline.
  const auto g = seq::synthetic_dna_tandem(200, 14, 8, 51);
  const Scoring scoring = Scoring::paper_example();
  core::FinderOptions opt;
  opt.num_top_alignments = 6;
  opt.memory = core::MemoryMode::kRecomputeRows;
  opt.traceback = core::TracebackMode::kLinearSpace;
  const auto engine = make_engine(EngineKind::kSimd8Generic);
  const auto res = core::find_top_alignments(g.sequence, scoring, opt, *engine);
  EXPECT_EQ(res.tops.size(), 6u);
  core::validate_tops(res.tops, g.sequence, scoring);
}

TEST(LinearTraceback, ThrowsWithoutPositiveEnd) {
  const auto s = seq::Sequence::from_string("x", "AAAATTTT", Alphabet::dna());
  EXPECT_THROW(
      traceback_best_linear(testing::make_job(s, 4, Scoring::paper_example())),
      std::logic_error);
}

}  // namespace
}  // namespace repro::align
