// Shared helpers for the test suite: an independent brute-force reference
// implementation of the rectangle alignment (Eq. 1 evaluated naively over a
// full matrix) and small utilities for building jobs and random inputs.
#pragma once

#include <algorithm>
#include <set>
#include <vector>

#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "seq/generator.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"
#include "util/rng.hpp"

namespace repro::testing {

/// Naive reference: full matrix, per-cell scans, independent of all engine
/// code paths. Returns the bottom row of rectangle r (prefix [0,r) vertical,
/// suffix [r,m) horizontal), honouring the overridden pair set.
inline std::vector<align::Score> reference_bottom_row(
    const seq::Sequence& s, int r, const seq::Scoring& scoring,
    const std::set<std::pair<int, int>>& overrides = {}) {
  const int m = s.length();
  const int rows = r;
  const int cols = m - r;
  std::vector<std::vector<align::Score>> mat(
      static_cast<std::size_t>(rows) + 1,
      std::vector<align::Score>(static_cast<std::size_t>(cols) + 1, 0));
  for (int y = 1; y <= rows; ++y) {
    for (int x = 1; x <= cols; ++x) {
      const int i = y - 1;
      const int j = r + x - 1;
      align::Score inner = mat[static_cast<std::size_t>(y - 1)][static_cast<std::size_t>(x - 1)];
      for (int g = 1; g <= x - 1; ++g)
        inner = std::max(inner,
                         mat[static_cast<std::size_t>(y - 1)][static_cast<std::size_t>(x - 1 - g)] -
                             scoring.gap.cost(g));
      for (int g = 1; g <= y - 1; ++g)
        inner = std::max(inner,
                         mat[static_cast<std::size_t>(y - 1 - g)][static_cast<std::size_t>(x - 1)] -
                             scoring.gap.cost(g));
      align::Score h = std::max(
          align::Score{0}, scoring.matrix.score(s[i], s[j]) + inner);
      if (overrides.contains({i, j})) h = 0;
      mat[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = h;
    }
  }
  return {mat[static_cast<std::size_t>(rows)].begin() + 1,
          mat[static_cast<std::size_t>(rows)].end()};
}

/// Builds a single-rectangle job.
inline align::GroupJob make_job(const seq::Sequence& s, int r,
                                const seq::Scoring& scoring,
                                const align::OverrideTriangle* tri = nullptr) {
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &scoring;
  job.overrides = tri;
  job.r0 = r;
  job.count = 1;
  return job;
}

/// Random set of override pairs, mirrored into both representations.
inline std::set<std::pair<int, int>> random_overrides(
    int m, int count, util::Rng& rng, align::OverrideTriangle* tri) {
  std::set<std::pair<int, int>> pairs;
  for (int k = 0; k < count; ++k) {
    const int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1)));
    const int j = i + 1 +
                  static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1 - i)));
    pairs.insert({i, j});
    if (tri != nullptr) tri->set(i, j);
  }
  return pairs;
}

}  // namespace repro::testing
