// Negative-path coverage for core/verify: every invariant check must reject
// a violating input with a descriptive message. The positive paths are
// exercised constantly by the equivalence suites; these tests make sure the
// verifier itself cannot silently rot.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "align/engine.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "seq/generator.hpp"

namespace repro::core {
namespace {

struct Fixture : ::testing::Test {
  void SetUp() override {
    auto g = seq::synthetic_dna_tandem(140, 12, 6, 21);
    sequence = std::move(g.sequence);
    scoring = seq::Scoring::paper_example();
    FinderOptions opt;
    opt.num_top_alignments = 6;
    const auto engine = align::make_engine(align::EngineKind::kScalar);
    tops = find_top_alignments(sequence, scoring, opt, *engine).tops;
    ASSERT_GE(tops.size(), 2u);
    ASSERT_NO_THROW(validate_tops(tops, sequence, scoring));
  }

  void expect_rejects(const std::vector<TopAlignment>& bad,
                      const std::string& fragment) {
    try {
      validate_tops(bad, sequence, scoring);
      FAIL() << "validate_tops accepted a violation; expected message with \""
             << fragment << "\"";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << "message was: " << e.what();
    }
  }

  seq::Sequence sequence = seq::Sequence::from_string(
      "placeholder", "A", seq::Alphabet::dna());
  seq::Scoring scoring = seq::Scoring::paper_example();
  std::vector<TopAlignment> tops;
};

TEST_F(Fixture, RejectsCorruptedScore) {
  auto bad = tops;
  bad[0].score += 1;
  expect_rejects(bad, "!= recomputed");
}

TEST_F(Fixture, RejectsOverlappingPairAcrossTops) {
  // Duplicate the first alignment: every pair of the copy is already used.
  auto bad = tops;
  bad.insert(bad.begin() + 1, bad[0]);
  expect_rejects(bad, "reused across top alignments");
}

TEST_F(Fixture, RejectsIncreasingScoreSequence) {
  // Find two adjacent tops with strictly decreasing scores and swap them.
  std::size_t t = 0;
  while (t + 1 < tops.size() && tops[t].score == tops[t + 1].score) ++t;
  ASSERT_LT(t + 1, tops.size()) << "need two distinct scores";
  auto bad = tops;
  std::swap(bad[t], bad[t + 1]);
  expect_rejects(bad, "exceeds previous");
}

TEST_F(Fixture, RejectsNonAscendingPairList) {
  auto bad = tops;
  ASSERT_GE(bad[0].pairs.size(), 3u);
  // Swapping two interior pairs keeps the bottom-row/end_x checks satisfied
  // so the score recomputation's ordering check is the one that fires.
  std::swap(bad[0].pairs[0], bad[0].pairs[1]);
  expect_rejects(bad, "pairs not strictly ascending");
}

TEST_F(Fixture, RejectsPairOutsideRectangle) {
  auto bad = tops;
  // Move the split past the whole pair list: prefix side must be < r.
  bad[0].pairs.front().first = bad[0].r;
  expect_rejects(bad, "outside rectangle");
}

TEST_F(Fixture, RejectsAlignmentNotEndingInBottomRow) {
  auto bad = tops;
  ASSERT_GE(bad[0].pairs.size(), 2u);
  bad[0].pairs.pop_back();
  expect_rejects(bad, "does not end in the bottom row");
}

TEST_F(Fixture, RejectsNonpositiveScore) {
  auto bad = tops;
  bad[0].score = 0;
  expect_rejects(bad, "nonpositive score");
}

TEST_F(Fixture, SameTopsReportsCountDifference) {
  auto b = tops;
  b.pop_back();
  std::string diff;
  EXPECT_FALSE(same_tops(tops, b, &diff));
  EXPECT_NE(diff.find("count differs"), std::string::npos) << diff;
}

TEST_F(Fixture, SameTopsReportsFirstDivergentTop) {
  auto b = tops;
  b[1].score += 3;
  std::string diff;
  EXPECT_FALSE(same_tops(tops, b, &diff));
  EXPECT_NE(diff.find("top 1 differs"), std::string::npos) << diff;
}

TEST_F(Fixture, SameTopsAcceptsIdenticalLists) {
  std::string diff;
  EXPECT_TRUE(same_tops(tops, tops, &diff));
  EXPECT_TRUE(diff.empty());
}

}  // namespace
}  // namespace repro::core
