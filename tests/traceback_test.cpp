// Traceback properties: reconstructed pairs reproduce the score, respect
// overrides, end in the bottom row, and honour shadow rejection.
#include <gtest/gtest.h>

#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "align/traceback.hpp"
#include "core/verify.hpp"
#include "test_support.hpp"

namespace repro::align {
namespace {

using seq::Alphabet;
using seq::Scoring;

TEST(FindBestEnd, NoValidityFilter) {
  const std::vector<Score> row{0, 3, 7, 7, 2};
  const BestEnd end = find_best_end(row);
  EXPECT_EQ(end.score, 7);
  EXPECT_EQ(end.end_x, 3);  // tie broken to the smaller column
}

TEST(FindBestEnd, ShadowRejection) {
  const std::vector<Score> row{5, 9, 4};
  const std::vector<std::int16_t> original{5, 8, 4};  // col 2 changed: shadow
  const BestEnd end = find_best_end(row, original);
  EXPECT_EQ(end.score, 5);
  EXPECT_EQ(end.end_x, 1);
}

TEST(FindBestEnd, AllShadowed) {
  const std::vector<Score> row{5, 9};
  const std::vector<std::int16_t> original{4, 8};
  const BestEnd end = find_best_end(row, original);
  EXPECT_EQ(end.end_x, 0);  // no valid end at all
}

TEST(FindBestEnd, SizeMismatchThrows) {
  const std::vector<Score> row{5, 9};
  const std::vector<std::int16_t> original{4};
  EXPECT_THROW(find_best_end(row, original), std::logic_error);
}

TEST(Traceback, ScoreReproducibleFromPairs) {
  util::Rng rng(808);
  const Scoring scoring = Scoring::protein_default();
  for (int iter = 0; iter < 12; ++iter) {
    const auto g = seq::synthetic_titin(200, 9000 + iter);
    const auto s = g.sequence.subsequence(
        0, 60 + static_cast<int>(rng.below(100)));
    const int m = s.length();
    const int r = m / 4 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m / 2)));
    const Traceback tb = traceback_best(testing::make_job(s, r, scoring));
    ASSERT_GT(tb.score, 0);
    core::TopAlignment top;
    top.r = tb.r;
    top.score = tb.score;
    top.end_x = tb.end_x;
    top.pairs = tb.pairs;
    EXPECT_EQ(core::score_from_pairs(top, s, scoring), tb.score);
    // Ends in the bottom row.
    EXPECT_EQ(tb.pairs.back().first, r - 1);
    EXPECT_EQ(tb.pairs.back().second, r + tb.end_x - 1);
  }
}

TEST(Traceback, MatchesScoreOnlyKernel) {
  // The full-matrix recompute must find exactly the score-only kernel's best
  // valid end.
  const Scoring scoring = Scoring::paper_example();
  const auto engine = make_engine(EngineKind::kScalar);
  for (int iter = 0; iter < 10; ++iter) {
    const auto g = seq::synthetic_dna_tandem(120, 8, 6, 500 + iter);
    const int r = 40 + iter;
    const auto row = engine->align_one(testing::make_job(g.sequence, r, scoring));
    const BestEnd end = find_best_end(row);
    if (end.score <= 0) continue;
    const Traceback tb = traceback_best(testing::make_job(g.sequence, r, scoring));
    EXPECT_EQ(tb.score, end.score);
    EXPECT_EQ(tb.end_x, end.end_x);
  }
}

TEST(Traceback, NeverUsesOverriddenPairs) {
  util::Rng rng(909);
  const Scoring scoring = Scoring::paper_example();
  for (int iter = 0; iter < 10; ++iter) {
    const auto g = seq::synthetic_dna_tandem(100, 6, 8, 700 + iter);
    const int m = g.sequence.length();
    OverrideTriangle tri(m);
    const auto overridden = testing::random_overrides(m, 3 * m, rng, &tri);
    const int r = m / 2;
    const auto engine = make_engine(EngineKind::kScalar);
    const auto row =
        engine->align_one(testing::make_job(g.sequence, r, scoring, &tri));
    if (find_best_end(row).score <= 0) continue;
    const Traceback tb =
        traceback_best(testing::make_job(g.sequence, r, scoring, &tri));
    for (const auto& p : tb.pairs)
      EXPECT_FALSE(overridden.contains(p))
          << "pair (" << p.first << "," << p.second << ") is overridden";
  }
}

TEST(Traceback, ThrowsWithoutPositiveValidEnd) {
  const auto s = seq::Sequence::from_string("x", "AAAATTTT", Alphabet::dna());
  // Prefix AAAA vs suffix TTTT: no positive local score anywhere.
  const Scoring scoring = Scoring::paper_example();
  EXPECT_THROW(traceback_best(testing::make_job(s, 4, scoring)),
               std::logic_error);
}

TEST(Traceback, GapPreferenceIsDeterministic) {
  // Two equal-scoring paths: the walk prefers diagonal, then the shortest
  // horizontal gap. Run twice and expect identical pairs.
  const auto g = seq::synthetic_dna_tandem(90, 9, 6, 31);
  const Scoring scoring = Scoring::paper_example();
  const Traceback a = traceback_best(testing::make_job(g.sequence, 45, scoring));
  const Traceback b = traceback_best(testing::make_job(g.sequence, 45, scoring));
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.end_x, b.end_x);
}

}  // namespace
}  // namespace repro::align
