#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace repro::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(Stats, SummaryBasics) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, Percentile) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50), 2.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 100), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 50), 1.5);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 75), 5.0);
}

TEST(Stats, LinearFitExact) {
  const double xs[] = {1, 2, 3, 4, 5};
  const double ys[] = {3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LogLogRecoversExponent) {
  // t = 2 n^3 should fit slope 3.
  std::vector<double> ns, ts;
  for (double n : {100.0, 200.0, 400.0, 800.0}) {
    ns.push_back(n);
    ts.push_back(2.0 * n * n * n);
  }
  const LinearFit f = fit_loglog(ns, ts);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
}

TEST(Stats, GeometricMean) {
  const double xs[] = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
}

TEST(Stats, RejectsBadInput) {
  const double xs[] = {1.0, -1.0};
  EXPECT_THROW(geometric_mean(xs), std::logic_error);
  EXPECT_THROW(percentile({}, 50), std::logic_error);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "n", "t"});
  t.set_precision(1);
  t.add_row({std::string("alpha"), 10LL, 1.5});
  t.add_row({std::string("b"), 20000LL, 0.25});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("20000"), std::string::npos);
  EXPECT_NE(out.find("0.2"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({1LL, 2LL});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1LL}), std::logic_error);
}

TEST(Args, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "--flag"};
  Args args(5, const_cast<char**>(argv),
            {{"alpha", ""}, {"beta", ""}, {"flag", ""}});
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 7);
  EXPECT_TRUE(args.get_flag("flag"));
  EXPECT_EQ(args.get_int("gamma", 9), 9);
  EXPECT_FALSE(args.help_requested());
}

TEST(Args, RejectsUnknown) {
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(Args(2, const_cast<char**>(argv), {{"alpha", ""}}),
               std::logic_error);
}

TEST(Args, IntList) {
  const char* argv[] = {"prog", "--list=1,2,3"};
  Args args(2, const_cast<char**>(argv), {{"list", ""}});
  EXPECT_EQ(args.get_int_list("list", {}), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(args.get_int_list("list2", {5}), (std::vector<std::int64_t>{5}));
}

TEST(Args, DoubleAndString) {
  const char* argv[] = {"prog", "--rate=2.5", "--name", "xyz"};
  Args args(4, const_cast<char**>(argv), {{"rate", ""}, {"name", ""}, {"list2", ""}});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(args.get("name", ""), "xyz");
}

}  // namespace
}  // namespace repro::util
