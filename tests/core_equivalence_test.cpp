// The paper's central correctness claim: the new algorithm "computes exactly
// the same top alignments as the original algorithm" — and, in this
// implementation, for every engine, group width, and rescan policy.
#include <gtest/gtest.h>

#include "align/engine.hpp"
#include "core/old_finder.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "seq/generator.hpp"
#include "util/rng.hpp"

namespace repro::core {
namespace {

using seq::Scoring;

struct Case {
  std::string name;
  seq::Sequence sequence;
  Scoring scoring;
  int tops;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  {
    auto g = seq::synthetic_dna_tandem(140, 12, 6, 21);
    cases.push_back({"dna_tandem", std::move(g.sequence),
                     Scoring::paper_example(), 8});
  }
  {
    auto g = seq::synthetic_titin(260, 22);
    cases.push_back({"titin_like", std::move(g.sequence),
                     Scoring::protein_default(), 6});
  }
  {
    seq::RepeatSpec spec;
    spec.unit_length = 18;
    spec.copies = 5;
    spec.conservation = 0.5;
    spec.indel_rate = 0.05;
    spec.tandem = false;
    auto g = seq::make_repeat_sequence(seq::Alphabet::protein(), 200, spec, 23);
    cases.push_back({"interspersed_protein", std::move(g.sequence),
                     Scoring{seq::ScoreMatrix::pam250(), seq::GapPenalty{8, 2}},
                     6});
  }
  {
    auto s = seq::random_sequence(seq::Alphabet::dna(), 120, 24);
    cases.push_back({"random_dna", std::move(s), Scoring::paper_example(), 5});
  }
  return cases;
}

class Equivalence : public ::testing::TestWithParam<int> {
 protected:
  static const std::vector<Case>& cases() {
    static const std::vector<Case> cs = make_cases();
    return cs;
  }
};

TEST_P(Equivalence, OldAlgorithmMatchesNew) {
  const Case& c = cases()[static_cast<std::size_t>(GetParam())];
  FinderOptions opt;
  opt.num_top_alignments = c.tops;
  const auto old_res = find_top_alignments_old(c.sequence, c.scoring, opt);
  const auto engine = align::make_engine(align::EngineKind::kScalar);
  const auto new_res = find_top_alignments(c.sequence, c.scoring, opt, *engine);
  validate_tops(new_res.tops, c.sequence, c.scoring);
  std::string diff;
  EXPECT_TRUE(same_tops(old_res.tops, new_res.tops, &diff)) << c.name << ": " << diff;
}

TEST_P(Equivalence, EveryEngineProducesIdenticalTops) {
  const Case& c = cases()[static_cast<std::size_t>(GetParam())];
  FinderOptions opt;
  opt.num_top_alignments = c.tops;
  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto reference = find_top_alignments(c.sequence, c.scoring, opt, *scalar);

  std::vector<align::EngineKind> kinds{align::EngineKind::kScalarStriped,
                                       align::EngineKind::kGeneralGap,
                                       align::EngineKind::kSimd4Generic,
                                       align::EngineKind::kSimd8Generic,
                                       align::EngineKind::kSimd4x32Generic,
                                       align::EngineKind::kSimdAutoGeneric,
                                       align::EngineKind::kSimdAuto};
#if REPRO_HAVE_SSE2
  kinds.push_back(align::EngineKind::kSimd4);
  kinds.push_back(align::EngineKind::kSimd8);
  if (align::sse41_available()) kinds.push_back(align::EngineKind::kSimd4x32);
#endif
  if (align::avx2_available()) {
    kinds.push_back(align::EngineKind::kSimd16);
    kinds.push_back(align::EngineKind::kSimd8x32);
  }
  // Explicit u8 engines throw on inputs past their biased headroom, so gate
  // them on precision_fits; adaptive kinds above run everywhere (they
  // escalate to i16 transparently, which must stay lossless).
  if (align::precision_fits(align::Precision::kI8, c.sequence.length(),
                            c.scoring)) {
    kinds.push_back(align::EngineKind::kSimd8x8Generic);
#if REPRO_HAVE_SSE2
    kinds.push_back(align::EngineKind::kSimd16x8);
#endif
    if (align::avx2_available()) kinds.push_back(align::EngineKind::kSimd32x8);
  }

  for (const auto kind : kinds) {
    const auto engine = align::make_engine(kind);
    const auto res = find_top_alignments(c.sequence, c.scoring, opt, *engine);
    std::string diff;
    EXPECT_TRUE(same_tops(reference.tops, res.tops, &diff))
        << c.name << " with " << engine->name() << ": " << diff;
  }
}

TEST_P(Equivalence, RescanPoliciesAgree) {
  const Case& c = cases()[static_cast<std::size_t>(GetParam())];
  FinderOptions best;
  best.num_top_alignments = c.tops;
  FinderOptions sweep = best;
  sweep.policy = RescanPolicy::kExhaustiveSweep;
  const auto e1 = align::make_engine(align::EngineKind::kScalar);
  const auto e2 = align::make_engine(align::EngineKind::kScalar);
  const auto a = find_top_alignments(c.sequence, c.scoring, best, *e1);
  const auto b = find_top_alignments(c.sequence, c.scoring, sweep, *e2);
  std::string diff;
  EXPECT_TRUE(same_tops(a.tops, b.tops, &diff)) << c.name << ": " << diff;
}

TEST_P(Equivalence, GroupedSweepAgreesWithGroupSizeOne) {
  // Group scheduling (SIMD lane grouping) must not change acceptance order
  // even under the exhaustive policy.
  const Case& c = cases()[static_cast<std::size_t>(GetParam())];
  FinderOptions opt;
  opt.num_top_alignments = c.tops;
  opt.policy = RescanPolicy::kExhaustiveSweep;
  const auto e1 = align::make_engine(align::EngineKind::kScalar);
  const auto e8 = align::make_engine(align::EngineKind::kSimd8Generic);
  const auto a = find_top_alignments(c.sequence, c.scoring, opt, *e1);
  const auto b = find_top_alignments(c.sequence, c.scoring, opt, *e8);
  std::string diff;
  EXPECT_TRUE(same_tops(a.tops, b.tops, &diff)) << c.name << ": " << diff;
}

INSTANTIATE_TEST_SUITE_P(Cases, Equivalence, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return make_cases()[static_cast<std::size_t>(
                                                   info.param)]
                               .name;
                         });

TEST_P(Equivalence, LowMemoryModeMatchesArchiveMode) {
  // Appendix A: on-demand recomputation of original bottom rows (linear
  // memory) must not change any result — only add work.
  const Case& c = cases()[static_cast<std::size_t>(GetParam())];
  FinderOptions archive;
  archive.num_top_alignments = c.tops;
  // Disable checkpoint-resume on both sides so the cell-count bound below
  // measures the Appendix-A recompute overhead alone (checkpoint_test.cpp
  // covers the incremental paths of both memory modes).
  archive.checkpoint_mem = 0;
  FinderOptions low = archive;
  low.memory = MemoryMode::kRecomputeRows;
  const auto e1 = align::make_engine(align::EngineKind::kScalar);
  const auto e2 = align::make_engine(align::EngineKind::kScalar);
  const auto a = find_top_alignments(c.sequence, c.scoring, archive, *e1);
  const auto b = find_top_alignments(c.sequence, c.scoring, low, *e2);
  std::string diff;
  EXPECT_TRUE(same_tops(a.tops, b.tops, &diff)) << c.name << ": " << diff;
  // The recompute overhead exists but is bounded by one extra alignment per
  // realignment (plus one per acceptance).
  EXPECT_GT(b.stats.cells, a.stats.cells);
  EXPECT_LE(b.stats.cells, 2 * a.stats.cells + 1);
}

TEST(EquivalenceExtra, LowMemoryWorksWithSimdGroups) {
  const auto g = seq::synthetic_titin(250, 33);
  FinderOptions opt;
  opt.num_top_alignments = 8;
  opt.memory = MemoryMode::kRecomputeRows;
  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto simd = align::make_engine(align::EngineKind::kSimd8Generic);
  FinderOptions archive;
  archive.num_top_alignments = 8;
  const auto a =
      find_top_alignments(g.sequence, Scoring::protein_default(), archive, *scalar);
  const auto b =
      find_top_alignments(g.sequence, Scoring::protein_default(), opt, *simd);
  std::string diff;
  EXPECT_TRUE(same_tops(a.tops, b.tops, &diff)) << diff;
}

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, OldEqualsNewOnRandomInputs) {
  // Broad differential sweep: random repeat-bearing inputs with varying
  // alphabets, metrics and sizes — old O(n^4) and new O(n^3) algorithms must
  // agree exactly.
  const int seed = GetParam();
  util::Rng rng(40000 + static_cast<std::uint64_t>(seed));
  const bool dna = rng.chance(0.5);
  const int m = 60 + static_cast<int>(rng.below(80));
  seq::RepeatSpec spec;
  spec.unit_length = 8 + static_cast<int>(rng.below(20));
  spec.copies = 3 + static_cast<int>(rng.below(4));
  // Keep the implant within ~60 % of the sequence so every mode fits.
  spec.copies = std::max(
      2, std::min(spec.copies, (m * 6 / 10) / spec.unit_length));
  spec.conservation = 0.4 + 0.5 * rng.uniform();
  spec.indel_rate = 0.04 * rng.uniform();
  spec.tandem = rng.chance(0.7);
  const auto& alphabet = dna ? seq::Alphabet::dna() : seq::Alphabet::protein();
  const auto g = seq::make_repeat_sequence(
      alphabet, m, spec, 50000 + static_cast<std::uint64_t>(seed));
  const Scoring scoring =
      dna ? Scoring::paper_example()
          : Scoring{seq::ScoreMatrix::blosum50(),
                    seq::GapPenalty{6 + static_cast<int>(rng.below(8)),
                                    1 + static_cast<int>(rng.below(3))}};
  FinderOptions opt;
  opt.num_top_alignments = 4 + static_cast<int>(rng.below(5));

  const auto old_res = find_top_alignments_old(g.sequence, scoring, opt);
  const auto engine = align::make_engine(align::EngineKind::kSimd8Generic);
  const auto new_res = find_top_alignments(g.sequence, scoring, opt, *engine);
  validate_tops(new_res.tops, g.sequence, scoring);
  std::string diff;
  EXPECT_TRUE(same_tops(old_res.tops, new_res.tops, &diff))
      << "seed " << seed << " (m=" << m << ", " << (dna ? "dna" : "protein")
      << "): " << diff;
}

INSTANTIATE_TEST_SUITE_P(Random, SeedSweep, ::testing::Range(0, 12));

TEST(EquivalenceExtra, SpeculativeLaneWorkDoesNotChangeResults) {
  // SIMD grouping performs speculative lane-mate realignments; results and
  // acceptance order must be identical to the scalar best-first run, and the
  // speculative count is visible in the stats.
  const auto g = seq::synthetic_titin(300, 31);
  FinderOptions opt;
  opt.num_top_alignments = 10;
  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto simd = align::make_engine(align::EngineKind::kSimd8Generic);
  const auto a =
      find_top_alignments(g.sequence, Scoring::protein_default(), opt, *scalar);
  const auto b =
      find_top_alignments(g.sequence, Scoring::protein_default(), opt, *simd);
  std::string diff;
  EXPECT_TRUE(same_tops(a.tops, b.tops, &diff)) << diff;
  EXPECT_GT(b.stats.speculative + b.stats.realignments, 0u);
}

}  // namespace
}  // namespace repro::core
