// Message substrate and the distributed master/worker finder (§4.3).
#include <gtest/gtest.h>

#include <atomic>

#include "cluster/master_worker.hpp"
#include "cluster/mpisim.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "seq/generator.hpp"

namespace repro::cluster {
namespace {

using core::FinderOptions;
using seq::Scoring;

TEST(Comm, PointToPointFifo) {
  Comm comm(2);
  for (int k = 0; k < 5; ++k) comm.send(0, 1, {k, {k * 10}});
  for (int k = 0; k < 5; ++k) {
    const Message msg = comm.recv(1, 0);
    EXPECT_EQ(msg.tag, k);
    EXPECT_EQ(msg.data.at(0), k * 10);
  }
}

TEST(Comm, RecvFiltersBySource) {
  Comm comm(3);
  comm.send(2, 0, {7, {}});
  comm.send(1, 0, {5, {}});
  EXPECT_EQ(comm.recv(0, 1).tag, 5);  // skips rank 2's message
  EXPECT_EQ(comm.recv(0, 2).tag, 7);
}

TEST(Comm, RecvAnyAndProbe) {
  Comm comm(2);
  EXPECT_FALSE(comm.iprobe(1));
  comm.send(0, 1, {3, {1, 2}});
  EXPECT_TRUE(comm.iprobe(1));
  const auto [src, msg] = comm.recv_any(1);
  EXPECT_EQ(src, 0);
  EXPECT_EQ(msg.tag, 3);
  EXPECT_EQ(comm.messages_sent(), 1u);
  EXPECT_EQ(comm.words_sent(), 3u);
}

TEST(Comm, BlockingRecvWakesOnSend) {
  Comm comm(2);
  std::atomic<bool> got{false};
  run_ranks(comm, [&](int rank) {
    if (rank == 0) {
      comm.send(0, 1, {9, {}});
    } else {
      const Message msg = comm.recv(1, 0);
      got = msg.tag == 9;
    }
  });
  EXPECT_TRUE(got.load());
}

TEST(Comm, RecvTaggedSkipsOtherMessages) {
  Comm comm(2);
  comm.send(0, 1, {7, {1}});
  comm.send(0, 1, {9, {2}});
  comm.send(0, 1, {7, {3}});
  EXPECT_EQ(comm.recv_tagged(1, 0, 9).data.at(0), 2);
  // FIFO among remaining tag-7 messages.
  EXPECT_EQ(comm.recv_tagged(1, 0, 7).data.at(0), 1);
  EXPECT_EQ(comm.recv_tagged(1, 0, 7).data.at(0), 3);
}

TEST(Comm, BroadcastReachesEveryOtherRank) {
  Comm comm(4);
  comm.broadcast(1, {5, {42}});
  for (int rank : {0, 2, 3}) {
    const auto [src, msg] = comm.recv_any(rank);
    EXPECT_EQ(src, 1);
    EXPECT_EQ(msg.tag, 5);
    EXPECT_EQ(msg.data.at(0), 42);
  }
  EXPECT_FALSE(comm.iprobe(1));  // the sender gets nothing
}

TEST(Comm, BarrierSynchronisesRanks) {
  Comm comm(4);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::atomic<bool> violated{false};
  run_ranks(comm, [&](int rank) {
    before.fetch_add(1);
    comm.barrier(rank);
    // Every rank must have passed `before` by the time any rank is here.
    if (before.load() != 4) violated = true;
    after.fetch_add(1);
    comm.barrier(rank);
    if (after.load() != 4) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Comm, BarrierComposesWithPendingTraffic) {
  Comm comm(2);
  comm.send(0, 1, {3, {9}});  // queued application message
  run_ranks(comm, [&](int rank) { comm.barrier(rank); });
  // The barrier must not have consumed the application message.
  EXPECT_EQ(comm.recv(1, 0).data.at(0), 9);
}

TEST(Comm, SingleRankBarrierIsNoop) {
  Comm comm(1);
  comm.barrier(0);
  SUCCEED();
}

TEST(Comm, RunRanksPropagatesExceptions) {
  Comm comm(2);
  EXPECT_THROW(run_ranks(comm,
                         [&](int rank) {
                           if (rank == 1) throw std::runtime_error("rank died");
                           // rank 0 exits immediately
                         }),
               std::runtime_error);
}

class ClusterFinderTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusterFinderTest, MatchesSequentialForAnyRankCount) {
  const int ranks = GetParam();
  const auto g = seq::synthetic_titin(260, 91);
  FinderOptions opt;
  opt.num_top_alignments = 7;

  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto reference = core::find_top_alignments(
      g.sequence, Scoring::protein_default(), opt, *scalar);

  ClusterOptions copt;
  copt.ranks = ranks;
  copt.finder = opt;
  ClusterRunInfo info;
  const auto res = find_top_alignments_cluster(
      g.sequence, Scoring::protein_default(), copt,
      align::engine_factory(align::EngineKind::kScalar), &info);
  std::string diff;
  EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
      << ranks << " ranks: " << diff;
  core::validate_tops(res.tops, g.sequence, Scoring::protein_default());
  if (ranks > 1) EXPECT_GT(info.messages, 0u);
}

TEST_P(ClusterFinderTest, SimdWorkersMatchToo) {
  const int ranks = GetParam();
  const auto g = seq::synthetic_dna_tandem(180, 14, 7, 17);
  FinderOptions opt;
  opt.num_top_alignments = 5;
  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto reference = core::find_top_alignments(
      g.sequence, Scoring::paper_example(), opt, *scalar);

  ClusterOptions copt;
  copt.ranks = ranks;
  copt.finder = opt;
  const auto res = find_top_alignments_cluster(
      g.sequence, Scoring::paper_example(), copt,
      align::engine_factory(align::EngineKind::kSimd8Generic));
  std::string diff;
  EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
      << ranks << " ranks: " << diff;
}

INSTANTIATE_TEST_SUITE_P(Ranks, ClusterFinderTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(ClusterFinder, RowReplicasFlowWhenWorkersShareWork) {
  // With several workers, realignments frequently land on a worker that did
  // not compute the rectangle's first alignment, forcing replica fetches.
  const auto g = seq::synthetic_titin(300, 92);
  ClusterOptions copt;
  copt.ranks = 5;
  copt.finder.num_top_alignments = 8;
  ClusterRunInfo info;
  const auto res = find_top_alignments_cluster(
      g.sequence, Scoring::protein_default(), copt,
      align::engine_factory(align::EngineKind::kScalar), &info);
  EXPECT_EQ(res.tops.size(), 8u);
  EXPECT_GT(info.row_replicas_served, 0u);
  EXPECT_GT(info.payload_words, 0u);
}

TEST(ClusterFinder, DeterministicAcrossRepeats) {
  const auto g = seq::synthetic_dna_tandem(160, 10, 8, 44);
  ClusterOptions copt;
  copt.ranks = 4;
  copt.finder.num_top_alignments = 6;
  const auto factory = align::engine_factory(align::EngineKind::kScalar);
  const auto first = find_top_alignments_cluster(g.sequence,
                                                 Scoring::paper_example(),
                                                 copt, factory);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto res = find_top_alignments_cluster(
        g.sequence, Scoring::paper_example(), copt, factory);
    std::string diff;
    EXPECT_TRUE(core::same_tops(first.tops, res.tops, &diff)) << diff;
  }
}

class PartitionedClusterTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionedClusterTest, PartitionedRowsMatchSequential) {
  // §4.3's alternative storage scheme: rows partitioned over worker ranks,
  // owners service peer requests. Results must stay identical.
  const int ranks = GetParam();
  const auto g = seq::synthetic_titin(240, 93);
  FinderOptions opt;
  opt.num_top_alignments = 7;
  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto reference = core::find_top_alignments(
      g.sequence, Scoring::protein_default(), opt, *scalar);

  ClusterOptions copt;
  copt.ranks = ranks;
  copt.row_storage = RowStorage::kPartitioned;
  copt.finder = opt;
  ClusterRunInfo info;
  const auto res = find_top_alignments_cluster(
      g.sequence, Scoring::protein_default(), copt,
      align::engine_factory(align::EngineKind::kScalar), &info);
  std::string diff;
  EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
      << ranks << " ranks: " << diff;
  if (ranks > 2) {
    // With several workers, deposits must have crossed rank boundaries.
    EXPECT_GT(info.row_deposits, 0u);
    EXPECT_EQ(info.row_replicas_served, 0u);  // master serves nothing
  }
}

TEST_P(PartitionedClusterTest, PartitionedWithSimdWorkers) {
  const int ranks = GetParam();
  const auto g = seq::synthetic_dna_tandem(160, 12, 7, 55);
  FinderOptions opt;
  opt.num_top_alignments = 5;
  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto reference = core::find_top_alignments(
      g.sequence, Scoring::paper_example(), opt, *scalar);
  ClusterOptions copt;
  copt.ranks = ranks;
  copt.row_storage = RowStorage::kPartitioned;
  copt.finder = opt;
  const auto res = find_top_alignments_cluster(
      g.sequence, Scoring::paper_example(), copt,
      align::engine_factory(align::EngineKind::kSimd8Generic));
  std::string diff;
  EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
      << ranks << " ranks: " << diff;
}

INSTANTIATE_TEST_SUITE_P(Ranks, PartitionedClusterTest,
                         ::testing::Values(2, 3, 5, 8));

TEST(ClusterFinder, PartitionedDeterministicAcrossRepeats) {
  const auto g = seq::synthetic_titin(220, 94);
  ClusterOptions copt;
  copt.ranks = 5;
  copt.row_storage = RowStorage::kPartitioned;
  copt.finder.num_top_alignments = 6;
  const auto factory = align::engine_factory(align::EngineKind::kScalar);
  const auto first = find_top_alignments_cluster(
      g.sequence, Scoring::protein_default(), copt, factory);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto res = find_top_alignments_cluster(
        g.sequence, Scoring::protein_default(), copt, factory);
    std::string diff;
    EXPECT_TRUE(core::same_tops(first.tops, res.tops, &diff)) << diff;
  }
}

TEST(ClusterFinder, MinScoreStopsEarly) {
  const auto s = seq::random_sequence(seq::Alphabet::dna(), 90, 6);
  ClusterOptions copt;
  copt.ranks = 3;
  copt.finder.num_top_alignments = 400;
  copt.finder.min_score = 12;
  const auto res = find_top_alignments_cluster(
      s, Scoring::paper_example(), copt,
      align::engine_factory(align::EngineKind::kScalar));
  EXPECT_LT(res.tops.size(), 400u);
  for (const auto& top : res.tops) EXPECT_GE(top.score, 12);
}

}  // namespace
}  // namespace repro::cluster
