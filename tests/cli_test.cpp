// End-to-end tests of the reprofind CLI binary (path injected by CMake).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef REPRO_CLI_PATH
#error "REPRO_CLI_PATH must be defined by the build"
#endif

namespace {

struct RunResult {
  int status = -1;
  std::string out;
};

RunResult run_cli(const std::string& args) {
  const std::string cmd = std::string(REPRO_CLI_PATH) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0)
    result.out.append(buffer.data(), n);
  result.status = pclose(pipe);
  return result;
}

std::string temp_fasta() {
  // Per-test file: gtest_discover_tests registers each TEST as its own ctest
  // entry, and a parallel ctest run must not let one test's `generate`
  // truncate a FASTA another test is reading.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string name =
      std::string("reprofind_cli_") + info->name() + ".fa";
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Cli, InfoListsEngines) {
  const RunResult r = run_cli("info");
  EXPECT_EQ(r.status, 0) << r.out;
  EXPECT_NE(r.out.find("scalar"), std::string::npos);
  EXPECT_NE(r.out.find("default engine"), std::string::npos);
}

TEST(Cli, NoArgsPrintsUsage) {
  const RunResult r = run_cli("");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const RunResult r = run_cli("frobnicate");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.out.find("unknown command"), std::string::npos);
}

TEST(Cli, GenerateThenFindTextRoundTrip) {
  const std::string fasta = temp_fasta();
  const RunResult gen = run_cli(
      "generate --kind dna --length 400 --unit 15 --copies 8 --out " + fasta);
  ASSERT_EQ(gen.status, 0) << gen.out;
  ASSERT_TRUE(std::filesystem::exists(fasta));

  const RunResult find = run_cli("find --fasta " + fasta +
                                 " --alphabet dna --tops 6 --repeats "
                                 "--min-score 16");
  EXPECT_EQ(find.status, 0) << find.out;
  EXPECT_NE(find.out.find("top alignments"), std::string::npos);
  EXPECT_NE(find.out.find("repeat region"), std::string::npos);
  EXPECT_NE(find.out.find("consensus"), std::string::npos);
}

TEST(Cli, JsonOutputIsWellFormedish) {
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind dna --length 300 --unit 12 --copies 6 "
                    "--out " + fasta).status, 0);
  const RunResult r = run_cli("find --fasta " + fasta +
                              " --alphabet dna --tops 3 --format json");
  EXPECT_EQ(r.status, 0) << r.out;
  const auto open_braces = std::count(r.out.begin(), r.out.end(), '{');
  const auto close_braces = std::count(r.out.begin(), r.out.end(), '}');
  EXPECT_GT(open_braces, 0);
  EXPECT_EQ(open_braces, close_braces);
  EXPECT_NE(r.out.find("\"top_alignments\""), std::string::npos);
}

TEST(Cli, CsvOutputHasHeaderAndRows) {
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind dna --length 300 --unit 12 --copies 6 "
                    "--out " + fasta).status, 0);
  const RunResult r = run_cli("find --fasta " + fasta +
                              " --alphabet dna --tops 2 --format csv");
  EXPECT_EQ(r.status, 0) << r.out;
  EXPECT_NE(r.out.find("sequence,top,r,score"), std::string::npos);
  EXPECT_NE(r.out.find(",1,"), std::string::npos);
}

TEST(Cli, LowMemoryAndLinearTracebackFlags) {
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind titin --length 300 --out " + fasta).status, 0);
  const RunResult r = run_cli("find --fasta " + fasta +
                              " --tops 4 --low-memory --linear-traceback");
  EXPECT_EQ(r.status, 0) << r.out;
  EXPECT_NE(r.out.find("top alignments"), std::string::npos);
}

TEST(Cli, ParallelThreadsAgreeWithSequential) {
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind titin --length 260 --out " + fasta).status, 0);
  const RunResult seq = run_cli("find --fasta " + fasta +
                                " --tops 5 --engine scalar --format csv");
  const RunResult par = run_cli("find --fasta " + fasta +
                                " --tops 5 --engine scalar --threads 3 "
                                "--format csv");
  EXPECT_EQ(seq.status, 0);
  EXPECT_EQ(par.status, 0);
  EXPECT_EQ(seq.out, par.out);
}

TEST(Cli, ClusterRanksAgreeWithSequentialEvenUnderFaults) {
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind titin --length 260 --out " + fasta).status, 0);
  const RunResult seq = run_cli("find --fasta " + fasta +
                                " --tops 5 --engine scalar --format csv");
  const RunResult clu = run_cli("find --fasta " + fasta +
                                " --tops 5 --engine scalar --ranks 3 "
                                "--row-storage partitioned --format csv");
  const RunResult faulted = run_cli("find --fasta " + fasta +
                                    " --tops 5 --engine scalar --ranks 3 "
                                    "--fault-seed 7 --format csv");
  EXPECT_EQ(seq.status, 0);
  EXPECT_EQ(clu.status, 0) << clu.out;
  EXPECT_EQ(faulted.status, 0) << faulted.out;
  EXPECT_EQ(seq.out, clu.out);
  EXPECT_EQ(seq.out, faulted.out);
}

TEST(Cli, FaultFlagsRequireClusterRun) {
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind titin --length 200 --out " + fasta)
                .status, 0);
  const RunResult r =
      run_cli("find --fasta " + fasta + " --tops 2 --fault-seed 3");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.out.find("--ranks"), std::string::npos) << r.out;
  const RunResult bad_plan = run_cli("find --fasta " + fasta +
                                     " --tops 2 --ranks 3 --fault-plan "
                                     "crash:rank=0,op=1");
  EXPECT_NE(bad_plan.status, 0) << bad_plan.out;
}

TEST(Cli, MissingFastaFails) {
  const RunResult r = run_cli("find --tops 3");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.out.find("--fasta is required"), std::string::npos);
}

TEST(Cli, BadEngineNameFails) {
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind dna --length 200 --unit 10 --copies 5 "
                    "--out " + fasta).status, 0);
  const RunResult r =
      run_cli("find --fasta " + fasta + " --alphabet dna --engine warp9");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.out.find("unknown engine"), std::string::npos);
}

TEST(Cli, I16EngineRejectsOverflowingSequenceUpfront) {
  // titin at m=6000 with blosum62 (max score 11) can reach 3000*11 = 33000,
  // past the i16 ceiling — an explicitly selected i16 engine must be
  // rejected before any alignment runs, with the adaptive and wider
  // alternatives named.
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind titin --length 6000 --out " + fasta)
                .status, 0);
  const RunResult r =
      run_cli("find --fasta " + fasta + " --tops 1 --engine simd8");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.out.find("saturation headroom"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("adaptive"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("simd8x32"), std::string::npos) << r.out;
}

TEST(Cli, U8EngineRejectsOverflowingSequenceUpfront) {
  // The same guard covers explicit u8 engines, whose (bias-aware) headroom
  // is far smaller; the adaptive default accepts the identical input.
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind titin --length 300 --out " + fasta)
                .status, 0);
  const RunResult r =
      run_cli("find --fasta " + fasta + " --tops 1 --engine simd16x8");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.out.find("u8"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("saturation headroom"), std::string::npos) << r.out;
  const RunResult ok =
      run_cli("find --fasta " + fasta + " --tops 1 --precision auto");
  EXPECT_EQ(ok.status, 0) << ok.out;
}

TEST(Cli, PrecisionFlagExcludesExplicitEngine) {
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind titin --length 200 --out " + fasta)
                .status, 0);
  const RunResult r = run_cli("find --fasta " + fasta +
                              " --engine scalar --precision i16");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.out.find("--precision"), std::string::npos) << r.out;
}

TEST(Cli, I16GuardDoesNotBlockSafeRuns) {
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind titin --length 300 --out " + fasta)
                .status, 0);
  const RunResult r =
      run_cli("find --fasta " + fasta + " --tops 2 --engine scalar");
  EXPECT_EQ(r.status, 0) << r.out;
}

TEST(Cli, MetricsJsonWritesPerfRecord) {
  const std::string fasta = temp_fasta();
  ASSERT_EQ(run_cli("generate --kind titin --length 300 --out " + fasta)
                .status, 0);
  const auto metrics_path =
      (std::filesystem::temp_directory_path() / "reprofind_metrics_test.json")
          .string();
  std::filesystem::remove(metrics_path);
  const RunResult r = run_cli("find --fasta " + fasta +
                              " --tops 3 --engine scalar --metrics-json " +
                              metrics_path);
  ASSERT_EQ(r.status, 0) << r.out;
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good()) << "metrics file was not written";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  EXPECT_NE(doc.find("\"schema\":\"repro-metrics-v1\""), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"name\":\"reprofind.find\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"engine\":\"scalar\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"cells\":"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"tracebacks\":"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"registry\":{"), std::string::npos) << doc;
  const auto open_braces = std::count(doc.begin(), doc.end(), '{');
  const auto close_braces = std::count(doc.begin(), doc.end(), '}');
  EXPECT_EQ(open_braces, close_braces);
}

}  // namespace
