#include <gtest/gtest.h>

#include <sstream>

#include "seq/alphabet.hpp"
#include "seq/fasta.hpp"
#include "seq/sequence.hpp"

namespace repro::seq {
namespace {

TEST(Alphabet, ProteinRoundTrip) {
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(a.size(), 24);
  EXPECT_EQ(a.core_size(), 20);
  for (char c : std::string("ARNDCQEGHILKMFPSTWYVBZX*"))
    EXPECT_EQ(a.decode(a.encode(c)), c);
}

TEST(Alphabet, CaseInsensitive) {
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(a.encode('w'), a.encode('W'));
  const Alphabet& d = Alphabet::dna();
  EXPECT_EQ(d.encode('a'), d.encode('A'));
}

TEST(Alphabet, InvalidCharacterThrows) {
  EXPECT_THROW(Alphabet::protein().encode('J'), std::logic_error);
  EXPECT_THROW(Alphabet::dna().encode('E'), std::logic_error);
  EXPECT_FALSE(Alphabet::dna().valid('#'));
  EXPECT_TRUE(Alphabet::dna().valid('t'));
}

TEST(Alphabet, UnknownCodes) {
  EXPECT_EQ(Alphabet::protein().decode(Alphabet::protein().unknown_code()), 'X');
  EXPECT_EQ(Alphabet::dna().decode(Alphabet::dna().unknown_code()), 'N');
}

TEST(Sequence, FromStringRoundTrip) {
  const auto s = Sequence::from_string("demo", "ACGTACGT", Alphabet::dna());
  EXPECT_EQ(s.name(), "demo");
  EXPECT_EQ(s.length(), 8);
  EXPECT_EQ(s.to_string(), "ACGTACGT");
  EXPECT_EQ(s[0], Alphabet::dna().encode('A'));
}

TEST(Sequence, Subsequence) {
  const auto s = Sequence::from_string("demo", "ACGTACGT", Alphabet::dna());
  const auto sub = s.subsequence(2, 6);
  EXPECT_EQ(sub.to_string(), "GTAC");
  EXPECT_THROW(s.subsequence(-1, 3), std::logic_error);
  EXPECT_THROW(s.subsequence(5, 3), std::logic_error);
  EXPECT_EQ(s.subsequence(3, 3).length(), 0);
}

TEST(Fasta, ParsesRecords) {
  std::istringstream in(">one desc here\nACGT\nACG\n>two\n\nTTTT\n");
  const auto recs = read_fasta(in, Alphabet::dna());
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name(), "one desc here");
  EXPECT_EQ(recs[0].to_string(), "ACGTACG");
  EXPECT_EQ(recs[1].name(), "two");
  EXPECT_EQ(recs[1].to_string(), "TTTT");
}

TEST(Fasta, HandlesCrlfAndWhitespace) {
  std::istringstream in(">r\r\nAC GT\r\nAC\r\n");
  const auto recs = read_fasta(in, Alphabet::dna());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].to_string(), "ACGTAC");
}

TEST(Fasta, EmptyStream) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in, Alphabet::dna()).empty());
}

TEST(Fasta, DataBeforeHeaderThrows) {
  std::istringstream in("ACGT\n");
  EXPECT_THROW(read_fasta(in, Alphabet::dna()), std::logic_error);
}

TEST(Fasta, InvalidResidueThrows) {
  std::istringstream in(">r\nACQT\n");
  EXPECT_THROW(read_fasta(in, Alphabet::dna()), std::logic_error);
}

TEST(Fasta, HeaderOnlyRecordMidFileThrowsWithName) {
  std::istringstream in(">first\n>second\nACGT\n");
  try {
    (void)read_fasta(in, Alphabet::dna());
    FAIL() << "header-only record was accepted";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos)
        << e.what();
  }
}

TEST(Fasta, HeaderOnlyRecordAtEofThrowsWithName) {
  std::istringstream in(">ok\nACGT\n>trailing desc\n");
  try {
    (void)read_fasta(in, Alphabet::dna());
    FAIL() << "trailing header-only record was accepted";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing desc"), std::string::npos)
        << e.what();
  }
}

TEST(Fasta, CrlfHeaderOnlyRecordThrows) {
  // CRLF line endings strip to an empty body, not a one-char '\r' body.
  std::istringstream in(">empty\r\n>two\r\nACGT\r\n");
  EXPECT_THROW(read_fasta(in, Alphabet::dna()), std::logic_error);
}

TEST(Fasta, WhitespaceOnlyBodyThrows) {
  std::istringstream in(">blank\n   \n\t\n");
  EXPECT_THROW(read_fasta(in, Alphabet::dna()), std::logic_error);
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<Sequence> recs;
  recs.push_back(Sequence::from_string("alpha", "ACGTACGTACGT", Alphabet::dna()));
  recs.push_back(Sequence::from_string("beta", "TTTT", Alphabet::dna()));
  std::ostringstream out;
  write_fasta(out, recs, 5);  // exercise wrapping
  std::istringstream in(out.str());
  const auto back = read_fasta(in, Alphabet::dna());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name(), "alpha");
  EXPECT_EQ(back[0].to_string(), "ACGTACGTACGT");
  EXPECT_EQ(back[1].to_string(), "TTTT");
}

}  // namespace
}  // namespace repro::seq
