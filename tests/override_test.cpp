#include <gtest/gtest.h>

#include <set>

#include "align/bottom_row_store.hpp"
#include "align/sparse_override.hpp"
#include "align/override_triangle.hpp"
#include "util/rng.hpp"

namespace repro::align {
namespace {

TEST(OverrideTriangle, StartsEmpty) {
  OverrideTriangle tri(50);
  EXPECT_EQ(tri.count(), 0);
  for (int i = 0; i < 49; ++i) {
    EXPECT_TRUE(tri.row_empty(i));
    for (int j = i + 1; j < 50; ++j) EXPECT_FALSE(tri.contains(i, j));
  }
}

TEST(OverrideTriangle, SetAndContains) {
  OverrideTriangle tri(10);
  tri.set(2, 7);
  EXPECT_TRUE(tri.contains(2, 7));
  EXPECT_FALSE(tri.contains(2, 6));
  EXPECT_FALSE(tri.contains(7, 8));
  EXPECT_FALSE(tri.row_empty(2));
  EXPECT_TRUE(tri.row_empty(3));
  EXPECT_EQ(tri.count(), 1);
}

TEST(OverrideTriangle, SetIsIdempotent) {
  OverrideTriangle tri(10);
  tri.set(1, 2);
  tri.set(1, 2);
  EXPECT_EQ(tri.count(), 1);
}

TEST(OverrideTriangle, Clear) {
  OverrideTriangle tri(10);
  tri.set(0, 9);
  tri.set(3, 4);
  tri.clear();
  EXPECT_EQ(tri.count(), 0);
  EXPECT_FALSE(tri.contains(0, 9));
  EXPECT_TRUE(tri.row_empty(0));
}

TEST(OverrideTriangle, MatchesSetReference) {
  // Property test against std::set over random pairs, including boundary
  // pairs (0, 1) and (m-2, m-1) and long rows crossing word boundaries.
  const int m = 300;
  OverrideTriangle tri(m);
  std::set<std::pair<int, int>> ref;
  util::Rng rng(4242);
  for (int k = 0; k < 2000; ++k) {
    const int i = static_cast<int>(rng.below(m - 1));
    const int j = i + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1 - i)));
    tri.set(i, j);
    ref.insert({i, j});
  }
  tri.set(0, 1);
  ref.insert({0, 1});
  tri.set(m - 2, m - 1);
  ref.insert({m - 2, m - 1});
  EXPECT_EQ(tri.count(), static_cast<std::int64_t>(ref.size()));
  for (int i = 0; i < m - 1; ++i)
    for (int j = i + 1; j < m; ++j)
      ASSERT_EQ(tri.contains(i, j), ref.contains({i, j})) << i << "," << j;
}

TEST(OverrideTriangle, RejectsBadPairs) {
  OverrideTriangle tri(10);
  EXPECT_THROW(tri.set(5, 5), std::logic_error);
  EXPECT_THROW(tri.set(7, 3), std::logic_error);
  EXPECT_THROW(tri.set(-1, 3), std::logic_error);
  EXPECT_THROW(tri.set(3, 10), std::logic_error);
  EXPECT_THROW(OverrideTriangle(1), std::logic_error);
}

TEST(BottomRowStore, StoreAndRead) {
  BottomRowStore rows(10);
  EXPECT_FALSE(rows.computed(3));
  const std::vector<Score> row{1, 2, 3, 4, 5, 6, 7};
  rows.store(3, row);
  EXPECT_TRUE(rows.computed(3));
  const auto back = rows.row(3);
  ASSERT_EQ(back.size(), 7u);
  for (int x = 0; x < 7; ++x) EXPECT_EQ(back[static_cast<std::size_t>(x)], x + 1);
}

TEST(BottomRowStore, LayoutIsDense) {
  // Adjacent rows must not clobber each other.
  const int m = 40;
  BottomRowStore rows(m);
  for (int r = 1; r < m; ++r) {
    std::vector<Score> row(static_cast<std::size_t>(m - r));
    for (std::size_t x = 0; x < row.size(); ++x)
      row[x] = r * 100 + static_cast<int>(x);
    rows.store(r, row);
  }
  for (int r = 1; r < m; ++r) {
    const auto row = rows.row(r);
    for (std::size_t x = 0; x < row.size(); ++x)
      ASSERT_EQ(row[x], r * 100 + static_cast<int>(x)) << "r=" << r;
  }
  EXPECT_EQ(rows.bytes(), static_cast<std::size_t>(m) * (m - 1) / 2 * 2);
}

TEST(BottomRowStore, GuardsMisuse) {
  BottomRowStore rows(10);
  const std::vector<Score> row7(7, 1);
  EXPECT_THROW(rows.row(3), std::logic_error);          // not yet stored
  EXPECT_THROW(rows.store(3, {{1, 2}}), std::logic_error);  // wrong size
  rows.store(3, row7);
  EXPECT_THROW(rows.store(3, row7), std::logic_error);  // stored twice
  const std::vector<Score> overflow{1, 2, 3, 4, 5, 100000};
  EXPECT_THROW(rows.store(4, overflow), std::logic_error);  // > i16
}

TEST(SparseOverrideSet, SetContainsAndCount) {
  SparseOverrideSet sparse(50);
  EXPECT_EQ(sparse.count(), 0);
  sparse.set(3, 17);
  sparse.set(3, 17);  // idempotent
  sparse.set(0, 49);
  EXPECT_TRUE(sparse.contains(3, 17));
  EXPECT_TRUE(sparse.contains(0, 49));
  EXPECT_FALSE(sparse.contains(3, 18));
  EXPECT_EQ(sparse.count(), 2);
  EXPECT_THROW(sparse.set(5, 5), std::logic_error);
  EXPECT_THROW(sparse.set(5, 50), std::logic_error);
}

TEST(SparseOverrideSet, RoundTripsWithDense) {
  const int m = 200;
  OverrideTriangle dense(m);
  SparseOverrideSet sparse(m);
  util::Rng rng(77);
  for (int k = 0; k < 3000; ++k) {
    const int i = static_cast<int>(rng.below(m - 1));
    const int j = i + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1 - i)));
    dense.set(i, j);
    sparse.set(i, j);
  }
  EXPECT_EQ(sparse.count(), dense.count());
  // sparse -> dense
  OverrideTriangle dense2(m);
  sparse.expand_into(dense2);
  for (int i = 0; i < m - 1; ++i)
    for (int j = i + 1; j < m; ++j)
      ASSERT_EQ(dense2.contains(i, j), dense.contains(i, j)) << i << "," << j;
  // dense -> sparse
  SparseOverrideSet sparse2(m);
  sparse2.add_all(dense);
  EXPECT_EQ(sparse2.count(), dense.count());
  for (const auto& [i, j] : sparse2.pairs()) EXPECT_TRUE(dense.contains(i, j));
}

TEST(SparseOverrideSet, PairsAreSortedUnique) {
  SparseOverrideSet sparse(30);
  util::Rng rng(5);
  for (int k = 0; k < 500; ++k) {
    const int i = static_cast<int>(rng.below(29));
    const int j = i + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(29 - i)));
    sparse.set(i, j);
  }
  const auto pairs = sparse.pairs();
  for (std::size_t k = 1; k < pairs.size(); ++k)
    EXPECT_LT(pairs[k - 1], pairs[k]);
  EXPECT_EQ(static_cast<std::int64_t>(pairs.size()), sparse.count());
}

TEST(SparseOverrideSet, CompressionWinsAtRealisticDensity) {
  // After a realistic number of top alignments the sparse form is far
  // smaller than the dense bit triangle (the paper's compression remark).
  const int m = 4000;
  SparseOverrideSet sparse(m);
  util::Rng rng(9);
  // ~30 tops x ~300 pairs each.
  for (int k = 0; k < 9000; ++k) {
    const int i = static_cast<int>(rng.below(m - 1));
    const int j = i + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1 - i)));
    sparse.set(i, j);
  }
  EXPECT_LT(sparse.bytes(), SparseOverrideSet::dense_bytes(m) / 5);
}

TEST(SparseOverrideSet, TailMergeStressConsistency) {
  // Push far past the merge threshold and verify against a std::set.
  const int m = 500;
  SparseOverrideSet sparse(m);
  std::set<std::pair<int, int>> ref;
  util::Rng rng(13);
  for (int k = 0; k < 6000; ++k) {
    const int i = static_cast<int>(rng.below(m - 1));
    const int j = i + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1 - i)));
    sparse.set(i, j);
    ref.insert({i, j});
    if (k % 997 == 0) {
      const int qi = static_cast<int>(rng.below(m - 1));
      const int qj = qi + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1 - qi)));
      ASSERT_EQ(sparse.contains(qi, qj), ref.contains({qi, qj}));
    }
  }
  EXPECT_EQ(sparse.count(), static_cast<std::int64_t>(ref.size()));
}

}  // namespace
}  // namespace repro::align
