// Robustness and pathological-input tests: degenerate sequences (massive
// tie-break stress), hostile file inputs, and extreme parameterisations.
#include <gtest/gtest.h>

#include <sstream>

#include "align/engine.hpp"
#include "core/old_finder.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "parallel/parallel_finder.hpp"
#include "seq/fasta.hpp"
#include "seq/generator.hpp"

namespace repro {
namespace {

using core::FinderOptions;
using seq::Alphabet;
using seq::Scoring;
using seq::Sequence;

TEST(Pathological, HomopolymerOldEqualsNew) {
  // A^40 self-aligns with astronomically many co-optimal alignments; the
  // deterministic tie-breaks must make old and new agree exactly anyway.
  const auto s = Sequence::from_string("polyA", std::string(40, 'A'),
                                       Alphabet::dna());
  FinderOptions opt;
  opt.num_top_alignments = 6;
  const auto old_res = core::find_top_alignments_old(s, Scoring::paper_example(), opt);
  const auto new_res = core::find_top_alignments(s, Scoring::paper_example(), opt);
  core::validate_tops(new_res.tops, s, Scoring::paper_example());
  std::string diff;
  EXPECT_TRUE(core::same_tops(old_res.tops, new_res.tops, &diff)) << diff;
  EXPECT_EQ(new_res.tops.size(), 6u);
}

TEST(Pathological, DinucleotideRepeatAllEnginesAgree) {
  const auto s = Sequence::from_string(
      "polyAT", "ATATATATATATATATATATATATATATATAT", Alphabet::dna());
  FinderOptions opt;
  opt.num_top_alignments = 5;
  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto reference =
      core::find_top_alignments(s, Scoring::paper_example(), opt, *scalar);
  for (const auto kind :
       {align::EngineKind::kSimd4Generic, align::EngineKind::kSimd8Generic,
        align::EngineKind::kGeneralGap, align::EngineKind::kScalarStriped}) {
    const auto engine = align::make_engine(kind);
    const auto res =
        core::find_top_alignments(s, Scoring::paper_example(), opt, *engine);
    std::string diff;
    EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff))
        << engine->name() << ": " << diff;
  }
}

TEST(Pathological, HomopolymerParallelDeterminism) {
  const auto s = Sequence::from_string("polyG", std::string(36, 'G'),
                                       Alphabet::dna());
  FinderOptions opt;
  opt.num_top_alignments = 4;
  const auto scalar = align::make_engine(align::EngineKind::kScalar);
  const auto reference =
      core::find_top_alignments(s, Scoring::paper_example(), opt, *scalar);
  parallel::ParallelOptions popt;
  popt.threads = 4;
  popt.finder = opt;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto res = parallel::find_top_alignments_parallel(
        s, Scoring::paper_example(), popt,
        align::engine_factory(align::EngineKind::kScalar));
    std::string diff;
    EXPECT_TRUE(core::same_tops(reference.tops, res.tops, &diff)) << diff;
  }
}

TEST(Pathological, NoPositiveScoresAnywhere) {
  // Every residue occurs exactly once, so no residue pair can match and no
  // local alignment is ever positive under a match/mismatch metric.
  const auto s = Sequence::from_string("distinct", "ACGT", Alphabet::dna());
  FinderOptions opt;
  opt.num_top_alignments = 5;
  const auto res = core::find_top_alignments(s, Scoring::paper_example(), opt);
  EXPECT_TRUE(res.tops.empty());
  // The old algorithm agrees on emptiness.
  const auto old_res =
      core::find_top_alignments_old(s, Scoring::paper_example(), opt);
  EXPECT_TRUE(old_res.tops.empty());
}

TEST(Pathological, LengthTwoSequence) {
  const auto s = Sequence::from_string("aa", "AA", Alphabet::dna());
  FinderOptions opt;
  opt.num_top_alignments = 3;
  const auto res = core::find_top_alignments(s, Scoring::paper_example(), opt);
  ASSERT_EQ(res.tops.size(), 1u);
  EXPECT_EQ(res.tops[0].score, 2);
  EXPECT_EQ(res.tops[0].pairs,
            (std::vector<std::pair<int, int>>{{0, 1}}));
}

TEST(Pathological, SequenceOfUnknownResidues) {
  // All-N DNA scores mismatch even against itself: no alignments.
  const auto s = Sequence::from_string("ns", std::string(30, 'N'),
                                       Alphabet::dna());
  const auto res =
      core::find_top_alignments(s, Scoring::paper_example(), {});
  EXPECT_TRUE(res.tops.empty());
}

TEST(HostileInput, FastaGarbageIsRejectedCleanly) {
  for (const char* text :
       {"not fasta at all", ">ok\nACGT\n>bad\nAC!GT\n", ">x\n1234\n"}) {
    std::istringstream in(text);
    EXPECT_THROW((void)seq::read_fasta(in, Alphabet::dna()), std::logic_error)
        << text;
  }
}

TEST(HostileInput, FastaHeaderOnlyRecordIsRejected) {
  // A header with no sequence body is malformed input, not an empty
  // sequence: every downstream consumer assumes length >= 1.
  std::istringstream in(">empty-record\n>second\nACGT\n");
  try {
    (void)seq::read_fasta(in, Alphabet::dna());
    FAIL() << "header-only record was accepted";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("empty-record"), std::string::npos)
        << e.what();
  }
}

TEST(HostileInput, MissingFastaFileThrows) {
  EXPECT_THROW(
      (void)seq::read_fasta_file("/nonexistent/path/x.fa", Alphabet::dna()),
      std::logic_error);
}

TEST(Extremes, ManyMoreTopsThanPairsTerminates) {
  const auto g = seq::synthetic_dna_tandem(60, 6, 4, 5);
  FinderOptions opt;
  opt.num_top_alignments = 100000;
  const auto res =
      core::find_top_alignments(g.sequence, Scoring::paper_example(), opt);
  EXPECT_LT(res.tops.size(), 100000u);
  core::validate_tops(res.tops, g.sequence, Scoring::paper_example());
  // Every accepted alignment consumed at least one pair; pair-disjointness
  // bounds the total by m(m-1)/2.
  EXPECT_LT(res.tops.size(), 60u * 59u / 2u);
}

TEST(Extremes, HugeGapPenaltiesForbidGaps) {
  const auto g = seq::synthetic_dna_tandem(120, 10, 6, 9);
  const Scoring rigid{seq::ScoreMatrix::dna(2, -1), seq::GapPenalty{1000, 100}};
  FinderOptions opt;
  opt.num_top_alignments = 4;
  const auto res = core::find_top_alignments(g.sequence, rigid, opt);
  core::validate_tops(res.tops, g.sequence, rigid);
  for (const auto& top : res.tops) {
    // Gapless: pairs advance diagonally only.
    for (std::size_t k = 1; k < top.pairs.size(); ++k) {
      EXPECT_EQ(top.pairs[k].first, top.pairs[k - 1].first + 1);
      EXPECT_EQ(top.pairs[k].second, top.pairs[k - 1].second + 1);
    }
  }
}

TEST(Extremes, ZeroExtendGapPenalty) {
  // extend = 0 makes long gaps cheap; the recurrences must still agree.
  const auto g = seq::synthetic_dna_tandem(80, 8, 5, 13);
  const Scoring cheap{seq::ScoreMatrix::dna(2, -1), seq::GapPenalty{3, 0}};
  FinderOptions opt;
  opt.num_top_alignments = 4;
  const auto old_res = core::find_top_alignments_old(g.sequence, cheap, opt);
  const auto new_res = core::find_top_alignments(g.sequence, cheap, opt);
  std::string diff;
  EXPECT_TRUE(core::same_tops(old_res.tops, new_res.tops, &diff)) << diff;
}

}  // namespace
}  // namespace repro
