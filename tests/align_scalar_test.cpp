// Scalar kernel tests, anchored on the paper's running example (Fig. 2):
// local alignment of CTTACAGA and ATTGCGA under match +2 / mismatch -1 /
// gap open 2 / gap extend 1, best score 6.
#include <gtest/gtest.h>

#include "align/engine.hpp"
#include "align/traceback.hpp"
#include "core/top_alignment.hpp"
#include "test_support.hpp"

namespace repro::align {
namespace {

using seq::Alphabet;
using seq::Scoring;
using seq::Sequence;

/// Fig. 2 as a rectangle: vertical prefix ATTGCGA, horizontal suffix
/// CTTACAGA of the concatenated sequence, split at r = 7.
Sequence fig2_sequence() {
  return Sequence::from_string("fig2", "ATTGCGACTTACAGA", Alphabet::dna());
}

TEST(ScalarEngine, PaperFig2BottomRow) {
  const Sequence s = fig2_sequence();
  const Scoring scoring = Scoring::paper_example();
  const auto engine = make_engine(EngineKind::kScalar);
  const auto row = engine->align_one(testing::make_job(s, 7, scoring));
  // Bottom row of Fig. 2 (row "A"), hand-recomputed from Eq. 1 with the
  // paper's metric; the best score 6 sits on the final A-A match.
  const std::vector<Score> expected{0, 0, 0, 2, 0, 4, 3, 6};
  EXPECT_EQ(row, expected);
}

TEST(ScalarEngine, PaperFig2BestScoreIsSix) {
  const Sequence s = fig2_sequence();
  const auto engine = make_engine(EngineKind::kScalar);
  const Scoring scoring = Scoring::paper_example();
  const auto row = engine->align_one(testing::make_job(s, 7, scoring));
  const BestEnd end = find_best_end(row);
  EXPECT_EQ(end.score, 6);
  EXPECT_EQ(end.end_x, 8);  // ends on the final A-A match
}

TEST(ScalarEngine, PaperFig2Traceback) {
  const Sequence s = fig2_sequence();
  const Scoring scoring = Scoring::paper_example();
  const Traceback tb = traceback_best(testing::make_job(s, 7, scoring));
  EXPECT_EQ(tb.score, 6);
  // The paper's alignment:  TTACAGA  over  TTGC-GA.
  core::TopAlignment top;
  top.r = tb.r;
  top.score = tb.score;
  top.end_x = tb.end_x;
  top.pairs = tb.pairs;
  const std::string rendered = core::render(top, s);
  EXPECT_EQ(rendered, "TTGC-GA\n||.| ||\nTTACAGA\n");
  EXPECT_EQ(tb.pairs, (std::vector<std::pair<int, int>>{
                          {1, 8}, {2, 9}, {3, 10}, {4, 11}, {5, 13}, {6, 14}}));
}

TEST(ScalarEngine, MatchesBruteForceOnRandomDna) {
  util::Rng rng(101);
  const auto engine = make_engine(EngineKind::kScalar);
  const Scoring scoring = Scoring::paper_example();
  for (int iter = 0; iter < 20; ++iter) {
    const int m = 12 + static_cast<int>(rng.below(40));
    const auto s = seq::random_sequence(Alphabet::dna(), m, 1000 + iter);
    for (int r : {1, m / 3 + 1, m / 2, m - 1}) {
      const auto row = engine->align_one(testing::make_job(s, r, scoring));
      EXPECT_EQ(row, testing::reference_bottom_row(s, r, scoring))
          << "m=" << m << " r=" << r;
    }
  }
}

TEST(ScalarEngine, MatchesBruteForceOnRandomProtein) {
  util::Rng rng(202);
  const auto engine = make_engine(EngineKind::kScalar);
  const Scoring scoring{seq::ScoreMatrix::blosum62(), seq::GapPenalty{11, 1}};
  for (int iter = 0; iter < 10; ++iter) {
    const int m = 20 + static_cast<int>(rng.below(50));
    const auto s = seq::random_sequence(Alphabet::protein(), m, 2000 + iter);
    const int r = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1)));
    const auto row = engine->align_one(testing::make_job(s, r, scoring));
    EXPECT_EQ(row, testing::reference_bottom_row(s, r, scoring));
  }
}

TEST(ScalarEngine, MatchesBruteForceWithOverrides) {
  util::Rng rng(303);
  const auto engine = make_engine(EngineKind::kScalar);
  const Scoring scoring = Scoring::paper_example();
  for (int iter = 0; iter < 15; ++iter) {
    const int m = 16 + static_cast<int>(rng.below(30));
    const auto g = seq::synthetic_dna_tandem(m, 5, 2, 3000 + iter);
    OverrideTriangle tri(m);
    const auto pairs = testing::random_overrides(m, m, rng, &tri);
    const int r = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1)));
    const auto row =
        engine->align_one(testing::make_job(g.sequence, r, scoring, &tri));
    EXPECT_EQ(row, testing::reference_bottom_row(g.sequence, r, scoring, pairs));
  }
}

TEST(ScalarEngine, ZeroScoresWhenEverythingOverridden) {
  const auto s = seq::random_sequence(Alphabet::dna(), 20, 5);
  OverrideTriangle tri(20);
  for (int i = 0; i < 19; ++i)
    for (int j = i + 1; j < 20; ++j) tri.set(i, j);
  const auto engine = make_engine(EngineKind::kScalar);
  const Scoring scoring = Scoring::paper_example();
  const auto row = engine->align_one(testing::make_job(s, 10, scoring, &tri));
  for (Score v : row) EXPECT_EQ(v, 0);
}

TEST(GeneralGapEngine, MatchesScalarForAffinePenalties) {
  // The old algorithm's O(n)/cell kernel must produce identical matrices
  // for affine penalties — this is what makes old == new testable.
  util::Rng rng(404);
  const auto scalar = make_engine(EngineKind::kScalar);
  const auto general = make_engine(EngineKind::kGeneralGap);
  const Scoring scoring{seq::ScoreMatrix::blosum62(), seq::GapPenalty{8, 2}};
  for (int iter = 0; iter < 10; ++iter) {
    const int m = 20 + static_cast<int>(rng.below(40));
    const auto g = seq::synthetic_titin(std::max(m, 200), 4000 + iter);
    const auto s = g.sequence.subsequence(0, m);
    const int r = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1)));
    EXPECT_EQ(scalar->align_one(testing::make_job(s, r, scoring)),
              general->align_one(testing::make_job(s, r, scoring)));
  }
}

TEST(StripedEngine, MatchesScalarAcrossStripeWidths) {
  util::Rng rng(505);
  const auto scalar = make_engine(EngineKind::kScalar);
  const Scoring scoring = Scoring::paper_example();
  for (int stripe : {1, 2, 7, 16, 64, -1}) {
    const auto striped = make_engine(EngineKind::kScalarStriped, stripe);
    for (int iter = 0; iter < 6; ++iter) {
      const int m = 20 + static_cast<int>(rng.below(60));
      const auto s = seq::random_sequence(Alphabet::dna(), m, 5000 + iter);
      const int r = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1)));
      EXPECT_EQ(striped->align_one(testing::make_job(s, r, scoring)),
                scalar->align_one(testing::make_job(s, r, scoring)))
          << "stripe=" << stripe << " m=" << m << " r=" << r;
    }
  }
}

TEST(StripedEngine, MatchesScalarWithOverrides) {
  util::Rng rng(606);
  const auto scalar = make_engine(EngineKind::kScalar);
  const auto striped = make_engine(EngineKind::kScalarStriped, 8);
  const Scoring scoring = Scoring::paper_example();
  for (int iter = 0; iter < 8; ++iter) {
    const int m = 30 + static_cast<int>(rng.below(40));
    const auto s = seq::random_sequence(Alphabet::dna(), m, 6000 + iter);
    OverrideTriangle tri(m);
    testing::random_overrides(m, 2 * m, rng, &tri);
    const int r = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1)));
    EXPECT_EQ(striped->align_one(testing::make_job(s, r, scoring, &tri)),
              scalar->align_one(testing::make_job(s, r, scoring, &tri)));
  }
}

TEST(Engine, ValidatesJobs) {
  const auto s = seq::random_sequence(Alphabet::dna(), 10, 1);
  const Scoring scoring = Scoring::paper_example();
  const auto engine = make_engine(EngineKind::kScalar);
  EXPECT_THROW(engine->align_one(testing::make_job(s, 0, scoring)),
               std::logic_error);
  EXPECT_THROW(engine->align_one(testing::make_job(s, 10, scoring)),
               std::logic_error);
  auto job = testing::make_job(s, 3, scoring);
  job.scoring = nullptr;
  EXPECT_THROW(engine->align_one(job), std::logic_error);
}

TEST(Engine, CountsCells) {
  const auto s = seq::random_sequence(Alphabet::dna(), 30, 1);
  const Scoring scoring = Scoring::paper_example();
  const auto engine = make_engine(EngineKind::kScalar);
  engine->align_one(testing::make_job(s, 10, scoring));
  EXPECT_EQ(engine->cells_computed(), 10u * 20u);
  EXPECT_EQ(engine->alignments_performed(), 1u);
  engine->reset_counters();
  EXPECT_EQ(engine->cells_computed(), 0u);
}

}  // namespace
}  // namespace repro::align
