// Repeat delineation (Repro phase 2) on ground-truth synthetic repeats,
// including the paper's future-work unit-length filter.
#include <gtest/gtest.h>

#include "core/delineate.hpp"
#include "core/top_alignment_finder.hpp"
#include "seq/generator.hpp"

namespace repro::core {
namespace {

using seq::Scoring;

TEST(SelectPeriod, EmptyInput) { EXPECT_EQ(select_period({}), 0); }

TEST(SelectPeriod, SingleCluster) {
  const std::vector<int> offsets{20, 21, 19, 20, 20};
  EXPECT_NEAR(select_period(offsets), 20, 1);
}

TEST(SelectPeriod, PrefersShortestExplainingPeriod) {
  // The paper's AACAAC example: offsets at 3, 6, 9 should yield period 3,
  // not 6 or 9 — four AAC beat two AACAAC.
  std::vector<int> offsets;
  for (int k = 0; k < 10; ++k) {
    offsets.push_back(3);
    offsets.push_back(6);
    offsets.push_back(9);
  }
  EXPECT_EQ(select_period(offsets), 3);
}

TEST(SelectPeriod, IgnoresHarmonicsWithNoise) {
  std::vector<int> offsets;
  for (int k = 0; k < 20; ++k) {
    offsets.push_back(12 + (k % 3) - 1);  // 11, 12, 13
    offsets.push_back(24 + (k % 2));      // 24, 25
  }
  const int p = select_period(offsets);
  EXPECT_NEAR(p, 12, 2);
}

TEST(Delineate, RecoversTandemDnaRepeat) {
  const auto g = seq::synthetic_dna_tandem(400, 20, 8, 11);
  FinderOptions opt;
  opt.num_top_alignments = 12;
  const auto res = find_top_alignments(g.sequence, Scoring::paper_example(), opt);
  const auto regions = delineate_repeats(g.sequence, res.tops);
  ASSERT_FALSE(regions.empty());

  // The main region should cover the implanted block and report ~20 period.
  const int truth_begin = g.copies.front().begin;
  const int truth_end = g.copies.back().end;
  const RepeatRegion* main = nullptr;
  for (const auto& region : regions)
    if (main == nullptr || region.support > main->support) main = &region;
  ASSERT_NE(main, nullptr);
  EXPECT_LE(main->begin, truth_begin + 25);
  EXPECT_GE(main->end, truth_end - 25);
  EXPECT_NEAR(main->period, 20, 6);
  EXPECT_GE(main->copies, 4);
}

TEST(Delineate, RecoversProteinDomains) {
  // Moderately divergent protein domains: recoverable ground truth.
  seq::RepeatSpec spec;
  spec.unit_length = 60;
  spec.copies = 8;
  spec.conservation = 0.45;
  spec.indel_rate = 0.02;
  spec.max_indel = 3;
  const auto g = seq::make_repeat_sequence(seq::Alphabet::protein(), 560, spec, 12);
  FinderOptions opt;
  opt.num_top_alignments = 15;
  const auto res =
      find_top_alignments(g.sequence, Scoring::protein_default(), opt);
  const auto regions = delineate_repeats(g.sequence, res.tops);
  ASSERT_FALSE(regions.empty());
  const RepeatRegion* main = nullptr;
  for (const auto& region : regions)
    if (main == nullptr || region.support > main->support) main = &region;
  // Unit length 60; accept the band or its first harmonic.
  const int p = main->period;
  const bool plausible = (p >= 45 && p <= 75) || (p >= 105 && p <= 135);
  EXPECT_TRUE(plausible) << "period " << p;
}

TEST(Delineate, HardDivergentTitinStillYieldsRegions) {
  // The paper's own caveat: at 10-25 % conservation, phase-2 delineation
  // "needs some changes to increase the sensitivity for long sequences".
  // Our reference implementation matches that limitation: regions are
  // found, but the period estimate is not asserted.
  const auto g = seq::synthetic_titin(600, 12);
  FinderOptions opt;
  opt.num_top_alignments = 15;
  const auto res =
      find_top_alignments(g.sequence, Scoring::protein_default(), opt);
  const auto regions = delineate_repeats(g.sequence, res.tops);
  ASSERT_FALSE(regions.empty());
  int covered = 0;
  for (const auto& region : regions) covered += region.end - region.begin;
  EXPECT_GT(covered, g.sequence.length() / 3);
}

TEST(Delineate, NoRepeatsInRandomSequence) {
  const auto s = seq::random_sequence(seq::Alphabet::protein(), 300, 9);
  FinderOptions opt;
  opt.num_top_alignments = 10;
  opt.min_score = 30;  // random proteins rarely reach this self-similarity
  const auto res = find_top_alignments(s, Scoring::protein_default(), opt);
  const auto regions = delineate_repeats(s, res.tops);
  EXPECT_TRUE(regions.empty());
}

TEST(Delineate, EmptyTopsGiveNoRegions) {
  const auto s = seq::random_sequence(seq::Alphabet::dna(), 100, 2);
  EXPECT_TRUE(delineate_repeats(s, {}).empty());
}

}  // namespace
}  // namespace repro::core
