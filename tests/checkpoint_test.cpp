// Checkpoint-resume realignment: resumed sweeps must be bit-identical to
// from-scratch sweeps (kernel level), the finder with the cache enabled must
// produce exactly the tops of a cache-disabled run (both memory modes, every
// engine), and the cache itself must honor its validity model and budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "align/checkpoint_cache.hpp"
#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "parallel/parallel_finder.hpp"
#include "seq/generator.hpp"
#include "seq/scoring.hpp"
#include "util/rng.hpp"

namespace repro {
namespace {

using align::CheckpointCache;
using align::CheckpointRow;
using align::CheckpointSink;
using align::CheckpointView;
using align::PairDirtyIndex;
using align::Score;
using core::FinderOptions;

// ---------------------------------------------------------------------------
// PairDirtyIndex

TEST(PairDirtyIndex, EmptyHasNoDirtyRows) {
  const PairDirtyIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.min_dirty_row(1), PairDirtyIndex::kNoDirtyRow);
  EXPECT_EQ(idx.min_dirty_row(100), PairDirtyIndex::kNoDirtyRow);
}

TEST(PairDirtyIndex, MatchesBruteForceOnRandomPairLists) {
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int m = 20 + static_cast<int>(rng.below(60));
    std::vector<std::pair<int, int>> pairs;
    const int n = 1 + static_cast<int>(rng.below(12));
    for (int t = 0; t < n; ++t) {
      const int j = 1 + static_cast<int>(rng.below(m - 1));
      const int i = static_cast<int>(rng.below(j));
      pairs.emplace_back(i, j);
    }
    const PairDirtyIndex idx{std::span<const std::pair<int, int>>(pairs)};
    for (int r0 = 1; r0 < m; ++r0) {
      int expect = PairDirtyIndex::kNoDirtyRow;
      for (const auto& [i, j] : pairs)
        if (j >= r0) expect = std::min(expect, i + 1);
      EXPECT_EQ(idx.min_dirty_row(r0), expect)
          << "trial " << trial << " r0=" << r0;
    }
  }
}

// ---------------------------------------------------------------------------
// CheckpointCache semantics

CheckpointSink make_sink(int stride, int top_row, std::size_t buf_bytes,
                         std::byte fill) {
  CheckpointSink sink;
  sink.stride = stride;
  sink.top_row = top_row;
  sink.lanes = 1;
  sink.elem_size = 4;
  sink.prepare(1, top_row, buf_bytes);
  for (int t = 0; t < sink.count; ++t) {
    auto& cr = sink.rows[static_cast<std::size_t>(t)];
    std::fill(cr.h.begin(), cr.h.end(), fill);
    std::fill(cr.max_y.begin(), cr.max_y.end(), fill);
  }
  return sink;
}

TEST(CheckpointCacheTest, FindReturnsDeepestRowWithinValidityLimits) {
  CheckpointCache cache(1 << 20);
  auto sink = make_sink(4, 9, 16, std::byte{0x5a});  // rows 4, 8, 9
  cache.store(5, /*plain_class=*/true, 10, sink);

  const auto plain = cache.find(5, /*plain_sweep=*/true, 0);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->row, 9);  // plain sweeps ignore the limit
  EXPECT_EQ(plain->lanes, 1);
  EXPECT_EQ(plain->elem_size, 4);
  EXPECT_EQ(plain->bytes, 16u);

  const auto clamped = cache.find(5, /*plain_sweep=*/false, 7);
  ASSERT_TRUE(clamped.has_value());
  EXPECT_EQ(clamped->row, 4);  // deepest plain row <= the clean limit

  EXPECT_FALSE(cache.find(5, /*plain_sweep=*/false, 2).has_value());
  EXPECT_FALSE(cache.find(7, /*plain_sweep=*/true, 0).has_value());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CheckpointCacheTest, InvalidateDropsOverriddenRowsButKeepsPlain) {
  CheckpointCache cache(1 << 20);
  auto plain_sink = make_sink(4, 9, 16, std::byte{1});
  cache.store(5, /*plain_class=*/true, 10, plain_sink);
  auto over_sink = make_sink(4, 9, 16, std::byte{2});
  cache.store(5, /*plain_class=*/false, 10, over_sink);

  // A pair at (i=5, j=6) dirties DP rows >= 6 of every group with r0 <= 6.
  const std::vector<std::pair<int, int>> pairs{{5, 6}};
  cache.invalidate(PairDirtyIndex{std::span<const std::pair<int, int>>(pairs)});
  EXPECT_EQ(cache.stats().invalidated_rows, 2u);  // overridden rows 8 and 9

  const auto over = cache.find(5, /*plain_sweep=*/false,
                               std::numeric_limits<int>::max());
  ASSERT_TRUE(over.has_value());
  EXPECT_EQ(over->row, 9);  // plain row 9 beats surviving overridden row 4
  const auto plain = cache.find(5, /*plain_sweep=*/true, 0);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->row, 9);  // plain entry untouched by invalidation
}

TEST(CheckpointCacheTest, TinyBudgetEvictsLowestPriorityEntry) {
  // Budget below a single row: every store evicts something, lowest priority
  // (the group's best score) first.
  CheckpointCache cache(1);
  auto a = make_sink(4, 9, 16, std::byte{1});
  cache.store(3, true, /*priority=*/50, a);
  EXPECT_EQ(cache.stats().evictions, 1u);  // only entry: evicted immediately
  EXPECT_EQ(cache.bytes(), 0u);

  CheckpointCache cache2(40);  // fits one 32-byte row, not two
  auto low = make_sink(4, 4, 16, std::byte{1});
  cache2.store(3, true, /*priority=*/10, low);
  auto high = make_sink(4, 4, 16, std::byte{2});
  cache2.store(9, true, /*priority=*/90, high);
  EXPECT_EQ(cache2.stats().evictions, 1u);
  EXPECT_FALSE(cache2.find(3, true, 0).has_value());  // low priority evicted
  EXPECT_TRUE(cache2.find(9, true, 0).has_value());
}

TEST(CheckpointCacheTest, SameRowStoreRecyclesBytes) {
  CheckpointCache cache(1 << 20);
  auto sink = make_sink(4, 9, 16, std::byte{1});
  cache.store(5, true, 10, sink);
  const std::size_t bytes_once = cache.bytes();
  auto again = make_sink(4, 9, 16, std::byte{2});
  cache.store(5, true, 11, again);
  EXPECT_EQ(cache.bytes(), bytes_once);  // same grid: no growth
  const auto view = cache.find(5, true, 0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->h[0], std::byte{2});  // newest sweep's state won
}

// ---------------------------------------------------------------------------
// Kernel-level resume equivalence (randomized triangle-growth fuzz)

std::vector<align::EngineKind> checkpoint_engine_kinds() {
  std::vector<align::EngineKind> kinds{
      align::EngineKind::kScalar, align::EngineKind::kScalarStriped,
      align::EngineKind::kSimd4Generic, align::EngineKind::kSimd8Generic,
      align::EngineKind::kSimd4x32Generic,
      // Adaptive engines run everywhere: on inputs past the u8 headroom they
      // escalate to i16 and must still honor every checkpoint contract.
      align::EngineKind::kSimdAutoGeneric, align::EngineKind::kSimdAuto};
#if REPRO_HAVE_SSE2
  kinds.push_back(align::EngineKind::kSimd4);
  kinds.push_back(align::EngineKind::kSimd8);
  if (align::sse41_available()) kinds.push_back(align::EngineKind::kSimd4x32);
#endif
  if (align::avx2_available()) {
    kinds.push_back(align::EngineKind::kSimd16);
    kinds.push_back(align::EngineKind::kSimd8x32);
  }
  return kinds;
}

// Explicit u8 engines only accept inputs inside their biased saturation
// headroom, so they get their own in-range DNA workloads below.
std::vector<align::EngineKind> u8_engine_kinds() {
  std::vector<align::EngineKind> kinds{align::EngineKind::kSimd8x8Generic};
#if REPRO_HAVE_SSE2
  kinds.push_back(align::EngineKind::kSimd16x8);
#endif
  if (align::avx2_available()) kinds.push_back(align::EngineKind::kSimd32x8);
  return kinds;
}

CheckpointView view_of(const CheckpointSink& sink, int index) {
  const CheckpointRow& cr = sink.rows[static_cast<std::size_t>(index)];
  CheckpointView view;
  view.row = cr.row;
  view.lanes = sink.lanes;
  view.elem_size = sink.elem_size;
  view.h = cr.h.data();
  view.max_y = cr.max_y.data();
  view.bytes = cr.h.size();
  return view;
}

/// Sweeps a group with `resume` (nullptr = from scratch), returning the
/// bottom rows; `sink` (optional) collects checkpoints.
std::vector<std::vector<Score>> sweep(align::Engine& engine,
                                      const seq::Sequence& s,
                                      const seq::Scoring& scoring,
                                      const align::OverrideTriangle* triangle,
                                      int r0, int count,
                                      const CheckpointView* resume,
                                      CheckpointSink* sink) {
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &scoring;
  job.overrides = triangle;
  job.r0 = r0;
  job.count = count;
  job.resume = resume;
  job.sink = sink;
  const int m = s.length();
  std::vector<std::vector<Score>> rows(static_cast<std::size_t>(count));
  std::vector<std::span<Score>> outs(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    rows[static_cast<std::size_t>(k)].resize(
        static_cast<std::size_t>(m - (r0 + k)));
    outs[static_cast<std::size_t>(k)] = rows[static_cast<std::size_t>(k)];
  }
  engine.align(job, outs);
  return rows;
}

TEST(CheckpointKernel, ResumeFromEveryDepthMatchesScratch) {
  // A plain sweep emits checkpoints on a fine grid; resuming from each one
  // (empty triangle, so every depth is valid) must reproduce the scratch
  // bottom rows exactly.
  const auto g = seq::synthetic_titin(160, 7);
  const seq::Scoring scoring = seq::Scoring::protein_default();
  for (const auto kind : checkpoint_engine_kinds()) {
    const auto engine = align::make_engine(kind);
    const int count = engine->lanes();
    const int r0 = 90;
    CheckpointSink sink;
    sink.stride = 11;
    sink.top_row = r0 - 1;
    const auto scratch =
        sweep(*engine, g.sequence, scoring, nullptr, r0, count, nullptr, &sink);
    ASSERT_GT(sink.count, 1) << engine->name();
    for (int t = 0; t < sink.count; ++t) {
      const CheckpointView view = view_of(sink, t);
      const auto resumed = sweep(*engine, g.sequence, scoring, nullptr, r0,
                                 count, &view, nullptr);
      EXPECT_EQ(resumed, scratch)
          << engine->name() << " resumed from row " << view.row;
    }
  }
}

TEST(CheckpointKernel, TriangleGrowthFuzzResumedEqualsScratch) {
  // Rounds of random triangle growth; each round realigns from scratch and
  // resumed from the deepest still-clean checkpoint of the previous round.
  const seq::Scoring protein = seq::Scoring::protein_default();
  const seq::Scoring dna = seq::Scoring::paper_example();
  for (const auto kind : checkpoint_engine_kinds()) {
    const auto engine = align::make_engine(kind);
    for (int seed = 0; seed < 6; ++seed) {
      util::Rng rng(900 + static_cast<std::uint64_t>(seed));
      const bool use_dna = rng.chance(0.5);
      const int m = 100 + static_cast<int>(rng.below(50));
      const seq::Sequence s =
          use_dna ? seq::synthetic_dna_tandem(m, 9, 5,
                                              100 + static_cast<std::uint64_t>(seed))
                        .sequence
                  : seq::synthetic_titin(m, 200 + static_cast<std::uint64_t>(seed))
                        .sequence;
      const seq::Scoring& scoring = use_dna ? dna : protein;
      const int count = engine->lanes();
      const int r0 =
          2 + static_cast<int>(rng.below(
                  static_cast<std::uint64_t>(std::max(1, m - count - 3))));
      align::OverrideTriangle triangle(m);

      CheckpointSink staged;  // plays the cache: last scratch sweep's rows
      staged.stride = 1 + static_cast<int>(rng.below(9));
      staged.top_row = r0 - 1;
      sweep(*engine, s, scoring, &triangle, r0, count, nullptr, &staged);

      for (int round = 0; round < 4; ++round) {
        // Grow the triangle with random pairs reaching this group (j >= r0).
        std::vector<std::pair<int, int>> pairs;
        const int n = 1 + static_cast<int>(rng.below(3));
        for (int t = 0; t < n; ++t) {
          const int j =
              r0 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - r0)));
          const int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(j)));
          pairs.emplace_back(i, j);
          triangle.set(i, j);
        }
        const PairDirtyIndex dirty{
            std::span<const std::pair<int, int>>(pairs)};
        staged.drop_from(dirty.min_dirty_row(r0));  // invalidate stale rows

        CheckpointSink fresh;
        fresh.stride = staged.stride;
        fresh.top_row = r0 - 1;
        const auto scratch =
            sweep(*engine, s, scoring, &triangle, r0, count, nullptr, &fresh);
        if (staged.count > 0) {
          const CheckpointView view = view_of(staged, staged.count - 1);
          const auto resumed = sweep(*engine, s, scoring, &triangle, r0, count,
                                     &view, nullptr);
          EXPECT_EQ(resumed, scratch)
              << engine->name() << " seed " << seed << " round " << round
              << " resumed from row " << view.row;
        }
        staged = std::move(fresh);
      }
    }
  }
}

TEST(CheckpointKernel, U8ResumeFromEveryDepthMatchesScratch) {
  // Same contract as above for the saturating u8 engines, on a DNA workload
  // that fits their biased headroom (bound = m <= 252 for paper_example).
  const auto g = seq::synthetic_dna_tandem(200, 9, 5, 77);
  const seq::Scoring scoring = seq::Scoring::paper_example();
  ASSERT_TRUE(align::precision_fits(align::Precision::kI8,
                                    g.sequence.length(), scoring));
  for (const auto kind : u8_engine_kinds()) {
    const auto engine = align::make_engine(kind);
    const int count = engine->lanes();
    const int r0 = 110;
    CheckpointSink sink;
    sink.stride = 7;
    sink.top_row = r0 - 1;
    const auto scratch =
        sweep(*engine, g.sequence, scoring, nullptr, r0, count, nullptr, &sink);
    ASSERT_GT(sink.count, 1) << engine->name();
    EXPECT_EQ(sink.elem_size, 1) << engine->name();
    for (int t = 0; t < sink.count; ++t) {
      const CheckpointView view = view_of(sink, t);
      const auto resumed = sweep(*engine, g.sequence, scoring, nullptr, r0,
                                 count, &view, nullptr);
      EXPECT_EQ(resumed, scratch)
          << engine->name() << " resumed from row " << view.row;
    }
  }
}

TEST(CheckpointKernel, U8TriangleGrowthFuzzResumedEqualsScratch) {
  // Randomized triangle growth for the u8 engines (DNA only, in-range);
  // override growth only lowers DP values, so clean u8 sweeps stay clean.
  const seq::Scoring dna = seq::Scoring::paper_example();
  for (const auto kind : u8_engine_kinds()) {
    const auto engine = align::make_engine(kind);
    for (int seed = 0; seed < 4; ++seed) {
      util::Rng rng(3100 + static_cast<std::uint64_t>(seed));
      const int m = 100 + static_cast<int>(rng.below(50));
      const seq::Sequence s =
          seq::synthetic_dna_tandem(m, 9, 5,
                                    600 + static_cast<std::uint64_t>(seed))
              .sequence;
      const int count = engine->lanes();
      const int r0 =
          2 + static_cast<int>(rng.below(
                  static_cast<std::uint64_t>(std::max(1, m - count - 3))));
      align::OverrideTriangle triangle(m);

      CheckpointSink staged;
      staged.stride = 1 + static_cast<int>(rng.below(9));
      staged.top_row = r0 - 1;
      sweep(*engine, s, dna, &triangle, r0, count, nullptr, &staged);

      for (int round = 0; round < 4; ++round) {
        std::vector<std::pair<int, int>> pairs;
        const int n = 1 + static_cast<int>(rng.below(3));
        for (int t = 0; t < n; ++t) {
          const int j =
              r0 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - r0)));
          const int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(j)));
          pairs.emplace_back(i, j);
          triangle.set(i, j);
        }
        const PairDirtyIndex dirty{
            std::span<const std::pair<int, int>>(pairs)};
        staged.drop_from(dirty.min_dirty_row(r0));

        CheckpointSink fresh;
        fresh.stride = staged.stride;
        fresh.top_row = r0 - 1;
        const auto scratch =
            sweep(*engine, s, dna, &triangle, r0, count, nullptr, &fresh);
        if (staged.count > 0) {
          const CheckpointView view = view_of(staged, staged.count - 1);
          const auto resumed =
              sweep(*engine, s, dna, &triangle, r0, count, &view, nullptr);
          EXPECT_EQ(resumed, scratch)
              << engine->name() << " seed " << seed << " round " << round
              << " resumed from row " << view.row;
        }
        staged = std::move(fresh);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Finder-level equivalence: cache on vs off, both memory modes, all engines

TEST(CheckpointFinder, CacheOnMatchesCacheOffAcrossEnginesAndMemoryModes) {
  const auto g = seq::synthetic_titin(260, 22);
  const seq::Scoring scoring = seq::Scoring::protein_default();
  for (const auto kind : checkpoint_engine_kinds()) {
    for (const auto memory :
         {core::MemoryMode::kArchiveRows, core::MemoryMode::kRecomputeRows}) {
      FinderOptions off;
      off.num_top_alignments = 8;
      off.memory = memory;
      off.checkpoint_mem = 0;
      FinderOptions on = off;
      on.checkpoint_mem = CheckpointCache::kDefaultBudget;
      const auto e1 = align::make_engine(kind);
      const auto e2 = align::make_engine(kind);
      const auto a = find_top_alignments(g.sequence, scoring, off, *e1);
      const auto b = find_top_alignments(g.sequence, scoring, on, *e2);
      std::string diff;
      EXPECT_TRUE(core::same_tops(a.tops, b.tops, &diff))
          << e1->name() << " memory mode "
          << (memory == core::MemoryMode::kArchiveRows ? "archive" : "recompute")
          << ": " << diff;
      if (b.stats.realignments > 0)  // every realignment sweep did a lookup
        EXPECT_GT(b.stats.ckpt_hits + b.stats.ckpt_misses, 0u)
            << e1->name();
      EXPECT_EQ(a.stats.ckpt_hits, 0u);
      EXPECT_EQ(a.stats.rows_skipped, 0u);
    }
  }
}

TEST(CheckpointFinder, ResumeActuallySkipsRowsOnRepeatDenseInput) {
  const auto g = seq::synthetic_titin(300, 31);
  FinderOptions opt;
  opt.num_top_alignments = 10;
  const auto engine = align::make_engine(align::EngineKind::kScalar);
  const auto res =
      find_top_alignments(g.sequence, seq::Scoring::protein_default(), opt,
                          *engine);
  EXPECT_GT(res.stats.ckpt_hits, 0u);
  EXPECT_GT(res.stats.rows_skipped, 0u);
  EXPECT_GT(res.stats.rows_swept, res.stats.rows_skipped);
  EXPECT_GT(engine->cells_skipped(), 0u);
}

TEST(CheckpointFinder, OneRowBudgetStillProducesIdenticalTops) {
  // A budget below a single checkpoint row forces an eviction on every
  // store; results must not change, and the eviction counter must show it.
  const auto g = seq::synthetic_titin(220, 13);
  FinderOptions off;
  off.num_top_alignments = 8;
  off.checkpoint_mem = 0;
  FinderOptions tiny = off;
  tiny.checkpoint_mem = 1;
  const auto e1 = align::make_engine(align::EngineKind::kSimd8Generic);
  const auto e2 = align::make_engine(align::EngineKind::kSimd8Generic);
  const auto a = find_top_alignments(g.sequence,
                                     seq::Scoring::protein_default(), off, *e1);
  const auto b = find_top_alignments(g.sequence,
                                     seq::Scoring::protein_default(), tiny, *e2);
  std::string diff;
  EXPECT_TRUE(core::same_tops(a.tops, b.tops, &diff)) << diff;
  EXPECT_GT(b.stats.ckpt_evictions, 0u);
  EXPECT_EQ(b.stats.ckpt_hits, 0u);  // nothing survives a 1-byte budget
}

TEST(CheckpointFinder, LowMemoryUntouchedLaneSkipIsExactAndCounted) {
  // Interspersed repeats leave many rectangles untouched between
  // acceptances; in low-memory mode those groups are version-bumped without
  // any sweep, and the tops still match the checkpoint-off run.
  seq::RepeatSpec spec;
  spec.unit_length = 16;
  spec.copies = 5;
  spec.conservation = 0.6;
  spec.indel_rate = 0.02;
  spec.tandem = false;
  const auto g =
      seq::make_repeat_sequence(seq::Alphabet::protein(), 240, spec, 61);
  const seq::Scoring scoring = seq::Scoring::protein_default();
  FinderOptions off;
  off.num_top_alignments = 8;
  off.memory = core::MemoryMode::kRecomputeRows;
  off.checkpoint_mem = 0;
  FinderOptions on = off;
  on.checkpoint_mem = CheckpointCache::kDefaultBudget;
  const auto e1 = align::make_engine(align::EngineKind::kScalar);
  const auto e2 = align::make_engine(align::EngineKind::kScalar);
  const auto a = find_top_alignments(g.sequence, scoring, off, *e1);
  const auto b = find_top_alignments(g.sequence, scoring, on, *e2);
  std::string diff;
  EXPECT_TRUE(core::same_tops(a.tops, b.tops, &diff)) << diff;
  EXPECT_GT(b.stats.skipped_realignments, 0u);
  EXPECT_LT(b.stats.realignments, a.stats.realignments);
}

TEST(CheckpointFinder, ExhaustivePolicyAgreesWithCacheOn) {
  const auto g = seq::synthetic_titin(200, 5);
  FinderOptions best;
  best.num_top_alignments = 6;
  FinderOptions sweep_opt = best;
  sweep_opt.policy = core::RescanPolicy::kExhaustiveSweep;
  const auto e1 = align::make_engine(align::EngineKind::kScalar);
  const auto e2 = align::make_engine(align::EngineKind::kScalar);
  const auto a = find_top_alignments(g.sequence,
                                     seq::Scoring::protein_default(), best, *e1);
  const auto b = find_top_alignments(
      g.sequence, seq::Scoring::protein_default(), sweep_opt, *e2);
  std::string diff;
  EXPECT_TRUE(core::same_tops(a.tops, b.tops, &diff)) << diff;
}

TEST(CheckpointFinder, ParallelWorkersWithCachePartitionsMatchSequential) {
  const auto g = seq::synthetic_titin(260, 17);
  const seq::Scoring scoring = seq::Scoring::protein_default();
  FinderOptions off;
  off.num_top_alignments = 8;
  off.checkpoint_mem = 0;
  const auto seq_engine = align::make_engine(align::EngineKind::kSimd8Generic);
  const auto reference =
      find_top_alignments(g.sequence, scoring, off, *seq_engine);

  parallel::ParallelOptions popt;
  popt.threads = 3;
  popt.finder.num_top_alignments = 8;  // checkpoint cache on by default
  const auto par = parallel::find_top_alignments_parallel(
      g.sequence, scoring, popt,
      align::engine_factory(align::EngineKind::kSimd8Generic));
  std::string diff;
  EXPECT_TRUE(core::same_tops(reference.tops, par.tops, &diff)) << diff;
}

}  // namespace
}  // namespace repro
