// The discrete-event cluster simulator and its oracle (the Fig. 8 substrate).
#include <gtest/gtest.h>

#include "cluster/oracle.hpp"
#include "cluster/virtual_cluster.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "seq/generator.hpp"

namespace repro::cluster {
namespace {

using core::FinderOptions;
using seq::Scoring;

struct Fixture {
  seq::GeneratedSequence g = seq::synthetic_titin(320, 2003);
  Scoring scoring = Scoring::protein_default();
  std::unique_ptr<align::Engine> engine =
      align::make_engine(align::EngineKind::kScalar);
  AlignmentOracle oracle{g.sequence, scoring, *engine};
};

ClusterModel fast_model(int processors) {
  ClusterModel model;
  model.processors = processors;
  model.worker_cells_per_sec = 1e8;
  model.traceback_cells_per_sec = 1e8;
  return model;
}

TEST(Oracle, AcceptanceSequenceMatchesSequentialFinder) {
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 6;
  const auto eng = align::make_engine(align::EngineKind::kScalar);
  const auto reference =
      core::find_top_alignments(f.g.sequence, f.scoring, opt, *eng);

  // Drive the simulator once; its acceptances populate the oracle.
  simulate_cluster(f.oracle, fast_model(4), opt);
  ASSERT_EQ(f.oracle.accepted().size(), reference.tops.size());
  std::string diff;
  EXPECT_TRUE(core::same_tops(f.oracle.accepted(), reference.tops, &diff)) << diff;
}

TEST(Oracle, ReplayVerifiesAndReusesCache) {
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 5;
  simulate_cluster(f.oracle, fast_model(2), opt);
  const auto computed_first = f.oracle.computed_alignments();
  // A second simulation with a different processor count replays the same
  // acceptance sequence; most alignments come from cache.
  simulate_cluster(f.oracle, fast_model(8), opt);
  const auto computed_second = f.oracle.computed_alignments() - computed_first;
  EXPECT_LT(computed_second, computed_first / 4)
      << "cache should absorb almost all replayed alignments";
}

TEST(Oracle, RejectsOutOfOrderVersionQueries) {
  Fixture f;
  f.oracle.begin_run();
  EXPECT_THROW(f.oracle.member_scores(0, 3), std::logic_error);
}

TEST(VirtualCluster, FindsAllRequestedTops) {
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 6;
  const SimResult res = simulate_cluster(f.oracle, fast_model(16), opt);
  EXPECT_EQ(res.tops_found, 6);
  EXPECT_EQ(res.accept_times.size(), 6u);
  for (std::size_t t = 1; t < res.accept_times.size(); ++t)
    EXPECT_GE(res.accept_times[t], res.accept_times[t - 1]);
  EXPECT_GT(res.makespan_sec, 0.0);
  EXPECT_LE(res.worker_busy_fraction, 1.0 + 1e-9);
}

TEST(VirtualCluster, MoreProcessorsNeverSlowerBeyondMasterSacrifice) {
  // P = 2 is *slower* than P = 1: one CPU is sacrificed as the master and
  // communication is charged (the paper's Fig. 8 starts its near-linear
  // climb from that sacrifice). From P = 2 on, more CPUs never hurt.
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 4;
  const double seq = simulate_cluster(f.oracle, fast_model(1), opt).makespan_sec;
  double prev = simulate_cluster(f.oracle, fast_model(2), opt).makespan_sec;
  EXPECT_GT(prev, seq);  // master sacrifice + comm overhead
  for (int p : {4, 8, 32}) {
    const double t = simulate_cluster(f.oracle, fast_model(p), opt).makespan_sec;
    EXPECT_LE(t, prev * 1.02) << p << " processors";
    prev = t;
  }
  EXPECT_LT(prev, seq);  // large P beats sequential comfortably
}

TEST(VirtualCluster, SpeedupBoundedByWorkerCount) {
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 3;
  const double seq = simulate_cluster(f.oracle, fast_model(1), opt).makespan_sec;
  for (int p : {2, 4, 8}) {
    const double t = simulate_cluster(f.oracle, fast_model(p), opt).makespan_sec;
    EXPECT_LE(seq / t, static_cast<double>(p - 1) + 1e-6) << p << " processors";
  }
}

TEST(VirtualCluster, FirstTopScalesBetterThanManyTops) {
  // The paper's central Fig.-8 shape: near-perfect scaling while the first
  // sweep dominates; lower speedup with many tops (little parallelism
  // between acceptances).
  Fixture f;
  FinderOptions one;
  one.num_top_alignments = 1;
  FinderOptions many;
  many.num_top_alignments = 20;
  const double seq1 = simulate_cluster(f.oracle, fast_model(1), one).makespan_sec;
  const double par1 = simulate_cluster(f.oracle, fast_model(32), one).makespan_sec;
  const double seqN = simulate_cluster(f.oracle, fast_model(1), many).makespan_sec;
  const double parN = simulate_cluster(f.oracle, fast_model(32), many).makespan_sec;
  const double speedup1 = seq1 / par1;
  const double speedupN = seqN / parN;
  EXPECT_GT(speedup1, speedupN);
  EXPECT_GT(speedup1, 10.0);  // 31 workers on ~319 tasks: strong scaling
}

TEST(VirtualCluster, SpeculationScalesWithWorkerToTaskRatio) {
  // §5.2 reports up to 8.4 % extra alignments at 128 CPUs on titin (m =
  // 34350, i.e. workers << rectangles). The extra work per acceptance is
  // bounded by the worker count, so on this deliberately small fixture the
  // overhead fraction is larger — assert the bound, not the paper's ratio.
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 8;
  const SimResult seq = simulate_cluster(f.oracle, fast_model(1), opt);
  for (int p : {8, 64}) {
    const SimResult par = simulate_cluster(f.oracle, fast_model(p), opt);
    EXPECT_GE(par.assignments, seq.assignments);
    // Convergence to each acceptance can take a few realignment rounds, and
    // every round lets all idle workers speculate once.
    const auto bound = seq.assignments +
                       2ull * static_cast<std::uint64_t>(p) *
                           static_cast<std::uint64_t>(opt.num_top_alignments);
    EXPECT_LE(par.assignments, bound) << p << " processors";
  }
}

TEST(VirtualCluster, CommunicationCostsCharged) {
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 5;
  ClusterModel slow_net = fast_model(8);
  slow_net.bandwidth_bytes_per_sec = 1e4;  // pathologically slow network
  ClusterModel fast_net = fast_model(8);
  const double t_slow = simulate_cluster(f.oracle, slow_net, opt).makespan_sec;
  const double t_fast = simulate_cluster(f.oracle, fast_net, opt).makespan_sec;
  EXPECT_GT(t_slow, t_fast * 2.0);
  const SimResult res = simulate_cluster(f.oracle, fast_net, opt);
  EXPECT_GT(res.row_replica_bytes, 0u);
}

TEST(VirtualCluster, WorkerFailuresRequeueLostTasksAndStillFinish) {
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 4;
  const SimResult clean = simulate_cluster(f.oracle, fast_model(4), opt);
  ASSERT_EQ(clean.tops_found, 4);
  // Workers 0 and 2 die mid-run; worker 1 (entry 0.0 = never fails)
  // carries the remainder — the live protocol's recovery regime.
  ClusterModel faulty = fast_model(4);
  faulty.worker_failure_times = {clean.makespan_sec * 0.25, 0.0,
                                 clean.makespan_sec * 0.5};
  const SimResult res = simulate_cluster(f.oracle, faulty, opt);
  EXPECT_EQ(res.tops_found, 4);
  EXPECT_EQ(res.workers_lost, 2u);
  EXPECT_GE(res.reassignments, 1u);
  // Losing workers (and repeating their in-flight work) can only slow the
  // virtual run down.
  EXPECT_GT(res.makespan_sec, clean.makespan_sec);
  // Acceptances are driven by the same deterministic guard, so the oracle's
  // accepted sequence is unchanged — the faulty replay verifies against it.
  EXPECT_EQ(f.oracle.accepted().size(), 4u);
}

TEST(VirtualCluster, FailureScheduleKillingAllWorkersIsRejected) {
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 1;
  ClusterModel bad = fast_model(3);
  bad.worker_failure_times = {1e-3, 1e-3};
  EXPECT_THROW(simulate_cluster(f.oracle, bad, opt), std::logic_error);
}

TEST(VirtualCluster, FailureScheduleIgnoredAtOneProcessor) {
  // The lone CPU is the master; the schedule targets workers only.
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 2;
  ClusterModel solo = fast_model(1);
  solo.worker_failure_times = {1e-6};
  const SimResult res = simulate_cluster(f.oracle, solo, opt);
  EXPECT_EQ(res.tops_found, 2);
  EXPECT_EQ(res.workers_lost, 0u);
  EXPECT_EQ(res.reassignments, 0u);
}

TEST(VirtualCluster, DualCpuContentionModel) {
  // §5.2: the non-cache-aware kernel gains only 25 % from the second CPU.
  Fixture f;
  FinderOptions opt;
  opt.num_top_alignments = 2;
  ClusterModel aware = fast_model(9);
  ClusterModel unaware = fast_model(9);
  unaware.second_cpu_efficiency = 0.625;
  const double t_aware = simulate_cluster(f.oracle, aware, opt).makespan_sec;
  const double t_unaware = simulate_cluster(f.oracle, unaware, opt).makespan_sec;
  EXPECT_GT(t_unaware, t_aware * 1.3);
}

}  // namespace
}  // namespace repro::cluster
