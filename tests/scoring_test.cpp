#include <gtest/gtest.h>

#include <sstream>

#include "seq/scoring.hpp"

namespace repro::seq {
namespace {

std::uint8_t P(char c) { return Alphabet::protein().encode(c); }

TEST(Scoring, AllProteinMatricesSymmetric) {
  EXPECT_TRUE(ScoreMatrix::blosum62().symmetric());
  EXPECT_TRUE(ScoreMatrix::blosum50().symmetric());
  EXPECT_TRUE(ScoreMatrix::pam250().symmetric());
}

TEST(Scoring, Blosum62SpotValues) {
  const auto m = ScoreMatrix::blosum62();
  EXPECT_EQ(m.score(P('A'), P('A')), 4);
  EXPECT_EQ(m.score(P('W'), P('W')), 11);
  EXPECT_EQ(m.score(P('C'), P('C')), 9);
  EXPECT_EQ(m.score(P('A'), P('R')), -1);
  EXPECT_EQ(m.score(P('W'), P('G')), -2);
  EXPECT_EQ(m.score(P('I'), P('L')), 2);
  EXPECT_EQ(m.score(P('E'), P('Z')), 4);
  EXPECT_EQ(m.max_score(), 11);
}

TEST(Scoring, Pam250SpotValues) {
  const auto m = ScoreMatrix::pam250();
  EXPECT_EQ(m.score(P('W'), P('W')), 17);
  EXPECT_EQ(m.score(P('A'), P('A')), 2);
  EXPECT_EQ(m.score(P('F'), P('Y')), 7);
  EXPECT_EQ(m.max_score(), 17);
}

TEST(Scoring, Blosum50SpotValues) {
  const auto m = ScoreMatrix::blosum50();
  EXPECT_EQ(m.score(P('W'), P('W')), 15);
  EXPECT_EQ(m.score(P('H'), P('H')), 10);
  EXPECT_EQ(m.score(P('A'), P('A')), 5);
}

TEST(Scoring, DiagonalIsRowMaximumForCoreResidues) {
  // A residue should never score higher against another residue than
  // against itself (holds for the 20 core residues of these matrices).
  for (const auto& m :
       {ScoreMatrix::blosum62(), ScoreMatrix::blosum50(), ScoreMatrix::pam250()}) {
    for (int i = 0; i < m.alphabet().core_size(); ++i) {
      const auto a = static_cast<std::uint8_t>(i);
      for (int j = 0; j < m.alphabet().core_size(); ++j)
        EXPECT_LE(m.score(a, static_cast<std::uint8_t>(j)), m.score(a, a))
            << m.alphabet().decode(a) << " vs "
            << m.alphabet().decode(static_cast<std::uint8_t>(j));
    }
  }
}

TEST(Scoring, DnaMatrix) {
  const auto m = ScoreMatrix::dna(2, -1);
  const auto& a = Alphabet::dna();
  EXPECT_EQ(m.score(a.encode('A'), a.encode('A')), 2);
  EXPECT_EQ(m.score(a.encode('A'), a.encode('C')), -1);
  // N is never a match, not even against itself.
  EXPECT_EQ(m.score(a.encode('N'), a.encode('N')), -1);
  EXPECT_TRUE(m.symmetric());
}

TEST(Scoring, UniformMatrix) {
  const auto m = ScoreMatrix::uniform(Alphabet::protein(), 3, -2);
  EXPECT_EQ(m.score(P('A'), P('A')), 3);
  EXPECT_EQ(m.score(P('A'), P('W')), -2);
}

TEST(Scoring, GapCostAffine) {
  const GapPenalty gap{2, 1};
  EXPECT_EQ(gap.cost(1), 3);  // the paper's example: one gap costs 2 + 1*1
  EXPECT_EQ(gap.cost(4), 6);
}

TEST(Scoring, PaperExampleScoring) {
  const Scoring s = Scoring::paper_example();
  const auto& a = Alphabet::dna();
  EXPECT_EQ(s.matrix.score(a.encode('G'), a.encode('G')), 2);
  EXPECT_EQ(s.matrix.score(a.encode('G'), a.encode('T')), -1);
  EXPECT_EQ(s.gap.open, 2);
  EXPECT_EQ(s.gap.extend, 1);
}

TEST(Scoring, TextRoundTripBlosum62) {
  const auto original = ScoreMatrix::blosum62();
  std::ostringstream out;
  original.write_text(out);
  std::istringstream in(out.str());
  const auto parsed = ScoreMatrix::from_text(in, Alphabet::protein());
  for (int i = 0; i < original.size(); ++i)
    for (int j = 0; j < original.size(); ++j)
      ASSERT_EQ(parsed.score(static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j)),
                original.score(static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j)));
}

TEST(Scoring, FromTextParsesNcbiStyle) {
  std::istringstream in(
      "# comment line\n"
      "\n"
      "   A  C  G  T\n"
      "A  5 -4 -4 -4\n"
      "C -4  5 -4 -4\n"
      "G -4 -4  5 -4\n"
      "T -4 -4 -4  5\n");
  const auto m = ScoreMatrix::from_text(in, Alphabet::dna(), -2);
  const auto& a = Alphabet::dna();
  EXPECT_EQ(m.score(a.encode('A'), a.encode('A')), 5);
  EXPECT_EQ(m.score(a.encode('A'), a.encode('T')), -4);
  // N is not in the file: falls back to `missing`.
  EXPECT_EQ(m.score(a.encode('N'), a.encode('A')), -2);
}

TEST(Scoring, FromTextRejectsMalformedInput) {
  {
    std::istringstream in("# only comments\n");
    EXPECT_THROW(ScoreMatrix::from_text(in, Alphabet::dna()), std::logic_error);
  }
  {
    std::istringstream in("  A C\nA 1\n");  // short row
    EXPECT_THROW(ScoreMatrix::from_text(in, Alphabet::dna()), std::logic_error);
  }
  {
    std::istringstream in("  A C\nA 1 2 3\n");  // long row
    EXPECT_THROW(ScoreMatrix::from_text(in, Alphabet::dna()), std::logic_error);
  }
  {
    std::istringstream in("  A J\nA 1 2\n");  // J not in the DNA alphabet
    EXPECT_THROW(ScoreMatrix::from_text(in, Alphabet::dna()), std::logic_error);
  }
}

TEST(Scoring, ProteinDefaultUsesBlosum62) {
  const Scoring s = Scoring::protein_default();
  EXPECT_EQ(s.matrix.score(P('W'), P('W')), 11);
  EXPECT_GT(s.gap.open, 0);
}

}  // namespace
}  // namespace repro::seq
