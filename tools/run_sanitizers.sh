#!/usr/bin/env bash
# Build and run the full test suite under ASan+UBSan and TSan.
#
# Usage: tools/run_sanitizers.sh [address|thread]...
# With no arguments both sanitizers run. Each uses its own build tree
# (build-asan / build-tsan) so the regular build/ stays untouched.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
jobs=$(nproc 2>/dev/null || echo 4)
sanitizers=("$@")
if [ "${#sanitizers[@]}" -eq 0 ]; then
  sanitizers=(address thread)
fi

status=0
for san in "${sanitizers[@]}"; do
  case "$san" in
    address) dir=build-asan ;;
    thread)  dir=build-tsan ;;
    *) echo "unknown sanitizer '$san' (expected address or thread)" >&2; exit 2 ;;
  esac
  echo "=== $san sanitizer: configure + build ($dir) ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DREPRO_SANITIZE="$san" >/dev/null
  cmake --build "$dir" -j "$jobs"
  echo "=== $san sanitizer: ctest ==="
  if (cd "$dir" && ctest --output-on-failure -j "$jobs"); then
    echo "=== $san sanitizer: PASS ==="
  else
    echo "=== $san sanitizer: FAIL ==="
    status=1
  fi
done
exit "$status"
