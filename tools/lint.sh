#!/usr/bin/env bash
# Static-analysis driver: clang-tidy + clang-format + shellcheck + the
# repo-specific invariant lint (tools/repro_lint.py).
#
# External tools are optional — when one is missing the stage is skipped with
# a notice (the dev container ships only gcc) and repro_lint.py still
# enforces the repo invariants. CI passes --require-all, which turns a
# missing tool into a failure so the full matrix can never silently degrade.
#
# Usage: tools/lint.sh [build-dir] [--require-all]
#   build-dir      compile_commands.json source (default: ./build; configured
#                  on demand when absent)
#   --require-all  fail instead of skip when clang-tidy / clang-format /
#                  shellcheck are not installed
set -euo pipefail

cd "$(dirname "$0")/.."
build=build
require_all=0
for arg in "$@"; do
  case "$arg" in
    --require-all) require_all=1 ;;
    *) build="$arg" ;;
  esac
done

failures=0
note() { printf '== %s\n' "$*"; }
stage_fail() {
  printf 'LINT FAIL: %s\n' "$*" >&2
  failures=$((failures + 1))
}
missing() {
  if [ "$require_all" = 1 ]; then
    stage_fail "$1 not installed (required by --require-all)"
  else
    note "$1 not installed — stage skipped"
  fi
}

cxx_sources() {
  # Lintable C++ translation units (headers ride along via clang-tidy's
  # HeaderFilterRegex).
  find src tools bench tests fuzz -name '*.cpp' | sort
}

# --- clang-tidy -------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$build/compile_commands.json" ]; then
    note "configuring $build to produce compile_commands.json"
    cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  fi
  note "clang-tidy ($(clang-tidy --version | head -1))"
  if ! cxx_sources | xargs clang-tidy -p "$build" --quiet; then
    stage_fail "clang-tidy reported diagnostics"
  fi
else
  missing clang-tidy
fi

# --- clang-format -----------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  note "clang-format --dry-run -Werror"
  if ! { cxx_sources; find src -name '*.hpp'; } | \
       xargs clang-format --dry-run -Werror; then
    stage_fail "clang-format found unformatted files"
  fi
else
  missing clang-format
fi

# --- shellcheck -------------------------------------------------------------
if command -v shellcheck >/dev/null 2>&1; then
  note "shellcheck"
  if ! find tools bench -name '*.sh' -print0 | xargs -0 shellcheck; then
    stage_fail "shellcheck reported issues"
  fi
else
  missing shellcheck
fi

# --- repro invariants (always on) -------------------------------------------
note "repro_lint.py (repo invariants)"
if ! python3 tools/repro_lint.py; then
  stage_fail "repro_lint.py reported violations"
fi

if [ "$failures" -gt 0 ]; then
  printf 'lint: %d stage(s) failed\n' "$failures" >&2
  exit 1
fi
note "lint: all enabled stages clean"
