#!/usr/bin/env python3
"""Repo-specific invariant lint (always runs; no clang-tidy required).

Rules
-----
no-kernel-locks       DP kernel translation units must contain no mutex /
                      lock / RMW-atomic / non-relaxed memory-order tokens:
                      the REPRO_OBS=OFF build guarantees zero synchronisation
                      in the cell loops, and relaxed override-bit loads are
                      the only sanctioned atomic access.
engine-test-coverage  every EngineKind enumerator must be exercised by
                      tests/core_equivalence_test.cpp, and every enumerator
                      except kGeneralGap (no checkpoint support) by
                      tests/checkpoint_test.cpp.
no-raw-new-delete     no raw new / delete expressions in src/ (containers,
                      unique_ptr and the aligned allocator cover every need);
                      `= delete` declarations are fine.
metrics-naming        string literals fed to counter()/timer()/set_gauge()
                      (and the finder key() helpers) must match the
                      repro-metrics-v1 grammar
                      [a-z][a-z0-9_]*(\\.[a-z][a-z0-9_]*)* — a trailing '.'
                      marks a prefix literal completed at runtime.
metrics-registry      metric literals under the cluster./vcluster./align.
                      namespaces must appear in CLUSTER_METRIC_NAMES /
                      ALIGN_METRIC_NAMES: the grammar accepts any
                      well-formed name, so a typo'd counter would silently
                      fork a new time series. Add new names to the registry
                      alongside the code.
nolint-reason         every NOLINT must name its check and give a reason:
                      // NOLINT(<check>): <reason>
shell-hygiene         shell scripts start with a bash shebang and set
                      -euo pipefail (fallback when shellcheck is absent).
format-fallback       no trailing whitespace, tabs, CR line endings or
                      missing final newline in C++/Python/CMake sources
                      (fallback when clang-format is absent).

Escape hatch: append `REPRO_LINT_ALLOW(<rule>): <reason>` in a comment on
the offending line.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

KERNEL_FILES = [
    "src/align/scalar_engine.cpp",
    "src/align/striped_engine.cpp",
    "src/align/general_gap_engine.cpp",
    "src/align/simd_kernel.hpp",
    "src/align/simd_engine.cpp",
    "src/align/simd_engine_sse41.cpp",
    "src/align/simd_engine_avx2.cpp",
    "src/align/simd_engine_impl.hpp",
    "src/align/query_profile.hpp",
    "src/align/engine_detail.hpp",
]

LOCK_TOKENS = re.compile(
    r"\b(std::mutex|std::shared_mutex|std::lock_guard|std::unique_lock|"
    r"std::scoped_lock|std::condition_variable|fetch_add|fetch_sub|"
    r"fetch_or|fetch_and|fetch_xor|compare_exchange_\w+|"
    r"memory_order_(acquire|release|acq_rel|seq_cst|consume))\b"
)

METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*\.?$")

# Known-names registry for the cluster namespaces (metrics-registry rule).
# Runtime-suffixed per-rank variants (cluster.messages.rank3, ...) share
# their base literal; a bare "cluster." / "vcluster." literal is a prefix
# completed at runtime and is exempt.
CLUSTER_METRIC_NAMES = {
    "cluster.messages",
    "cluster.payload_words",
    "cluster.row_replicas_served",
    "cluster.row_deposits",
    "cluster.ranks",
    "cluster.faults_injected",
    "cluster.retries",
    "cluster.reassignments",
    "cluster.heartbeat_misses",
    "cluster.stale_results",
    "cluster.row_rebuilds",
    "cluster.sync_requests",
    "cluster.workers_lost",
    "vcluster.runs",
    "vcluster.assignments",
    "vcluster.row_replica_bytes",
    "vcluster.comm_messages_modelled",
    "vcluster.comm_seconds_modelled",
    "vcluster.reassignments",
    "vcluster.workers_lost",
    "vcluster.worker_busy_fraction",
    "vcluster.makespan_sec",
}

# Known-names registry for the align. namespace (kernel + adaptive-precision
# counters emitted by the engines themselves).
ALIGN_METRIC_NAMES = {
    "align.lane_cells",
    "align.group_alignments",
    "align.lane_cells_skipped",
    "align.precision.i8_sweeps",
    "align.precision.i16_sweeps",
    "align.precision.escalations",
    "align.precision.profile_hits",
    "align.precision.profile_builds",
}
REGISTERED_METRIC_NAMES = CLUSTER_METRIC_NAMES | ALIGN_METRIC_NAMES
METRIC_CALL = re.compile(r"\b(?:counter|timer|set_gauge)\(\s*\"([^\"]*)\"")
METRIC_KEY_CALL = re.compile(r"\bkey\(\s*\"([^\"]*)\"")

NOLINT_OK = re.compile(r"NOLINT(?:NEXTLINE)?\([\w.,\- ]+\):\s*\S")
NOLINT_ANY = re.compile(r"NOLINT")

CXX_GLOBS = ["src/**/*.cpp", "src/**/*.hpp", "tools/**/*.cpp", "bench/**/*.cpp",
             "bench/**/*.hpp", "tests/**/*.cpp", "fuzz/**/*.cpp"]
FORMAT_GLOBS = CXX_GLOBS + ["tools/**/*.py", "tools/**/*.sh", "**/CMakeLists.txt",
                            "cmake/**/*.cmake"]

errors: list[str] = []


def fail(path: Path, line_no: int, rule: str, msg: str) -> None:
    rel = path.relative_to(ROOT)
    errors.append(f"{rel}:{line_no}: [{rule}] {msg}")


def allowed(raw_line: str, rule: str) -> bool:
    m = re.search(r"REPRO_LINT_ALLOW\(([\w-]+)\):\s*\S", raw_line)
    return bool(m) and m.group(1) == rule


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line breaks
    so reported line numbers stay valid."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


def glob_files(patterns: list[str]) -> list[Path]:
    seen: dict[Path, None] = {}
    for pattern in patterns:
        for p in sorted(ROOT.glob(pattern)):
            if p.is_file() and "build" not in p.parts and "_deps" not in p.parts:
                seen[p] = None
    return list(seen)


def check_kernel_locks() -> None:
    for rel in KERNEL_FILES:
        path = ROOT / rel
        if not path.exists():
            continue
        raw = path.read_text().splitlines()
        code = strip_comments_and_strings(path.read_text()).splitlines()
        for no, (raw_line, code_line) in enumerate(zip(raw, code), start=1):
            m = LOCK_TOKENS.search(code_line)
            if m and not allowed(raw_line, "no-kernel-locks"):
                fail(path, no, "no-kernel-locks",
                     f"synchronisation token '{m.group(0)}' in a DP kernel "
                     "file (REPRO_OBS=OFF builds promise lock-free cell "
                     "loops; only relaxed loads are sanctioned)")


def check_engine_coverage() -> None:
    engine_hpp = (ROOT / "src/align/engine.hpp").read_text()
    enum_body = re.search(r"enum class EngineKind \{(.*?)\};", engine_hpp,
                          re.DOTALL)
    if not enum_body:
        fail(ROOT / "src/align/engine.hpp", 1, "engine-test-coverage",
             "could not parse enum class EngineKind")
        return
    kinds = re.findall(r"\b(k[A-Z]\w*)\b",
                       strip_comments_and_strings(enum_body.group(1)))
    if not kinds:
        fail(ROOT / "src/align/engine.hpp", 1, "engine-test-coverage",
             "EngineKind enum parsed empty")
        return
    suites = {
        "tests/core_equivalence_test.cpp": set(kinds),
        # kGeneralGap is the one engine without checkpoint support.
        "tests/checkpoint_test.cpp": set(kinds) - {"kGeneralGap"},
    }
    for rel, required in suites.items():
        path = ROOT / rel
        text = path.read_text()
        for kind in sorted(required):
            if not re.search(rf"\b{kind}\b", text):
                fail(path, 1, "engine-test-coverage",
                     f"EngineKind::{kind} is registered in engine.hpp but "
                     f"never exercised by {rel}")


def check_raw_new_delete() -> None:
    new_expr = re.compile(r"\bnew\b(?!\s*\()")  # `new (place)` also caught below
    delete_expr = re.compile(r"\bdelete\b")
    for path in glob_files(["src/**/*.cpp", "src/**/*.hpp"]):
        raw = path.read_text().splitlines()
        code = strip_comments_and_strings(path.read_text()).splitlines()
        for no, (raw_line, code_line) in enumerate(zip(raw, code), start=1):
            if allowed(raw_line, "no-raw-new-delete"):
                continue
            if re.search(r"=\s*delete", code_line):
                code_line = re.sub(r"=\s*delete", "", code_line)
            if re.search(r"#\s*include", code_line):
                continue
            if new_expr.search(code_line) or re.search(r"\bnew\s*\(", code_line):
                fail(path, no, "no-raw-new-delete",
                     "raw new expression (use containers / make_unique / "
                     "util::AlignedBuffer)")
            elif delete_expr.search(code_line):
                fail(path, no, "no-raw-new-delete", "raw delete expression")


def check_metrics_naming() -> None:
    for path in glob_files(["src/**/*.cpp", "src/**/*.hpp"]):
        text = path.read_text()
        lines = text.splitlines()
        for no, line in enumerate(lines, start=1):
            names = METRIC_CALL.findall(line)
            # key("...") helpers build metric names only in the finder layers.
            if "core/" in str(path) or "parallel/" in str(path):
                names += METRIC_KEY_CALL.findall(line)
            for name in names:
                if allowed(line, "metrics-naming"):
                    continue
                if not METRIC_NAME.match(name):
                    fail(path, no, "metrics-naming",
                         f'metric name "{name}" violates repro-metrics-v1 '
                         "([a-z][a-z0-9_]* dot-separated segments)")
                elif (re.match(r"^(v?cluster|align)\.", name)
                      and not name.endswith(".")
                      and name not in REGISTERED_METRIC_NAMES
                      and not allowed(line, "metrics-registry")):
                    fail(path, no, "metrics-registry",
                         f'metric name "{name}" is not in the '
                         "CLUSTER_METRIC_NAMES / ALIGN_METRIC_NAMES registry "
                         "(tools/repro_lint.py) — add it there or fix the typo")


def check_nolint_reasons() -> None:
    for path in glob_files(CXX_GLOBS):
        for no, line in enumerate(path.read_text().splitlines(), start=1):
            if NOLINT_ANY.search(line) and not NOLINT_OK.search(line):
                fail(path, no, "nolint-reason",
                     "NOLINT without '(<check>): <reason>' — name the check "
                     "and justify the suppression")


def check_shell_hygiene() -> None:
    for path in glob_files(["tools/**/*.sh", "bench/**/*.sh"]):
        lines = path.read_text().splitlines()
        if not lines or not re.match(r"#!/(usr/bin/env bash|bin/bash)", lines[0]):
            fail(path, 1, "shell-hygiene", "missing bash shebang")
        if not any("set -euo pipefail" in l for l in lines[:20]):
            fail(path, 1, "shell-hygiene",
                 "missing 'set -euo pipefail' in the first 20 lines")


def check_format_fallback() -> None:
    for path in glob_files(FORMAT_GLOBS):
        data = path.read_text()
        if data and not data.endswith("\n"):
            fail(path, data.count("\n") + 1, "format-fallback",
                 "missing final newline")
        for no, line in enumerate(data.splitlines(), start=1):
            if line.endswith("\r"):
                fail(path, no, "format-fallback", "CR line ending")
                break
            if re.search(r"[ \t]+$", line):
                fail(path, no, "format-fallback", "trailing whitespace")
            if "\t" in line and path.suffix in {".cpp", ".hpp", ".py"}:
                fail(path, no, "format-fallback", "tab character")


def main() -> int:
    check_kernel_locks()
    check_engine_coverage()
    check_raw_new_delete()
    check_metrics_naming()
    check_nolint_reasons()
    check_shell_hygiene()
    check_format_fallback()
    if errors:
        for e in errors:
            print(e)
        print(f"repro_lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("repro_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
