// reprofind — the command-line front end of reprolib (the analog of the
// original REPRO server: feed it a sequence, get repeats back).
//
//   reprofind find --fasta proteins.fa --tops 25 [--format json]
//   reprofind find --fasta reads.fa --alphabet dna --repeats
//   reprofind find --fasta proteins.fa --ranks 4 --fault-seed 7
//   reprofind generate --kind titin --length 3000 --out titin.fa
//   reprofind info
//
// `find` computes nonoverlapping top alignments (optionally in parallel) and
// delineates repeat regions; output formats: text (default), json, csv.
#include <fstream>
#include <iostream>

#include "align/engine.hpp"
#include "cluster/master_worker.hpp"
#include "core/consensus.hpp"
#include "core/delineate.hpp"
#include "core/top_alignment_finder.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "parallel/parallel_finder.hpp"
#include "seq/fasta.hpp"
#include "seq/generator.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace repro;

align::EngineKind engine_kind_from(const std::string& name) {
  if (name == "scalar") return align::EngineKind::kScalar;
  if (name == "striped") return align::EngineKind::kScalarStriped;
  if (name == "simd4") return align::EngineKind::kSimd4;
  if (name == "simd8") return align::EngineKind::kSimd8;
  if (name == "simd16") return align::EngineKind::kSimd16;
  if (name == "simd4x32") return align::EngineKind::kSimd4x32;
  if (name == "simd8x32") return align::EngineKind::kSimd8x32;
  if (name == "simd16x8") return align::EngineKind::kSimd16x8;
  if (name == "simd32x8") return align::EngineKind::kSimd32x8;
  if (name == "auto") return align::EngineKind::kSimdAuto;
  if (name == "auto-generic") return align::EngineKind::kSimdAutoGeneric;
  REPRO_CHECK_MSG(false, "unknown engine '" << name
                                            << "' (scalar|striped|simd4|simd8|"
                                               "simd16|simd4x32|simd8x32|"
                                               "simd16x8|simd32x8|auto|"
                                               "auto-generic)");
  return align::EngineKind::kScalar;
}

/// Widest available engine of the requested element precision.
align::EngineKind engine_kind_for_precision(const std::string& precision) {
  if (precision == "auto") return align::EngineKind::kSimdAuto;
  if (precision == "i8") {
    if (align::avx2_available()) return align::EngineKind::kSimd32x8;
#if REPRO_HAVE_SSE2
    return align::EngineKind::kSimd16x8;
#else
    return align::EngineKind::kSimd8x8Generic;
#endif
  }
  if (precision == "i16") {
    if (align::avx2_available()) return align::EngineKind::kSimd16;
#if REPRO_HAVE_SSE2
    return align::EngineKind::kSimd8;
#else
    return align::EngineKind::kSimd8Generic;
#endif
  }
  if (precision == "i32") {
    if (align::avx2_available()) return align::EngineKind::kSimd8x32;
    if (align::sse41_available()) return align::EngineKind::kSimd4x32;
    return align::EngineKind::kScalar;
  }
  REPRO_CHECK_MSG(false, "unknown precision '" << precision
                                               << "' (auto|i8|i16|i32)");
  return align::EngineKind::kSimdAuto;
}

seq::Scoring scoring_for(const seq::Alphabet& alphabet,
                         const std::string& matrix, int open, int extend) {
  seq::GapPenalty gap{open, extend};
  if (&alphabet == &seq::Alphabet::dna()) {
    REPRO_CHECK_MSG(matrix.empty() || matrix == "dna",
                    "DNA sequences use the built-in dna matrix");
    return {seq::ScoreMatrix::dna(2, -3), gap};
  }
  if (matrix == "blosum50") return {seq::ScoreMatrix::blosum50(), gap};
  if (matrix == "pam250") return {seq::ScoreMatrix::pam250(), gap};
  REPRO_CHECK_MSG(matrix.empty() || matrix == "blosum62",
                  "unknown matrix '" << matrix
                                     << "' (blosum62|blosum50|pam250)");
  return {seq::ScoreMatrix::blosum62(), gap};
}

void emit_text(const seq::Sequence& s, const core::FinderResult& res,
               const std::vector<core::RepeatRegion>& regions, bool show_alignments) {
  std::cout << ">" << s.name() << " (" << s.length() << " residues): "
            << res.tops.size() << " top alignments in " << res.stats.seconds
            << " s\n";
  util::Table table({"top", "r", "score", "prefix", "suffix", "pairs"});
  for (std::size_t t = 0; t < res.tops.size(); ++t) {
    const auto& top = res.tops[t];
    table.add_row({static_cast<long long>(t + 1), static_cast<long long>(top.r),
                   static_cast<long long>(top.score),
                   std::to_string(top.prefix_begin()) + ".." + std::to_string(top.prefix_end()),
                   std::to_string(top.suffix_begin()) + ".." + std::to_string(top.suffix_end()),
                   static_cast<long long>(top.pairs.size())});
  }
  if (table.rows() > 0) table.print(std::cout);
  if (show_alignments) {
    for (const auto& top : res.tops)
      std::cout << core::summary(top) << '\n' << core::render(top, s);
  }
  for (const auto& region : regions) {
    std::cout << "repeat region [" << region.begin << ", " << region.end
              << ") period " << region.period << " copies ~" << region.copies
              << " support " << region.support << '\n';
    const core::RepeatProfile profile = core::build_profile(s, region);
    if (profile.period > 0 && profile.period <= 120)
      std::cout << "  consensus @" << profile.begin << ": "
                << profile.consensus << "  (mean identity "
                << static_cast<int>(profile.mean_identity * 100 + 0.5)
                << " %)\n";
  }
}

void emit_json(const seq::Sequence& s, const core::FinderResult& res,
               const std::vector<core::RepeatRegion>& regions,
               util::JsonWriter& json) {
  json.begin_object();
  json.kv("name", s.name());
  json.kv("length", s.length());
  json.key("stats");
  json.begin_object();
  json.kv("seconds", res.stats.seconds);
  json.kv("cells", res.stats.cells);
  json.kv("first_alignments", res.stats.first_alignments);
  json.kv("realignments", res.stats.realignments);
  json.end_object();
  json.key("top_alignments");
  json.begin_array();
  for (const auto& top : res.tops) {
    json.begin_object();
    json.kv("r", top.r);
    json.kv("score", static_cast<std::int64_t>(top.score));
    json.kv("prefix_begin", top.prefix_begin());
    json.kv("prefix_end", top.prefix_end());
    json.kv("suffix_begin", top.suffix_begin());
    json.kv("suffix_end", top.suffix_end());
    json.kv("pairs", static_cast<std::int64_t>(top.pairs.size()));
    json.end_object();
  }
  json.end_array();
  json.key("repeat_regions");
  json.begin_array();
  for (const auto& region : regions) {
    json.begin_object();
    json.kv("begin", region.begin);
    json.kv("end", region.end);
    json.kv("period", region.period);
    json.kv("copies", region.copies);
    json.kv("support", region.support);
    const core::RepeatProfile profile = core::build_profile(s, region);
    if (profile.period > 0) {
      json.kv("consensus", profile.consensus);
      json.kv("phase_begin", profile.begin);
      json.kv("mean_identity", profile.mean_identity);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

int cmd_find(int argc, char** argv) {
  util::Args args(argc, argv,
                  {{"fasta", "input FASTA file (required)"},
                   {"alphabet", "protein (default) | dna"},
                   {"matrix", "blosum62 (default) | blosum50 | pam250"},
                   {"gap-open", "gap open penalty (default 10)"},
                   {"gap-extend", "gap extension penalty (default 1)"},
                   {"tops", "top alignments per sequence (default 20)"},
                   {"min-score", "stop below this score (default 1)"},
                   {"engine",
                    "scalar|striped|simd4|simd8|simd16|simd4x32|simd8x32|"
                    "simd16x8|simd32x8|auto|auto-generic|best"},
                   {"precision",
                    "lane element width for the best engine: auto (default; "
                    "u8 with lossless i16 escalation) | i8 | i16 | i32 — "
                    "excludes --engine"},
                   {"threads", "shared-memory workers (default 1 = sequential)"},
                   {"ranks",
                    "simulated cluster ranks incl. master (default 1 = no "
                    "cluster; excludes --threads)"},
                   {"row-storage",
                    "cluster bottom-row placement: replica (default) | "
                    "partitioned"},
                   {"fault-seed",
                    "inject a seeded fault schedule into the cluster run "
                    "(drops/delays/dups/crashes; recovery keeps output "
                    "identical)"},
                   {"fault-plan",
                    "explicit fault schedule, e.g. "
                    "'drop:from=1,to=0,op=3;crash:rank=2,op=40'"},
                   {"low-memory", "recompute bottom rows instead of archiving"},
                   {"checkpoint-mem",
                    "realignment checkpoint cache budget in MiB (default 256; "
                    "0 disables incremental realignment)"},
                   {"linear-traceback", "O(rows+cols)-memory traceback"},
                   {"repeats", "also delineate repeat regions"},
                   {"alignments", "print the gapped alignments (text format)"},
                   {"format", "text (default) | json | csv"},
                   {"metrics-json",
                    "write a repro-metrics-v1 perf record (run counters + "
                    "the obs registry) to this path"}});
  if (args.help_requested()) return 0;
  REPRO_CHECK_MSG(args.has("fasta"), "--fasta is required (see --help)");

  const bool dna = args.get("alphabet", "protein") == "dna";
  const auto& alphabet = dna ? seq::Alphabet::dna() : seq::Alphabet::protein();
  const auto records = seq::read_fasta_file(args.get("fasta", ""), alphabet);
  REPRO_CHECK_MSG(!records.empty(), "no FASTA records found");

  const seq::Scoring scoring =
      scoring_for(alphabet, args.get("matrix", ""),
                  static_cast<int>(args.get_int("gap-open", dna ? 5 : 10)),
                  static_cast<int>(args.get_int("gap-extend", dna ? 2 : 1)));

  core::FinderOptions opt;
  opt.num_top_alignments = static_cast<int>(args.get_int("tops", 20));
  opt.min_score = static_cast<align::Score>(args.get_int("min-score", 1));
  if (args.get_flag("low-memory")) opt.memory = core::MemoryMode::kRecomputeRows;
  const auto ckpt_mib = args.get_int("checkpoint-mem", 256);
  REPRO_CHECK_MSG(ckpt_mib >= 0, "--checkpoint-mem must be >= 0 (MiB)");
  opt.checkpoint_mem = static_cast<std::size_t>(ckpt_mib) << 20;
  if (args.get_flag("linear-traceback"))
    opt.traceback = core::TracebackMode::kLinearSpace;
  const int threads = static_cast<int>(args.get_int("threads", 1));
  const int ranks = static_cast<int>(args.get_int("ranks", 1));
  REPRO_CHECK_MSG(ranks >= 1, "--ranks must be >= 1");
  REPRO_CHECK_MSG(threads == 1 || ranks == 1,
                  "--threads and --ranks are mutually exclusive");
  const std::string row_storage_name = args.get("row-storage", "replica");
  REPRO_CHECK_MSG(
      row_storage_name == "replica" || row_storage_name == "partitioned",
      "--row-storage must be replica or partitioned");
  REPRO_CHECK_MSG(!(args.has("fault-seed") && args.has("fault-plan")),
                  "--fault-seed and --fault-plan are mutually exclusive");
  REPRO_CHECK_MSG(!(args.has("fault-seed") || args.has("fault-plan")) ||
                      ranks > 1,
                  "fault injection needs a cluster run (--ranks > 1)");
  cluster::ClusterOptions copt;
  copt.ranks = ranks;
  copt.row_storage = row_storage_name == "partitioned"
                         ? cluster::RowStorage::kPartitioned
                         : cluster::RowStorage::kMasterReplica;
  if (args.has("fault-seed"))
    copt.fault_plan = cluster::FaultPlan::from_seed(
        static_cast<std::uint64_t>(args.get_int("fault-seed", 0)), ranks);
  if (args.has("fault-plan"))
    copt.fault_plan = cluster::FaultPlan::parse(args.get("fault-plan", ""));
  const std::string engine_name = args.get("engine", "best");
  REPRO_CHECK_MSG(engine_name == "best" || !args.has("precision"),
                  "--precision selects among the best engines of that width; "
                  "it cannot be combined with an explicit --engine");
  // Every run resolves to one concrete kind: an explicit --engine, the
  // widest engine of the requested --precision, or the adaptive default
  // ("best" = auto: u8 lanes with transparent, lossless i16 escalation).
  const align::EngineKind kind =
      engine_name != "best"
          ? engine_kind_from(engine_name)
          : engine_kind_for_precision(args.get("precision", "auto"));
  const bool want_repeats = args.get_flag("repeats");
  const std::string format = args.get("format", "text");
  const std::string metrics_path = args.get("metrics-json", "");

  // An explicitly selected saturating precision (u8 or i16) may be unable to
  // represent this input's scores; fail upfront with the adaptive/32-bit
  // alternatives rather than deep inside a kernel. (Adaptive and i32 kinds
  // pass unconditionally; adaptive i16 escalation still detects actual
  // saturation per sweep.)
  for (const auto& record : records)
    align::check_headroom(kind, record.length(), scoring);

  core::FinderStats total_stats;
  std::uint64_t total_tops = 0;
  cluster::ClusterRunInfo cluster_total;

  util::JsonWriter json;
  if (format == "json") json.begin_array();
  if (format == "csv")
    std::cout << "sequence,top,r,score,prefix_begin,prefix_end,suffix_begin,"
                 "suffix_end,pairs\n";

  for (const auto& record : records) {
    core::FinderResult res;
    if (ranks > 1) {
      copt.finder = opt;
      const auto factory = align::engine_factory(kind);
      cluster::ClusterRunInfo info;
      res = cluster::find_top_alignments_cluster(record, scoring, copt, factory,
                                                 &info);
      cluster_total.messages += info.messages;
      cluster_total.payload_words += info.payload_words;
      cluster_total.row_replicas_served += info.row_replicas_served;
      cluster_total.row_deposits += info.row_deposits;
      cluster_total.faults_injected += info.faults_injected;
      cluster_total.retries += info.retries;
      cluster_total.reassignments += info.reassignments;
      cluster_total.heartbeat_misses += info.heartbeat_misses;
      cluster_total.stale_results += info.stale_results;
      cluster_total.row_rebuilds += info.row_rebuilds;
      cluster_total.sync_requests += info.sync_requests;
      cluster_total.workers_lost += info.workers_lost;
    } else if (threads > 1) {
      parallel::ParallelOptions popt;
      popt.threads = threads;
      popt.finder = opt;
      const auto factory = align::engine_factory(kind);
      res = parallel::find_top_alignments_parallel(record, scoring, popt, factory);
    } else {
      const auto engine = align::make_engine(kind);
      res = core::find_top_alignments(record, scoring, opt, *engine);
    }
    total_stats.first_alignments += res.stats.first_alignments;
    total_stats.realignments += res.stats.realignments;
    total_stats.speculative += res.stats.speculative;
    total_stats.tracebacks += res.stats.tracebacks;
    total_stats.queue_pops += res.stats.queue_pops;
    total_stats.cells += res.stats.cells;
    total_stats.ckpt_hits += res.stats.ckpt_hits;
    total_stats.ckpt_misses += res.stats.ckpt_misses;
    total_stats.ckpt_evictions += res.stats.ckpt_evictions;
    total_stats.rows_skipped += res.stats.rows_skipped;
    total_stats.rows_swept += res.stats.rows_swept;
    total_stats.skipped_realignments += res.stats.skipped_realignments;
    total_stats.i8_sweeps += res.stats.i8_sweeps;
    total_stats.i16_sweeps += res.stats.i16_sweeps;
    total_stats.precision_escalations += res.stats.precision_escalations;
    total_stats.profile_hits += res.stats.profile_hits;
    total_stats.realign_seconds += res.stats.realign_seconds;
    total_stats.seconds += res.stats.seconds;
    total_stats.idle_seconds += res.stats.idle_seconds;
    total_tops += res.tops.size();

    std::vector<core::RepeatRegion> regions;
    if (want_repeats) regions = core::delineate_repeats(record, res.tops);

    if (format == "json") {
      emit_json(record, res, regions, json);
    } else if (format == "csv") {
      for (std::size_t t = 0; t < res.tops.size(); ++t) {
        const auto& top = res.tops[t];
        std::cout << '"' << record.name() << "\"," << t + 1 << ',' << top.r
                  << ',' << top.score << ',' << top.prefix_begin() << ','
                  << top.prefix_end() << ',' << top.suffix_begin() << ','
                  << top.suffix_end() << ',' << top.pairs.size() << '\n';
      }
    } else {
      emit_text(record, res, regions, args.get_flag("alignments"));
    }
  }
  if (format == "json") {
    json.end_array();
    std::cout << json.str() << '\n';
  }

  if (!metrics_path.empty()) {
    obs::MetricsReport report("reprofind.find");
    report.param("fasta", args.get("fasta", ""));
    report.param("engine", engine_name);
    report.param("precision", args.get("precision", "auto"));
    report.param("threads", threads);
    if (ranks > 1) {
      report.param("ranks", ranks);
      report.param("row_storage", row_storage_name);
      if (!copt.fault_plan.empty())
        report.param("fault_plan", copt.fault_plan.to_string());
      report.counter("cluster_messages", cluster_total.messages);
      report.counter("cluster_payload_words", cluster_total.payload_words);
      report.counter("cluster_row_replicas_served",
                     cluster_total.row_replicas_served);
      report.counter("cluster_row_deposits", cluster_total.row_deposits);
      report.counter("cluster_faults_injected", cluster_total.faults_injected);
      report.counter("cluster_retries", cluster_total.retries);
      report.counter("cluster_reassignments", cluster_total.reassignments);
      report.counter("cluster_heartbeat_misses",
                     cluster_total.heartbeat_misses);
      report.counter("cluster_stale_results", cluster_total.stale_results);
      report.counter("cluster_row_rebuilds", cluster_total.row_rebuilds);
      report.counter("cluster_sync_requests", cluster_total.sync_requests);
      report.counter("cluster_workers_lost", cluster_total.workers_lost);
    }
    report.param("tops_requested", opt.num_top_alignments);
    report.param("sequences", static_cast<std::int64_t>(records.size()));
    report.metric("seconds", total_stats.seconds);
    if (total_stats.seconds > 0.0)
      report.metric("cells_per_sec", static_cast<double>(total_stats.cells) /
                                         total_stats.seconds);
    report.counter("cells", total_stats.cells);
    report.counter("first_alignments", total_stats.first_alignments);
    report.counter("realignments", total_stats.realignments);
    report.counter("speculative", total_stats.speculative);
    report.counter("tracebacks", total_stats.tracebacks);
    report.counter("queue_pops", total_stats.queue_pops);
    report.counter("tops_found", total_tops);
    report.counter("ckpt_hits", total_stats.ckpt_hits);
    report.counter("ckpt_misses", total_stats.ckpt_misses);
    report.counter("ckpt_evictions", total_stats.ckpt_evictions);
    report.counter("ckpt_rows_skipped", total_stats.rows_skipped);
    report.counter("ckpt_rows_swept", total_stats.rows_swept);
    report.counter("skipped_realignments", total_stats.skipped_realignments);
    report.counter("i8_sweeps", total_stats.i8_sweeps);
    report.counter("i16_sweeps", total_stats.i16_sweeps);
    report.counter("precision_escalations", total_stats.precision_escalations);
    report.counter("profile_hits", total_stats.profile_hits);
    report.metric("realign_seconds", total_stats.realign_seconds);
    if (total_stats.rows_swept > 0)
      report.metric("ckpt_rows_skipped_pct",
                    100.0 * static_cast<double>(total_stats.rows_skipped) /
                        static_cast<double>(total_stats.rows_swept));
    report.include_registry(obs::Registry::global());
    report.write_file(metrics_path);
  }
  return 0;
}

int cmd_generate(int argc, char** argv) {
  util::Args args(argc, argv,
                  {{"kind", "titin (default) | dna"},
                   {"length", "sequence length (default 2000)"},
                   {"unit", "repeat unit length (dna kind; default 18)"},
                   {"copies", "repeat copies (dna kind; default 10)"},
                   {"seed", "generator seed (default 2003)"},
                   {"out", "output FASTA path (default: stdout)"}});
  if (args.help_requested()) return 0;
  const int length = static_cast<int>(args.get_int("length", 2000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2003));
  seq::GeneratedSequence g =
      args.get("kind", "titin") == "dna"
          ? seq::synthetic_dna_tandem(length,
                                      static_cast<int>(args.get_int("unit", 18)),
                                      static_cast<int>(args.get_int("copies", 10)),
                                      seed)
          : seq::synthetic_titin(length, seed);
  const std::vector<seq::Sequence> records{std::move(g.sequence)};
  if (args.has("out")) {
    seq::write_fasta_file(args.get("out", ""), records);
    std::cout << "wrote " << records[0].name() << " (" << length << ") to "
              << args.get("out", "") << '\n';
  } else {
    seq::write_fasta(std::cout, records);
  }
  return 0;
}

int cmd_info() {
  std::cout << "reprolib engines available on this host:\n";
  const std::vector<std::pair<std::string, bool>> engines{
      {"scalar (32-bit reference)", true},
      {"scalar-striped", true},
      {"general-gap (old-algorithm kernel)", true},
#if REPRO_HAVE_SSE2
      {"simd4-sse2 / simd8-sse2 (i16)", true},
#else
      {"simd4-sse2 / simd8-sse2 (i16)", false},
#endif
      {"simd4x32-sse41 (i32)", align::sse41_available()},
      {"simd16-avx2 (i16)", align::avx2_available()},
      {"simd8x32-avx2 (i32)", align::avx2_available()},
#if REPRO_HAVE_SSE2
      {"simd16x8-sse2 (u8, biased saturating)", true},
#else
      {"simd16x8-sse2 (u8, biased saturating)", false},
#endif
      {"simd32x8-avx2 (u8, biased saturating)", align::avx2_available()},
      {"auto (adaptive u8 -> i16, widest ISA)", true},
  };
  for (const auto& [name, ok] : engines)
    std::cout << "  [" << (ok ? 'x' : ' ') << "] " << name << '\n';
  std::cout << "default engine: " << align::make_best_engine()->name() << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  try {
    if (cmd == "find") return cmd_find(argc - 1, argv + 1);
    if (cmd == "generate") return cmd_generate(argc - 1, argv + 1);
    if (cmd == "info") return cmd_info();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "usage: reprofind <find|generate|info> [options]\n"
               "  reprofind find --fasta seqs.fa --tops 25 --repeats\n"
               "  reprofind generate --kind titin --length 3000 --out t.fa\n"
               "  reprofind info\n";
  return cmd.empty() ? 1 : (std::cerr << "unknown command: " << cmd << '\n', 1);
}
