#!/usr/bin/env bash
# Perf smoke test (ctest label: perf-smoke).
#
# Runs bench_scheduler --json and bench_kernels --benchmark_format=json on a
# reduced workload, then compares the scheduler perf record against the
# checked-in baseline BENCH_scheduler.json. Fails when any tracked
# bigger-is-better metric regresses by more than 2x (generous on purpose:
# the smoke must survive noisy shared machines while still catching
# order-of-magnitude regressions such as a dead checkpoint cache).
#
# Usage: tools/bench_smoke.sh [build-dir] [--update]
#   build-dir  defaults to ./build
#   --update   rewrite BENCH_scheduler.json from this machine's run
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
build=build
update=0
for arg in "$@"; do
  case "$arg" in
    --update) update=1 ;;
    *) build="$arg" ;;
  esac
done

baseline=BENCH_scheduler.json
out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

# Kernel microbenches: google-benchmark's native JSON (see the parity note
# in bench/bench_common.hpp). A filter keeps the smoke fast; the output is
# validated structurally, not against a baseline (raw ns vary per host).
"$build/bench/bench_kernels" \
  --benchmark_filter='BM_Scalar/1000|BM_ScalarResume/2000' \
  --benchmark_min_time=0.05 \
  --benchmark_format=json >"$out_dir/kernels.json" 2>/dev/null

# Adaptive-precision ablation (bench_kernels --json carve-out): validated
# structurally — tops must match the scalar oracle for every combo and the
# saturating workload must escalate. Rates are reported, never gated (raw
# cells/s vary per host).
"$build/bench/bench_kernels" --m 600 --tops 4 \
  --json "$out_dir/precision.json" >/dev/null
python3 - "$out_dir/precision.json" <<'PY'
import json, sys
rec = json.load(open(sys.argv[1]))
assert rec.get("schema") == "repro-metrics-v1", "bad precision record"
m, c = rec["metrics"], rec["counters"]
assert m.get("same_tops") == 1.0, f"precision same_tops failed: {m}"
assert c.get("escalations", 0) > 0, "saturating workload never escalated"
assert m.get("i8_vs_i16_speedup_best", 0) > 0, "missing u8-vs-i16 speedup"
print(f"ok precision ablation: speedup_best "
      f"{m['i8_vs_i16_speedup_best']:.2f}x, "
      f"{c['escalations']} escalations, same_tops 1")
PY

# Up to three attempts: absolute rates (cells_per_sec) dip under transient
# machine load, and a real regression fails all three identically.
attempts=3
if [ "$update" = 1 ]; then
  attempts=1
fi
for attempt in $(seq 1 "$attempts"); do
  # Reduced-but-representative workload; must match the baseline's params.
  "$build/bench/bench_scheduler" --m 800 --tops 15 --seeds 1,2 \
    --json "$out_dir/scheduler.json" >/dev/null
  if python3 - "$out_dir/scheduler.json" "$out_dir/kernels.json" "$baseline" \
    "$update" <<'PY'
import json, sys

sched_path, kern_path, baseline_path, update = sys.argv[1:5]
sched = json.load(open(sched_path))
kern = json.load(open(kern_path))

assert sched.get("schema") == "repro-metrics-v1", "bad scheduler record"
benches = kern.get("benchmarks", [])
assert benches, "bench_kernels JSON has no benchmarks"
resume = [b for b in benches if "Resume" in b.get("name", "")]
assert resume, "bench_kernels JSON lacks the checkpoint-resume benches"
assert all("cells/s" in b for b in resume), "resume benches lack counters"

if update == "1":
    json.dump(sched, open(baseline_path, "w"), indent=2)
    print(f"wrote baseline {baseline_path}")
    sys.exit(0)

base = json.load(open(baseline_path))
if base.get("params") != sched.get("params"):
    sys.exit(f"params changed: baseline {base.get('params')} vs "
             f"run {sched.get('params')} -- rerun with --update")

# Bigger-is-better metrics; fail on >2x regression vs the baseline.
TRACKED = ["cells_per_sec", "realignments_avoided_pct",
           "ckpt_realign_speedup", "ckpt_rows_skipped_pct"]
failures = []
for key in TRACKED:
    ref = base["metrics"].get(key)
    cur = sched["metrics"].get(key)
    if ref is None or cur is None:
        failures.append(f"{key}: missing (baseline={ref}, current={cur})")
    elif cur < ref / 2.0:
        failures.append(f"{key}: {cur:.3g} vs baseline {ref:.3g} (>2x worse)")
    else:
        print(f"ok {key}: {cur:.3g} (baseline {ref:.3g})")
if failures:
    sys.exit("perf smoke FAILED:\n  " + "\n  ".join(failures))
print("perf smoke PASSED")
PY
  then
    exit 0
  fi
  if [ "$attempt" -lt "$attempts" ]; then
    echo "attempt $attempt failed; retrying"
  fi
done
echo "perf smoke failed on all $attempts attempts" >&2
exit 1
