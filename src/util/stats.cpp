#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace repro::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }
  return s;
}

double percentile(std::vector<double> xs, double p) {
  REPRO_CHECK(!xs.empty());
  REPRO_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  REPRO_CHECK(xs.size() == ys.size());
  REPRO_CHECK(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LinearFit f;
  const double denom = n * sxx - sx * sx;
  REPRO_CHECK_MSG(denom != 0.0, "degenerate x values in linear fit");
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (f.intercept + f.slope * xs[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

LinearFit fit_loglog(std::span<const double> ns, std::span<const double> ts) {
  REPRO_CHECK(ns.size() == ts.size());
  std::vector<double> lx(ns.size()), ly(ts.size());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    REPRO_CHECK_MSG(ns[i] > 0.0 && ts[i] > 0.0, "log-log fit needs positive data");
    lx[i] = std::log(ns[i]);
    ly[i] = std::log(ts[i]);
  }
  return fit_linear(lx, ly);
}

double geometric_mean(std::span<const double> xs) {
  REPRO_CHECK(!xs.empty());
  double acc = 0.0;
  for (double x : xs) {
    REPRO_CHECK_MSG(x > 0.0, "geometric mean needs positive data");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace repro::util
