#include "util/args.hpp"

#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace repro::util {

Args::Args(int argc, char** argv, std::map<std::string, std::string> spec)
    : spec_(std::move(spec)) {
  spec_.emplace("help", "print this help text");
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    REPRO_CHECK_MSG(arg.rfind("--", 0) == 0, "unexpected argument: " << arg);
    arg = arg.substr(2);
    std::string key = arg;
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    REPRO_CHECK_MSG(spec_.contains(key), "unknown option --" << key);
    if (!has_value && i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
      has_value = true;
    }
    values_[key] = has_value ? value : "true";
  }
  if (values_.contains("help")) {
    help_ = true;
    std::cout << usage(argv[0] != nullptr ? argv[0] : "program");
  }
}

bool Args::has(const std::string& key) const { return values_.contains(key); }

std::string Args::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double Args::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Args::get_flag(const std::string& key) const {
  auto it = values_.find(key);
  return it != values_.end() && it->second != "false" && it->second != "0";
}

std::vector<std::int64_t> Args::get_int_list(
    const std::string& key, std::vector<std::int64_t> fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  REPRO_CHECK_MSG(!out.empty(), "empty list for --" << key);
  return out;
}

std::string Args::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [k, help] : spec_) os << "  --" << k << "  " << help << '\n';
  return os.str();
}

}  // namespace repro::util
