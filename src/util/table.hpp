// Fixed-width table rendering for benchmark output.
//
// Every bench binary prints paper-style tables (the same rows/series the
// paper reports) through this printer so output stays uniform and greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace repro::util {

/// Collects rows of heterogeneous cells and renders an aligned ASCII table.
class Table {
 public:
  using Cell = std::variant<std::string, long long, double>;

  explicit Table(std::vector<std::string> headers);

  /// Number of decimal places used to render double cells (default 2).
  void set_precision(int digits);

  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment: strings left, numbers right.
  void print(std::ostream& os) const;

  /// Comma-separated rendering for machine consumption.
  void print_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::string render(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 2;
};

}  // namespace repro::util
