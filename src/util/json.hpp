// Minimal JSON emission for the command-line tool's machine-readable output.
//
// Writer-only (the library never consumes JSON); handles escaping, nesting
// and comma placement. Values are written through overloads; structure via
// RAII-free begin/end calls validated with a small stack.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace repro::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes the key of the next value; only valid inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Finished document; throws if containers are still open.
  [[nodiscard]] std::string str() const;

  static std::string escape(std::string_view s);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void comma_if_needed();

  std::ostringstream out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;   // per frame: no element written yet
  bool pending_key_ = false;  // a key was written, a value must follow
};

}  // namespace repro::util
