// Minimal command-line argument parser shared by benches and examples.
//
// Supported forms: --key=value, --key value, and boolean --flag.
// Unknown arguments are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace repro::util {

class Args {
 public:
  /// `spec` documents recognised options: name -> help text. Names are given
  /// without the leading dashes. Every option not in the spec is rejected.
  Args(int argc, char** argv, std::map<std::string, std::string> spec);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;

  /// Parses "a,b,c" into integers; returns fallback when the key is absent.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& key, std::vector<std::int64_t> fallback) const;

  /// True when --help was passed; usage() has already been printed.
  [[nodiscard]] bool help_requested() const { return help_; }

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

}  // namespace repro::util
