#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace repro::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  REPRO_CHECK(!headers_.empty());
}

void Table::set_precision(int digits) {
  REPRO_CHECK(digits >= 0 && digits <= 12);
  precision_ = digits;
}

void Table::add_row(std::vector<Cell> cells) {
  REPRO_CHECK_MSG(cells.size() == headers_.size(),
                  "row has " << cells.size() << " cells, table has "
                             << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string Table::render(const Cell& c) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&c)) {
    os << *s;
  } else if (const auto* i = std::get_if<long long>(&c)) {
    os << *i;
  } else {
    os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render(row[c]));
      width[c] = std::max(width[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  auto print_row = [&](const std::vector<std::string>& cells,
                       const std::vector<Cell>* row) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool left =
          row == nullptr || std::holds_alternative<std::string>((*row)[c]);
      os << (left ? std::left : std::right) << std::setw(static_cast<int>(width[c]))
         << cells[c] << " | ";
    }
    os << '\n';
  };

  print_row(headers_, nullptr);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << " \n";
  for (std::size_t r = 0; r < rendered.size(); ++r) print_row(rendered[r], &rows_[r]);
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << headers_[c] << (c + 1 < headers_.size() ? "," : "\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << render(row[c]) << (c + 1 < row.size() ? "," : "\n");
  }
}

}  // namespace repro::util
