#include "util/json.hpp"

#include <cmath>
#include <iomanip>

#include "util/check.hpp"

namespace repro::util {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (stack_.empty()) return;
  if (pending_key_) return;  // the value belongs to the written key
  if (!first_.back()) out_ << ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  pending_key_ = false;
  out_ << '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  REPRO_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "end_object without matching begin_object");
  REPRO_CHECK_MSG(!pending_key_, "dangling key at end_object");
  out_ << '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  pending_key_ = false;
  out_ << '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  REPRO_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                  "end_array without matching begin_array");
  out_ << ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  REPRO_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "key() outside an object");
  REPRO_CHECK_MSG(!pending_key_, "two keys in a row");
  if (!first_.back()) out_ << ',';
  first_.back() = false;
  out_ << '"' << escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_if_needed();
  pending_key_ = false;
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  pending_key_ = false;
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  pending_key_ = false;
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  pending_key_ = false;
  REPRO_CHECK_MSG(std::isfinite(v), "JSON cannot represent non-finite numbers");
  out_ << std::setprecision(12) << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  pending_key_ = false;
  out_ << (v ? "true" : "false");
  return *this;
}

std::string JsonWriter::str() const {
  REPRO_CHECK_MSG(stack_.empty(), "unterminated JSON containers");
  return out_.str();
}

}  // namespace repro::util
