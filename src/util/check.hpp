// Lightweight runtime checking.
//
// REPRO_CHECK is always on and is used to validate public-API preconditions
// and cross-module invariants; REPRO_DCHECK (check/contracts.hpp, included
// below for compatibility) guards hot inner-loop invariants and is compiled
// in by the `checked` preset or any non-NDEBUG build.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "check/contracts.hpp"

namespace repro::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace repro::util

#define REPRO_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::repro::util::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (0)

#define REPRO_CHECK_MSG(expr, msg)                                            \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream repro_check_os_;                                     \
      repro_check_os_ << msg;                                                 \
      ::repro::util::check_failed(#expr, __FILE__, __LINE__,                  \
                                  repro_check_os_.str());                     \
    }                                                                         \
  } while (0)

