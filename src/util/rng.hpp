// Deterministic, seedable random number generation.
//
// All stochastic inputs in reprolib (synthetic sequences, property-test
// sweeps, failure injection) flow through these generators so that every
// experiment is reproducible from a single printed seed.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace repro::util {

/// SplitMix64 — used to expand a user seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, deterministic.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedc0ffee15600dULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  std::uint64_t below(std::uint64_t bound) {
    REPRO_DCHECK(bound > 0);
    // 128-bit multiply-shift; the rejection loop removes modulo bias.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    REPRO_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace repro::util
