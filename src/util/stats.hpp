// Small statistics toolkit for the benchmark harness: summary statistics,
// least-squares fits, and log–log exponent estimation (used to verify the
// O(n^4) vs O(n^3) growth claims of Table 1 empirically).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace repro::util {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
};

/// Computes summary statistics; an empty input yields a zeroed Summary.
Summary summarize(std::span<const double> xs);

/// p in [0,100]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p);

/// Least-squares fit y = a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits t = c * n^k by regressing log t on log n; returns k (the empirical
/// complexity exponent) in `slope` and log c in `intercept`.
LinearFit fit_loglog(std::span<const double> ns, std::span<const double> ts);

/// Geometric mean; all inputs must be positive.
double geometric_mean(std::span<const double> xs);

}  // namespace repro::util
