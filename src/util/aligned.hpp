// Cache-line / SIMD-register aligned storage.
//
// The interleaved SIMD matrices (Fig. 7 of the paper) require 16-byte
// (SSE2) or 32-byte (AVX2) aligned rows; we align everything to 64 bytes so
// rows never straddle cache lines, which also serves the paper's
// cache-awareness discussion (§4.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace repro::util {

inline constexpr std::size_t kCacheLine = 64;

// The widest vector any engine loads from allocator-backed storage is a
// 32-byte AVX2 register (both the 16 x i16 and 32 x u8 kernels); the i8
// scratch therefore needs 32-byte alignment, not just the 16 bytes the SSE2
// i16 kernels require. Cache-line alignment covers both with room to spare.
static_assert(kCacheLine % 32 == 0,
              "aligned storage must satisfy 32-byte AVX2 vector loads");

/// True when `p` satisfies the alignment of the widest supported vector;
/// kernels assert this on their scratch rows before issuing aligned loads.
inline bool is_vector_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 32 == 0;
}

/// Minimal std::allocator replacement with 64-byte alignment.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): rebinding converting ctor
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(kCacheLine,
                                 ((n * sizeof(T) + kCacheLine - 1) / kCacheLine) *
                                     kCacheLine);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace repro::util
