// Cache-line / SIMD-register aligned storage.
//
// The interleaved SIMD matrices (Fig. 7 of the paper) require 16-byte
// (SSE2) or 32-byte (AVX2) aligned rows; we align everything to 64 bytes so
// rows never straddle cache lines, which also serves the paper's
// cache-awareness discussion (§4.1).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

namespace repro::util {

inline constexpr std::size_t kCacheLine = 64;

/// Minimal std::allocator replacement with 64-byte alignment.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): rebinding converting ctor
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(kCacheLine,
                                 ((n * sizeof(T) + kCacheLine - 1) / kCacheLine) *
                                     kCacheLine);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace repro::util
