// Wall-clock timing helpers used by the benchmark harness.
#pragma once

#include <chrono>

namespace repro::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace repro::util
