#include "cluster/fault.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace repro::cluster {
namespace {

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "dup";
    case FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

[[noreturn]] void bad_spec(std::string_view token, const std::string& why) {
  std::ostringstream os;
  os << "fault plan: bad token '" << token << "': " << why;
  throw std::runtime_error(os.str());
}

/// Parses "key=value" fields after the kind, e.g. "from=1,to=0,op=3".
FaultEvent parse_event(std::string_view token) {
  const auto colon = token.find(':');
  if (colon == std::string_view::npos)
    bad_spec(token, "expected '<kind>:<fields>'");
  const std::string_view kind_str = token.substr(0, colon);
  FaultEvent ev;
  if (kind_str == "drop") {
    ev.kind = FaultKind::kDrop;
  } else if (kind_str == "delay") {
    ev.kind = FaultKind::kDelay;
  } else if (kind_str == "dup") {
    ev.kind = FaultKind::kDuplicate;
  } else if (kind_str == "crash") {
    ev.kind = FaultKind::kCrash;
  } else {
    bad_spec(token, "unknown kind (drop|delay|dup|crash)");
  }

  bool saw_from = false;
  bool saw_to = false;
  bool saw_op = false;
  bool saw_ticks = false;
  std::string_view rest = token.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view field =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const auto eq = field.find('=');
    if (eq == std::string_view::npos) bad_spec(token, "expected key=value");
    const std::string_view key = field.substr(0, eq);
    const std::string value(field.substr(eq + 1));
    std::uint64_t parsed = 0;
    try {
      std::size_t used = 0;
      parsed = std::stoull(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      bad_spec(token, "non-numeric value '" + value + "'");
    }
    if (key == "from" || key == "rank") {
      ev.from = static_cast<int>(parsed);
      saw_from = true;
    } else if (key == "to") {
      ev.to = static_cast<int>(parsed);
      saw_to = true;
    } else if (key == "op") {
      ev.op = parsed;
      saw_op = true;
    } else if (key == "ticks") {
      ev.ticks = parsed;
      saw_ticks = true;
    } else {
      bad_spec(token, "unknown key '" + std::string(key) + "'");
    }
  }
  if (!saw_from || !saw_op)
    bad_spec(token, "missing required from/rank or op field");
  if (ev.kind == FaultKind::kCrash) {
    if (saw_to) bad_spec(token, "crash takes rank=,op= only");
  } else if (!saw_to) {
    bad_spec(token, "missing to= field");
  }
  if (ev.kind == FaultKind::kDelay && !saw_ticks)
    bad_spec(token, "delay requires ticks=");
  if (ev.kind != FaultKind::kDelay && saw_ticks)
    bad_spec(token, "ticks= only applies to delay");
  if (ev.from < 0 || ev.to < 0) bad_spec(token, "negative rank");
  return ev;
}

}  // namespace

bool FaultPlan::schedules_crash() const {
  return std::any_of(events.begin(), events.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kCrash;
  });
}

std::vector<int> FaultPlan::crashed_ranks() const {
  std::set<int> ranks;
  for (const FaultEvent& e : events)
    if (e.kind == FaultKind::kCrash) ranks.insert(e.from);
  return {ranks.begin(), ranks.end()};
}

bool FaultPlan::has_delays() const {
  return std::any_of(events.begin(), events.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kDelay;
  });
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (i > 0) os << ';';
    os << kind_name(e.kind) << ':';
    if (e.kind == FaultKind::kCrash) {
      os << "rank=" << e.from << ",op=" << e.op;
    } else {
      os << "from=" << e.from << ",to=" << e.to << ",op=" << e.op;
      if (e.kind == FaultKind::kDelay) os << ",ticks=" << e.ticks;
    }
  }
  return os.str();
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::string cleaned;
  cleaned.reserve(spec.size());
  for (char c : spec)
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') cleaned.push_back(c);
  std::string_view rest = cleaned;
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    const std::string_view token =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (token.empty()) continue;
    plan.events.push_back(parse_event(token));
  }
  return plan;
}

FaultPlan FaultPlan::from_seed(std::uint64_t seed, int ranks) {
  REPRO_CHECK(ranks >= 2);
  util::Rng rng(seed ^ 0xfa017c0de5eedULL);
  FaultPlan plan;

  // Message faults: for every ordered channel, scatter events over the
  // first ~48 sends. Events past the channel's actual traffic never fire —
  // the probabilities below are per *scheduled op*, so short runs see
  // proportionally fewer injections.
  for (int from = 0; from < ranks; ++from) {
    for (int to = 0; to < ranks; ++to) {
      if (from == to) continue;
      for (std::uint64_t op = 0; op < 48; ++op) {
        const double roll = rng.uniform();
        if (roll < 0.04) {
          plan.events.push_back({FaultKind::kDrop, from, to, op, 0});
        } else if (roll < 0.08) {
          plan.events.push_back({FaultKind::kDuplicate, from, to, op, 0});
        } else if (roll < 0.15) {
          plan.events.push_back(
              {FaultKind::kDelay, from, to, op, 1 + rng.below(96)});
        }
      }
    }
  }

  // Rank crashes: at most workers-1 victims so at least one worker survives
  // (and never the master — the recovery model keeps rank 0 alive, matching
  // the paper's "sacrificed" coordinator).
  const int workers = ranks - 1;
  if (workers >= 2 && rng.chance(0.5)) {
    const int victims =
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(workers - 1)));
    std::vector<int> pool;
    for (int w = 1; w < ranks; ++w) pool.push_back(w);
    for (int v = 0; v < victims; ++v) {
      const auto pick = rng.below(pool.size());
      const int victim = pool[pick];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      plan.events.push_back(
          {FaultKind::kCrash, victim, 0, 1 + rng.below(160), 0});
    }
  }
  return plan;
}

}  // namespace repro::cluster
