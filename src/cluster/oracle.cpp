#include "cluster/oracle.hpp"

#include "align/traceback.hpp"
#include "core/top_alignment_finder.hpp"
#include "util/check.hpp"

namespace repro::cluster {

AlignmentOracle::AlignmentOracle(const seq::Sequence& s,
                                 const seq::Scoring& scoring,
                                 align::Engine& engine)
    : s_(s),
      scoring_(scoring),
      engine_(engine),
      triangle_(s.length()),
      rows_(s.length()),
      layout_(core::make_groups(s.length(), engine.lanes())) {
  out_rows_.resize(static_cast<std::size_t>(engine.lanes()));
}

int AlignmentOracle::lanes() const { return engine_.lanes(); }

void AlignmentOracle::begin_run() {
  triangle_.clear();
  version_ = 0;
}

const std::vector<align::Score>& AlignmentOracle::member_scores(
    int gi, int expected_version) {
  REPRO_CHECK_MSG(expected_version == version_,
                  "oracle asked for version " << expected_version
                                              << " but triangle is at "
                                              << version_);
  const auto key = std::make_pair(gi, version_);
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  const core::GroupTask& g = layout_[static_cast<std::size_t>(gi)];
  const int m = s_.length();
  align::GroupJob job;
  job.seq = s_.codes();
  job.scoring = &scoring_;
  job.overrides = version_ == 0 ? nullptr : &triangle_;
  job.r0 = g.r0;
  job.count = g.count;
  std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(g.count));
  for (int k = 0; k < g.count; ++k) {
    out_rows_[static_cast<std::size_t>(k)].resize(
        static_cast<std::size_t>(m - (g.r0 + k)));
    outs[static_cast<std::size_t>(k)] = out_rows_[static_cast<std::size_t>(k)];
  }
  engine_.align(job, outs);
  ++computed_;

  std::vector<align::Score> scores(static_cast<std::size_t>(g.count));
  for (int k = 0; k < g.count; ++k) {
    const int r = g.r0 + k;
    const auto& row = out_rows_[static_cast<std::size_t>(k)];
    if (version_ == 0) {
      if (!rows_.computed(r)) rows_.store(r, row);
      scores[static_cast<std::size_t>(k)] = align::find_best_end(row).score;
    } else {
      scores[static_cast<std::size_t>(k)] =
          align::find_best_end(row, rows_.row(r)).score;
    }
  }
  return cache_.emplace(key, std::move(scores)).first->second;
}

const core::TopAlignment& AlignmentOracle::accept(int r, align::Score expected) {
  if (static_cast<std::size_t>(version_) < accepted_.size()) {
    // Replay: the acceptance sequence is version-deterministic.
    const core::TopAlignment& top = accepted_[static_cast<std::size_t>(version_)];
    REPRO_CHECK_MSG(top.r == r && top.score == expected,
                    "replayed acceptance diverged at version " << version_);
    for (const auto& [i, j] : top.pairs) triangle_.set(i, j);
    ++version_;
    return top;
  }
  core::TopAlignment top =
      core::accept_alignment(s_, scoring_, triangle_, rows_, r, expected);
  accepted_.push_back(std::move(top));
  ++version_;
  return accepted_.back();
}

}  // namespace repro::cluster
