#include "cluster/virtual_cluster.hpp"

#include <queue>
#include <set>

#include "core/task_queue.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace repro::cluster {
namespace {

using core::GroupTask;
using core::TaskKey;

struct KeyCmp {
  bool operator()(const TaskKey& a, const TaskKey& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.r < b.r;
  }
};

struct Completion {
  double time = 0.0;
  int gi = 0;
  int version = 0;  // triangle version the alignment ran against
  TaskKey bound;
  int worker = 0;
  bool lost = false;  // worker died mid-task; `time` is the detection time

  bool operator>(const Completion& o) const { return time > o.time; }
};

class Simulation {
 public:
  Simulation(AlignmentOracle& oracle, const ClusterModel& model,
             const core::FinderOptions& finder)
      : oracle_(oracle),
        model_(model),
        finder_(finder),
        m_(oracle.sequence().length()),
        lanes_(oracle.lanes()),
        workers_(model.processors <= 1 ? 1 : model.processors - 1) {
    REPRO_CHECK(model.processors >= 1);
    REPRO_CHECK(finder.min_score >= 1);
    if (model.processors > 1 && !model.worker_failure_times.empty()) {
      // Same recovery regime as the live protocol: at least one worker must
      // outlive the run for the output guarantee to hold.
      bool survivor = false;
      for (int w = 0; w < workers_ && !survivor; ++w)
        survivor = failure_time(w) <= 0.0;
      REPRO_CHECK_MSG(survivor,
                      "worker_failure_times must leave one worker alive");
      has_failures_ = true;
    }
    oracle_.begin_run();
    const auto& layout = oracle_.group_layout();
    groups_.assign(layout.begin(), layout.end());
    for (std::size_t gi = 0; gi < groups_.size(); ++gi)
      queue_.push(static_cast<int>(gi), groups_[gi].key());
    for (int w = 0; w < workers_; ++w) idle_.push_back(w);
  }

  SimResult run() {
    for (;;) {
      if (static_cast<int>(result_.accept_times.size()) >=
          finder_.num_top_alignments)
        break;
      if (try_accept()) continue;
      if (exhausted_) break;
      if (try_assign()) continue;
      if (running_.empty()) break;  // nothing runs, nothing accepted: done
      process_completion();
    }
    result_.makespan_sec =
        result_.accept_times.empty() ? now_ : result_.accept_times.back();
    result_.tops_found = static_cast<int>(result_.accept_times.size());
    if (result_.makespan_sec > 0.0)
      result_.worker_busy_fraction =
          busy_time_ / (static_cast<double>(workers_) * result_.makespan_sec);
    return result_;
  }

 private:
  int version() const { return oracle_.version(); }

  /// Scheduled failure time for worker `w`; <= 0 means "never fails".
  double failure_time(int w) const {
    const auto& times = model_.worker_failure_times;
    return static_cast<std::size_t>(w) < times.size()
               ? times[static_cast<std::size_t>(w)]
               : 0.0;
  }

  bool fails_before(int w, double t) const {
    if (!has_failures_) return false;
    const double f = failure_time(w);
    return f > 0.0 && f <= t;
  }

  void note_worker_lost(int w) {
    if (lost_workers_.insert(w).second) ++result_.workers_lost;
  }

  bool group_stale(int gi) const {
    const GroupTask& g = groups_[static_cast<std::size_t>(gi)];
    return g.version[static_cast<std::size_t>(g.best_member())] != version();
  }

  double worker_rate() const {
    const bool dual =
        model_.cpus_per_node >= 2 && model_.processors > model_.cpus_per_node;
    return model_.worker_cells_per_sec *
           (dual ? model_.second_cpu_efficiency : 1.0);
  }

  bool try_accept() {
    const auto head = queue_.peek();
    if (!head || group_stale(head->second)) return false;
    if (!inflight_.empty() && KeyCmp{}(*inflight_.begin(), head->first))
      return false;
    if (head->first.score < finder_.min_score) {
      exhausted_ = true;
      return false;
    }
    const auto popped = queue_.pop_best();
    REPRO_CHECK(popped && *popped == head->second);
    GroupTask& g = groups_[static_cast<std::size_t>(*popped)];
    const int b = g.best_member();
    const int r = g.r0 + b;
    oracle_.accept(r, g.score[static_cast<std::size_t>(b)]);
    // The sequential master-side traceback: a full scalar matrix of r x (m-r)
    // cells. It occupies the master (and, at P = 1, the only CPU).
    const double start = std::max(now_, master_free_);
    const double cost = static_cast<double>(r) * static_cast<double>(m_ - r) /
                        model_.traceback_cells_per_sec;
    master_free_ = start + cost;
    result_.accept_times.push_back(master_free_);
    queue_.push(*popped, g.key());
    return true;
  }

  bool try_assign() {
    // Idle workers whose scheduled failure has already struck are gone: the
    // master would find their channel closed on the next assignment attempt.
    while (!idle_.empty() &&
           fails_before(idle_.back(), std::max(now_, master_free_))) {
      note_worker_lost(idle_.back());
      idle_.pop_back();
    }
    if (idle_.empty()) return false;
    const auto gi = queue_.pop_best_if([this](int g) { return group_stale(g); });
    if (!gi) return false;
    const int w = idle_.back();
    idle_.pop_back();
    GroupTask& g = groups_[static_cast<std::size_t>(*gi)];

    // Real scores, computed eagerly at assignment time (the triangle is at
    // exactly this version now).
    const std::vector<align::Score>& scores =
        oracle_.member_scores(*gi, version());
    ++result_.assignments;

    const bool distributed = model_.processors > 1;
    const double start = std::max(now_, master_free_);
    double duration = static_cast<double>(g.r0 + g.count - 1) *
                      static_cast<double>(m_ - g.r0) *
                      static_cast<double>(lanes_) / worker_rate();
    if (distributed) {
      double comm = 2.0 * model_.latency_sec;  // assign + result messages
      result_.comm_messages_modelled += 2;
      // Row-replica fetches for shadow checks (cached per SMP node); a
      // first alignment instead uploads its bottom rows with the result.
      const int node = (w + 1) / std::max(1, model_.cpus_per_node);
      std::uint64_t bytes = 0;
      for (int k = 0; k < g.count; ++k) {
        const int r = g.r0 + k;
        if (version() == 0) {
          bytes += static_cast<std::uint64_t>(m_ - r) * 2;  // upload
          node_cache_.insert({node, r});
        } else if (!node_cache_.contains({node, r})) {
          bytes += static_cast<std::uint64_t>(m_ - r) * 2;  // fetch
          comm += model_.latency_sec;
          result_.comm_messages_modelled += 2;  // request + reply
          node_cache_.insert({node, r});
        }
      }
      comm += static_cast<double>(bytes) / model_.bandwidth_bytes_per_sec;
      duration += comm;
      result_.comm_seconds_modelled += comm;
      result_.row_replica_bytes += bytes;
    }

    Completion c;
    c.time = start + duration;
    c.gi = *gi;
    c.version = version();
    c.bound = g.key();
    c.worker = w;
    if (fails_before(w, c.time)) {
      // Worker dies mid-task: the result never arrives. The master notices
      // the closed channel one latency after the failure and requeues the
      // task then — until detection the task stays in-flight, blocking
      // acceptance exactly as in the live protocol.
      note_worker_lost(w);
      const double fail = std::max(failure_time(w), start);
      duration = fail - start;  // busy time actually delivered
      c.time = fail + (distributed ? model_.latency_sec : 0.0);
      c.lost = true;
    }
    running_.push(c);
    inflight_.insert(c.bound);
    busy_time_ += duration;
    pending_scores_[{*gi, c.version}] = scores;
    return true;
  }

  void process_completion() {
    const Completion c = running_.top();
    running_.pop();
    now_ = std::max(now_, c.time);
    const auto inflight_it = inflight_.find(c.bound);
    REPRO_CHECK(inflight_it != inflight_.end());
    inflight_.erase(inflight_it);
    GroupTask& g = groups_[static_cast<std::size_t>(c.gi)];
    if (c.lost) {
      // Detection of a failed worker: discard the undelivered scores and
      // requeue the task (unchanged key); the worker never returns to idle.
      pending_scores_.erase({c.gi, c.version});
      ++result_.reassignments;
      queue_.push(c.gi, g.key());
      return;
    }
    const auto scores_it = pending_scores_.find({c.gi, c.version});
    REPRO_CHECK(scores_it != pending_scores_.end());
    for (int k = 0; k < g.count; ++k) {
      g.score[static_cast<std::size_t>(k)] =
          scores_it->second[static_cast<std::size_t>(k)];
      g.version[static_cast<std::size_t>(k)] = c.version;
    }
    pending_scores_.erase(scores_it);
    queue_.push(c.gi, g.key());
    idle_.push_back(c.worker);
  }

  AlignmentOracle& oracle_;
  const ClusterModel& model_;
  const core::FinderOptions& finder_;
  int m_;
  int lanes_;
  int workers_;

  std::vector<GroupTask> groups_;
  core::GroupQueue queue_;
  std::multiset<TaskKey, KeyCmp> inflight_;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      running_;
  std::map<std::pair<int, int>, std::vector<align::Score>> pending_scores_;
  std::set<std::pair<int, int>> node_cache_;
  std::vector<int> idle_;
  std::set<int> lost_workers_;

  double now_ = 0.0;
  double master_free_ = 0.0;
  double busy_time_ = 0.0;
  bool exhausted_ = false;
  bool has_failures_ = false;
  SimResult result_;
};

}  // namespace

SimResult simulate_cluster(AlignmentOracle& oracle, const ClusterModel& model,
                           const core::FinderOptions& finder) {
  Simulation sim(oracle, model, finder);
  SimResult result = sim.run();
  if constexpr (obs::kEnabled) {
    auto& reg = obs::Registry::global();
    reg.counter("vcluster.runs").add(1);
    reg.counter("vcluster.assignments").add(result.assignments);
    reg.counter("vcluster.row_replica_bytes").add(result.row_replica_bytes);
    reg.counter("vcluster.comm_messages_modelled")
        .add(result.comm_messages_modelled);
    reg.counter("vcluster.reassignments").add(result.reassignments);
    reg.counter("vcluster.workers_lost").add(result.workers_lost);
    reg.timer("vcluster.comm_seconds_modelled")
        .add_seconds(result.comm_seconds_modelled);
    reg.set_gauge("vcluster.worker_busy_fraction",
                  result.worker_busy_fraction);
    reg.set_gauge("vcluster.makespan_sec", result.makespan_sec);
  }
  return result;
}

}  // namespace repro::cluster
