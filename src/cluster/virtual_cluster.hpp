// Discrete-event simulation of the paper's cluster (§4.3 / Fig. 8).
//
// Substitution note (see DESIGN.md): the paper measures a 64-node dual-
// Pentium-III Myrinet cluster; this host is a single CPU. The simulator
// replays the *identical* distributed scheduling algorithm — master
// sacrifice, best-first assignment, speculative realignment, deterministic
// acceptance guard, sequential master-side traceback, row-replica fetches —
// under virtual time, with compute charged as (lane-cells / calibrated
// rate) and communication as (latency + bytes / bandwidth). Real alignment
// scores from the AlignmentOracle drive every scheduling decision, so the
// speedup *shape* (near-perfect scaling while the first sweep dominates;
// decay with more top alignments because only a few percent of rectangles
// need realignment between acceptances) emerges from the algorithm itself
// rather than from a fitted curve.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/oracle.hpp"
#include "core/options.hpp"

namespace repro::cluster {

struct ClusterModel {
  /// Total CPUs. 1 = the sequential baseline (no master sacrifice, no
  /// communication); otherwise one CPU is the master, the rest are workers.
  int processors = 128;
  int cpus_per_node = 2;
  /// Lane-cells per second of one worker CPU running the modeled engine
  /// (calibrate with a real engine on this host; see bench_fig8).
  double worker_cells_per_sec = 1e9;
  /// Scalar cells per second of the master's full-matrix traceback.
  double traceback_cells_per_sec = 2.5e8;
  double latency_sec = 20e-6;                 ///< per message
  double bandwidth_bytes_per_sec = 2.5e8;     ///< Myrinet-class (2 Gb/s)
  /// Per-CPU throughput factor when both CPUs of a node compute. 1.0 models
  /// the cache-aware kernel (the paper's 100 % second-CPU gain); ~0.625
  /// models the memory-bus-bound non-cache-aware kernel (25 % gain).
  double second_cpu_efficiency = 1.0;
  /// Optional worker-failure schedule (virtual seconds), indexed by worker
  /// id (0-based, master excluded). An entry <= 0 — or a missing entry —
  /// means that worker never fails. A worker that dies mid-task loses the
  /// result; the master observes the closed channel one latency later and
  /// requeues the task (mirroring the live protocol in master_worker.cpp).
  /// As there, the schedule must leave at least one worker alive, and the
  /// schedule is ignored at processors <= 1 (the lone CPU is the master).
  std::vector<double> worker_failure_times;
};

struct SimResult {
  double makespan_sec = 0.0;          ///< virtual time of the last acceptance
  std::vector<double> accept_times;   ///< virtual completion time per top
  std::uint64_t assignments = 0;      ///< group alignments executed
  std::uint64_t row_replica_bytes = 0;
  double worker_busy_fraction = 0.0;  ///< busy time / (workers x makespan)
  int tops_found = 0;
  /// Virtual seconds charged to communication (latencies + byte transfer),
  /// summed over assignments — the modelled overhead behind Fig. 8's
  /// efficiency decay.
  double comm_seconds_modelled = 0.0;
  std::uint64_t comm_messages_modelled = 0;  ///< modelled message count
  std::uint64_t reassignments = 0;  ///< tasks requeued off failed workers
  std::uint64_t workers_lost = 0;   ///< scheduled failures observed by master
};

/// Simulates one run; the oracle supplies real scores (memoised across
/// calls, so a sweep over processor counts shares almost all compute).
SimResult simulate_cluster(AlignmentOracle& oracle, const ClusterModel& model,
                           const core::FinderOptions& finder);

}  // namespace repro::cluster
