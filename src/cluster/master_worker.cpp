#include "cluster/master_worker.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "align/bottom_row_store.hpp"
#include "align/override_triangle.hpp"
#include "align/traceback.hpp"
#include "cluster/mpisim.hpp"
#include "core/task_queue.hpp"
#include "core/top_alignment_finder.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace repro::cluster {
namespace {

using core::GroupTask;
using core::TaskKey;
using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

enum Tag : int {
  kReqWork = 1,  // W->M: hello (resent with backoff until registered)
  kAssign,       // M->W: [r0, count, version]
  kResult,       // W->M: [r0, count, version, scores...; rows... when
                 //        version==0 in replica mode]
  kRowRequest,   // any->owner: [r]  (owner = master in replica mode)
  kRowReply,     // owner->any: [r, row values...]
  kRowDeposit,   // W->owner W: [r, row values...]  (partitioned mode, v0)
  kUpdate,       // M->W: [new_version, npairs, i0, j0, i1, j1, ...]
  kSyncRequest,  // W->M: [target_version]  (worker missed an update)
  kSyncReply,    // M->W: [target_version, npairs, pairs...]  (cumulative
                 //        from version 0 — idempotent to reapply)
  kReject,       // W->M: [r0, version]  (assign version no longer computable)
  kPing,         // M->W: []  (sent on a missed deadline; liveness probe)
  kPong,         // W->M: []
  kShutdown,     // M->W: []
};

struct KeyCmp {
  bool operator()(const TaskKey& a, const TaskKey& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.r < b.r;
  }
};

/// Process-shared recovery accounting. Observability only — never consulted
/// by the protocol itself, so relaxed atomics are fine (a real-MPI port
/// would reduce per-rank tallies instead).
struct RecoveryStats {
  std::atomic<std::uint64_t> deposits{0};  ///< cross-rank row deposits sent
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> reassignments{0};
  std::atomic<std::uint64_t> heartbeat_misses{0};
  std::atomic<std::uint64_t> stale_results{0};
  std::atomic<std::uint64_t> row_rebuilds{0};
  std::atomic<std::uint64_t> sync_requests{0};
  std::atomic<std::uint64_t> workers_lost{0};

  void bump(std::atomic<std::uint64_t>& c) {
    c.fetch_add(1, std::memory_order_relaxed);
  }
};

Message make_row_message(int tag, int r, std::span<const std::int16_t> row) {
  Message msg;
  msg.tag = tag;
  msg.data.reserve(row.size() + 1);
  msg.data.push_back(r);
  for (std::int16_t v : row) msg.data.push_back(v);
  return msg;
}

std::vector<std::int16_t> row_from_message(const Message& msg) {
  std::vector<std::int16_t> row(msg.data.size() - 1);
  for (std::size_t x = 1; x < msg.data.size(); ++x)
    row[x - 1] = static_cast<std::int16_t>(msg.data[x]);
  return row;
}

milliseconds next_backoff(milliseconds current, const FaultToleranceOptions& ft) {
  const auto scaled = static_cast<std::int64_t>(
      static_cast<double>(current.count()) * ft.backoff);
  return milliseconds(std::min<std::int64_t>(scaled, ft.max_backoff_ms));
}

/// Master (rank 0): task queue, acceptance + traceback, worker liveness and
/// assignment records; in replica mode also the bottom-row archive.
class Master {
 public:
  Master(Comm& comm, const seq::Sequence& s, const seq::Scoring& scoring,
         const ClusterOptions& options, int lanes, RecoveryStats& recovery)
      : comm_(comm),
        s_(s),
        scoring_(scoring),
        options_(options),
        recovery_(recovery),
        triangle_(s.length()),
        lanes_(lanes),
        groups_(core::make_groups(s.length(), lanes)),
        workers_(static_cast<std::size_t>(comm.size())) {
    if (options.row_storage == RowStorage::kMasterReplica)
      rows_.emplace(s.length());
    for (std::size_t gi = 0; gi < groups_.size(); ++gi)
      queue_.push(static_cast<int>(gi), groups_[gi].key());
  }

  core::FinderResult run() {
    util::WallTimer timer;
    bool done = false;
    while (!done) {
      sweep();
      done = try_accept();
      if (!done) {
        assign_idle();
        // Exhausted: nothing running and every live worker is registered
        // and idle — with an up-to-date, unblocked head try_accept would
        // have progressed.
        done = inflight_.empty() &&
               static_cast<int>(idle_.size()) == alive_workers();
        if (!done && alive_workers() == 0)
          throw std::runtime_error(
              "cluster: every worker died with work remaining");
      }
      if (done) break;
      if (const auto got = poll_recv(milliseconds(options_.ft.poll_ms)))
        handle(got->first, got->second);
    }
    comm_.broadcast(0, {kShutdown, {}});

    core::FinderResult res;
    res.tops = std::move(tops_);
    res.stats = stats_;
    res.stats.seconds = timer.seconds();
    return res;
  }

  [[nodiscard]] std::uint64_t replicas_served() const { return replicas_served_; }

 private:
  struct Assignment {
    int gi = -1;
    int r0 = -1;
    int version = -1;
    TaskKey key;  ///< the group's key at assign time (for inflight_ removal)
    Clock::time_point deadline;
  };
  enum class WState { kNew, kIdle, kBusy, kDead };
  struct WorkerRec {
    WState state = WState::kNew;
    std::optional<Assignment> job;
  };

  int version() const { return static_cast<int>(tops_.size()); }

  bool group_stale(int gi) const {
    const GroupTask& g = groups_[static_cast<std::size_t>(gi)];
    return g.version[static_cast<std::size_t>(g.best_member())] != version();
  }

  int alive_workers() const {
    int alive = 0;
    for (int w = 1; w < comm_.size(); ++w)
      if (workers_[static_cast<std::size_t>(w)].state != WState::kDead) ++alive;
    return alive;
  }

  void mark_idle(int w) {
    WorkerRec& rec = workers_[static_cast<std::size_t>(w)];
    REPRO_DCHECK(rec.state != WState::kDead);
    if (rec.state == WState::kIdle) return;
    rec.state = WState::kIdle;
    idle_.push_back(w);
  }

  void drop_from_idle(int w) {
    const auto it = std::find(idle_.begin(), idle_.end(), w);
    if (it != idle_.end()) idle_.erase(it);
  }

  /// Undoes an outstanding assignment: the group goes back on the queue and
  /// the in-flight bound is lifted. Safe at any time because group state
  /// only mutates when a matching result is *applied* — a cancelled
  /// worker's late result is deduplicated by the (cleared) record.
  void cancel_assignment(int w) {
    WorkerRec& rec = workers_[static_cast<std::size_t>(w)];
    REPRO_CHECK(rec.job.has_value());
    const Assignment& job = *rec.job;
    const GroupTask& g = groups_[static_cast<std::size_t>(job.gi)];
    // Recovery invariant: an assigned group's key cannot have moved (only
    // an applied result changes it, and at most one record references a
    // group at a time).
    REPRO_DCHECK(!KeyCmp{}(g.key(), job.key) && !KeyCmp{}(job.key, g.key()));
    const auto it = inflight_.find(job.key);
    REPRO_CHECK(it != inflight_.end());
    inflight_.erase(it);
    queue_.push(job.gi, g.key());
    rec.job.reset();
  }

  /// Liveness sweep: fold in closed (crashed or exited) workers and, when a
  /// fault plan is active, expire assignment deadlines. The deadline path
  /// is optimistic: the worker may merely be slow, but cancel+requeue is
  /// always safe under result dedup, so false positives only cost work.
  void sweep() {
    const auto now = Clock::now();
    for (int w = 1; w < comm_.size(); ++w) {
      WorkerRec& rec = workers_[static_cast<std::size_t>(w)];
      if (rec.state == WState::kDead) continue;
      if (comm_.closed(w)) {
        if (rec.job.has_value()) {
          cancel_assignment(w);
          recovery_.bump(recovery_.reassignments);
        }
        drop_from_idle(w);
        rec.state = WState::kDead;
        recovery_.bump(recovery_.workers_lost);
        continue;
      }
      if (deadlines_armed() && rec.job.has_value() && now >= rec.job->deadline) {
        recovery_.bump(recovery_.heartbeat_misses);
        comm_.send(0, w, {kPing, {}});
        cancel_assignment(w);
        recovery_.bump(recovery_.retries);
        mark_idle(w);
      }
    }
  }

  bool deadlines_armed() const { return comm_.fault_active(); }

  /// recv_any_for that treats "every peer closed" as silence; the main
  /// loop's sweep turns that state into recovery or a hard error.
  std::optional<std::pair<int, Message>> poll_recv(milliseconds timeout) {
    try {
      return comm_.recv_any_for(0, timeout);
    } catch (const ChannelClosed&) {
      return std::nullopt;
    }
  }

  /// Advisory owner of row r among the workers still alive. Fault-free this
  /// is the static partition 1 + (r % workers); after a crash the shard
  /// re-homes to a surviving rank, which rebuilds the row on demand.
  int owner_of_alive(int r) const {
    std::vector<int> alive;
    for (int w = 1; w < comm_.size(); ++w)
      if (!comm_.closed(w)) alive.push_back(w);
    if (alive.empty())
      throw std::runtime_error(
          "cluster: every worker died during a row fetch");
    return alive[static_cast<std::size_t>(r) % alive.size()];
  }

  /// Fetches row r from its (current) owner, servicing every other message
  /// normally while blocked — results keep flowing during the master's
  /// fetch, only acceptance is on hold. Times out, backs off, and re-routes
  /// to a surviving owner if the first choice dies mid-request.
  std::vector<std::int16_t> fetch_row_remote(int r) {
    auto backoff = milliseconds(options_.ft.row_timeout_ms);
    for (;;) {
      const int owner = owner_of_alive(r);
      comm_.send(0, owner, {kRowRequest, {r}});
      const auto deadline = Clock::now() + backoff;
      for (;;) {
        const auto now = Clock::now();
        if (now >= deadline) break;
        const auto slice =
            std::chrono::duration_cast<milliseconds>(deadline - now);
        const auto got = poll_recv(std::max(slice, milliseconds(1)));
        if (!got) continue;
        const auto& [src, msg] = *got;
        if (msg.tag == kRowReply) {
          const int rr = msg.data.at(0);
          if (rr == r) return row_from_message(msg);
          fetched_.emplace(rr, row_from_message(msg));  // stray duplicate
          continue;
        }
        handle(src, msg);
      }
      // Resend only under an active fault plan or a dead owner; a reliable
      // in-process run just keeps waiting (the owner may be computing).
      if (!comm_.fault_active() && !comm_.closed(owner)) continue;
      recovery_.bump(recovery_.retries);
      backoff = next_backoff(backoff, options_.ft);
      sweep();  // fold in the owner's death before re-routing
    }
  }

  /// Original bottom row of r for the acceptance traceback.
  std::span<const std::int16_t> original_row(int r) {
    if (rows_.has_value()) return rows_->row(r);
    const auto it = fetched_.find(r);
    if (it != fetched_.end()) return it->second;
    return fetched_.emplace(r, fetch_row_remote(r)).first->second;
  }

  /// Accepts as long as the deterministic guard allows; returns true when
  /// the search is complete.
  bool try_accept() {
    for (;;) {
      if (static_cast<int>(tops_.size()) >= options_.finder.num_top_alignments)
        return true;
      const auto head = queue_.peek();
      if (!head || group_stale(head->second)) return false;
      if (!inflight_.empty() && KeyCmp{}(*inflight_.begin(), head->first))
        return false;  // an in-flight bound could still order before the head
      if (head->first.score < options_.finder.min_score) return true;

      // Fetching the original row may process further results; re-validate
      // the head afterwards (its key cannot have *improved*, but an
      // in-flight bound may have landed above it).
      const GroupTask& head_group = groups_[static_cast<std::size_t>(head->second)];
      const int b = head_group.best_member();
      const int r = head_group.r0 + b;
      const std::span<const std::int16_t> original = original_row(r);
      const auto head2 = queue_.peek();
      if (!head2 || head2->second != head->second || group_stale(head2->second))
        continue;
      if (!inflight_.empty() && KeyCmp{}(*inflight_.begin(), head2->first))
        return false;

      const auto popped = queue_.pop_best();
      REPRO_CHECK(popped && *popped == head->second);
      GroupTask& g = groups_[static_cast<std::size_t>(*popped)];
      core::TopAlignment top =
          core::accept_alignment(s_, scoring_, triangle_, original, r,
                                 g.score[static_cast<std::size_t>(b)]);
      // Broadcast the triangle growth before any assign can reference the
      // new version (per-channel FIFO makes the ordering safe; a worker
      // that loses this update resynchronises via kSyncRequest).
      Message update;
      update.tag = kUpdate;
      update.data.push_back(version() + 1);
      update.data.push_back(static_cast<std::int32_t>(top.pairs.size()));
      for (const auto& [i, j] : top.pairs) {
        update.data.push_back(i);
        update.data.push_back(j);
      }
      comm_.broadcast(0, update);
      tops_.push_back(std::move(top));
      ++stats_.tracebacks;
      queue_.push(*popped, g.key());
    }
  }

  void assign_idle() {
    while (!idle_.empty()) {
      const auto gi = queue_.pop_best_if([this](int g) { return group_stale(g); });
      if (!gi) break;
      const int w = idle_.back();
      idle_.pop_back();
      WorkerRec& rec = workers_[static_cast<std::size_t>(w)];
      REPRO_DCHECK(rec.state == WState::kIdle && !rec.job.has_value());
      rec.state = WState::kBusy;
      GroupTask& g = groups_[static_cast<std::size_t>(*gi)];
      inflight_.insert(g.key());
      rec.job = Assignment{*gi, g.r0, version(), g.key(),
                           Clock::now() + milliseconds(options_.ft.task_timeout_ms)};
      comm_.send(0, w, {kAssign, {g.r0, g.count, version()}});
    }
  }

  void handle(int src, const Message& msg) {
    WorkerRec& rec = workers_[static_cast<std::size_t>(src)];
    switch (msg.tag) {
      case kReqWork:
        // Register a new worker. Duplicate hellos from a known worker are
        // noise (resends, or duplicates injected by the fault plan).
        if (rec.state == WState::kNew && !comm_.closed(src)) mark_idle(src);
        break;
      case kRowRequest: {
        REPRO_CHECK_MSG(rows_.has_value(),
                        "row request reached the master in partitioned mode");
        const int r = msg.data.at(0);
        comm_.send(0, src, make_row_message(kRowReply, r, rows_->row(r)));
        ++replicas_served_;
        break;
      }
      case kRowReply:
        // A reply that outlived its fetch loop (resent request answered
        // twice). Cache it — row data never changes once computed.
        fetched_.emplace(msg.data.at(0), row_from_message(msg));
        break;
      case kResult:
        apply_result(src, msg);
        break;
      case kSyncRequest:
        send_sync_reply(src, msg.data.at(0));
        break;
      case kReject:
        // The worker could no longer compute at the assigned version (a
        // duplicated assign landed after its replica moved on). Requeue.
        if (rec.job.has_value() && rec.job->r0 == msg.data.at(0) &&
            rec.job->version == msg.data.at(1)) {
          cancel_assignment(src);
          recovery_.bump(recovery_.retries);
          mark_idle(src);
        }
        break;
      case kPong:
        break;  // liveness evidence only; the deadline already handled it
      default:
        REPRO_CHECK_MSG(false, "master received unexpected tag " << msg.tag);
    }
  }

  /// Cumulative triangle state up to target_version, idempotent to apply.
  void send_sync_reply(int src, int target_version) {
    REPRO_CHECK(target_version >= 0 && target_version <= version());
    recovery_.bump(recovery_.sync_requests);
    Message reply;
    reply.tag = kSyncReply;
    std::size_t npairs = 0;
    for (int v = 0; v < target_version; ++v)
      npairs += tops_[static_cast<std::size_t>(v)].pairs.size();
    reply.data.reserve(2 + 2 * npairs);
    reply.data.push_back(target_version);
    reply.data.push_back(static_cast<std::int32_t>(npairs));
    for (int v = 0; v < target_version; ++v) {
      for (const auto& [i, j] : tops_[static_cast<std::size_t>(v)].pairs) {
        reply.data.push_back(i);
        reply.data.push_back(j);
      }
    }
    comm_.send(0, src, std::move(reply));
  }

  void apply_result(int src, const Message& msg) {
    const int r0 = msg.data.at(0);
    const int count = msg.data.at(1);
    const int v = msg.data.at(2);
    WorkerRec& rec = workers_[static_cast<std::size_t>(src)];
    // Dedup: only the result matching the worker's live assignment record
    // is applied. Anything else — a duplicate delivery, a result computed
    // for an assignment that timed out and was requeued, a straggler from
    // a rank that has since died — is superseded and must be dropped.
    if (!rec.job.has_value() || rec.job->r0 != r0 || rec.job->version != v) {
      recovery_.bump(recovery_.stale_results);
      return;
    }
    const int gi = rec.job->gi;
    GroupTask& g = groups_[static_cast<std::size_t>(gi)];
    REPRO_CHECK(g.count == count);

    const auto inflight_it = inflight_.find(rec.job->key);
    REPRO_CHECK(inflight_it != inflight_.end());
    inflight_.erase(inflight_it);
    rec.job.reset();

    std::size_t cursor = 3 + static_cast<std::size_t>(count);
    for (int k = 0; k < count; ++k) {
      const int r = r0 + k;
      auto& member_version = g.version[static_cast<std::size_t>(k)];
      if (member_version == -1) {
        // Recovery invariant: kScoreInf keys pin every never-completed
        // group above all real scores, so acceptance (and with it version
        // advance) cannot begin until each group completed once at v0 —
        // cancels and requeues never change a group's key.
        REPRO_CHECK(v == 0);
        ++stats_.first_alignments;
        if (rows_.has_value()) {
          // Replica mode: the worker appended the bottom row for archival.
          const auto len = static_cast<std::size_t>(s_.length() - r);
          std::vector<align::Score> row(
              msg.data.begin() + static_cast<std::ptrdiff_t>(cursor),
              msg.data.begin() + static_cast<std::ptrdiff_t>(cursor + len));
          cursor += len;
          rows_->store(r, row);
        }
        // (Partitioned mode: the worker already routed the row to its
        // owner; cross-rank deposits are tallied at the sending side.)
      } else if (member_version == v) {
        ++stats_.speculative;
      } else {
        ++stats_.realignments;
      }
      g.score[static_cast<std::size_t>(k)] = msg.data.at(3 + static_cast<std::size_t>(k));
      member_version = v;
    }
    REPRO_CHECK(cursor == msg.data.size());
    // Mirror the engines' accounting: lanes x rows x columns per group.
    stats_.cells += static_cast<std::uint64_t>(g.r0 + g.count - 1) *
                    static_cast<std::uint64_t>(s_.length() - g.r0) *
                    static_cast<std::uint64_t>(lanes_);
    ++stats_.queue_pops;
    queue_.push(gi, g.key());
    mark_idle(src);
  }

  Comm& comm_;
  const seq::Sequence& s_;
  const seq::Scoring& scoring_;
  const ClusterOptions& options_;
  RecoveryStats& recovery_;
  align::OverrideTriangle triangle_;
  std::optional<align::BottomRowStore> rows_;  // replica mode only
  std::unordered_map<int, std::vector<std::int16_t>> fetched_;  // partitioned
  int lanes_;
  std::vector<GroupTask> groups_;
  core::GroupQueue queue_;
  std::multiset<TaskKey, KeyCmp> inflight_;
  std::vector<WorkerRec> workers_;  // indexed by rank; [0] unused
  std::vector<int> idle_;
  std::vector<core::TopAlignment> tops_;
  core::FinderStats stats_;
  std::uint64_t replicas_served_ = 0;
};

/// Raised inside a worker when the master shuts the run down (or vanishes)
/// while the worker is mid-protocol — its in-flight work is no longer
/// needed; the search already completed.
struct ShutdownSignal {};

/// Worker rank: private engine, replicated triangle, cached original rows;
/// under partitioned storage also an owner of row shards — though under
/// faults ownership is advisory: any worker rebuilds any v0 row on demand.
class Worker {
 public:
  Worker(Comm& comm, int rank, const seq::Sequence& s,
         const seq::Scoring& scoring, const ClusterOptions& options,
         align::Engine& engine, RecoveryStats& recovery)
      : comm_(comm),
        rank_(rank),
        s_(s),
        scoring_(scoring),
        options_(options),
        recovery_(recovery),
        engine_(engine),
        triangle_(s.length()) {}

  void run() {
    comm_.send(rank_, 0, {kReqWork, {}});
    auto hello_backoff = milliseconds(options_.ft.hello_timeout_ms);
    auto next_hello = Clock::now() + hello_backoff;
    try {
      for (;;) {
        if (!pending_assigns_.empty()) {
          const Message assign = std::move(pending_assigns_.front());
          pending_assigns_.pop_front();
          handle_assign(assign);
          continue;
        }
        const auto got =
            comm_.recv_any_for(rank_, milliseconds(options_.ft.poll_ms));
        if (!got) {
          if (comm_.closed(0)) return;  // master gone (e.g. shutdown dropped)
          // Re-hello until the master provably knows us (first assign):
          // the initial hello may have been dropped by the fault plan.
          if (comm_.fault_active() && !registered_ &&
              Clock::now() >= next_hello) {
            comm_.send(rank_, 0, {kReqWork, {}});
            recovery_.bump(recovery_.retries);
            hello_backoff = next_backoff(hello_backoff, options_.ft);
            next_hello = Clock::now() + hello_backoff;
          }
          continue;
        }
        const auto& [src, msg] = *got;
        if (msg.tag == kShutdown) return;
        if (msg.tag == kAssign) {
          registered_ = true;
          handle_assign(msg);
        } else {
          dispatch(src, msg);
        }
      }
    } catch (const ShutdownSignal&) {
      // master completed the search mid-task
    } catch (const ChannelClosed&) {
      // every peer is gone; nothing left to do
    }
  }

 private:
  bool partitioned() const {
    return options_.row_storage == RowStorage::kPartitioned;
  }

  /// Handles any message that can arrive while blocked in a nested wait
  /// (row fetch, version sync) — everything except kAssign (stashed by the
  /// callers: we are busy, the compute must finish first) and kShutdown.
  void dispatch(int src, const Message& msg) {
    switch (msg.tag) {
      case kUpdate:
        apply_update(msg);
        break;
      case kRowRequest:
        serve_row(src, msg.data.at(0));
        break;
      case kRowDeposit:
        owned_rows_.emplace(msg.data.at(0), row_from_message(msg));
        break;
      case kRowReply:
        // Outlived its fetch loop (a resent request answered twice).
        row_cache_.emplace(msg.data.at(0), row_from_message(msg));
        break;
      case kSyncReply:
        apply_sync(msg);
        break;
      case kPing:
        comm_.send(rank_, 0, {kPong, {}});
        break;
      default:
        REPRO_CHECK_MSG(false, "worker " << rank_ << " got unexpected tag "
                                         << msg.tag << " from " << src);
    }
  }

  /// Tolerant replica update: applies only the next version in sequence.
  /// A duplicate (new_version <= ours) re-delivers pairs we already hold; a
  /// gap (new_version > ours + 1) means an update was lost — both are
  /// ignored here, and the next assign triggers an explicit resync.
  void apply_update(const Message& msg) {
    const int new_version = msg.data.at(0);
    if (new_version != version_ + 1) return;
    const int npairs = msg.data.at(1);
    for (int p = 0; p < npairs; ++p)
      triangle_.set(msg.data.at(2 + 2 * static_cast<std::size_t>(p)),
                    msg.data.at(3 + 2 * static_cast<std::size_t>(p)));
    version_ = new_version;
  }

  /// Cumulative sync reply: all pairs of versions 1..target. Idempotent
  /// (triangle bits are monotone), so duplicates and overlaps are safe.
  void apply_sync(const Message& msg) {
    const int to_version = msg.data.at(0);
    if (to_version <= version_) return;  // duplicate or superseded reply
    const int npairs = msg.data.at(1);
    REPRO_DCHECK(msg.data.size() ==
                 2 + 2 * static_cast<std::size_t>(npairs));
    for (int p = 0; p < npairs; ++p)
      triangle_.set(msg.data.at(2 + 2 * static_cast<std::size_t>(p)),
                    msg.data.at(3 + 2 * static_cast<std::size_t>(p)));
    version_ = to_version;
  }

  /// Blocks until the replica reaches `target`, requesting cumulative sync
  /// state from the master with timeout + exponential backoff.
  void sync_to(int target) {
    recovery_.bump(recovery_.sync_requests);
    comm_.send(rank_, 0, {kSyncRequest, {target}});
    auto backoff = milliseconds(options_.ft.row_timeout_ms);
    auto deadline = Clock::now() + backoff;
    while (version_ < target) {
      const auto got =
          comm_.recv_any_for(rank_, milliseconds(options_.ft.poll_ms));
      if (got) {
        const auto& [src, msg] = *got;
        if (msg.tag == kShutdown) throw ShutdownSignal{};
        if (msg.tag == kAssign) {
          pending_assigns_.push_back(msg);
          continue;
        }
        dispatch(src, msg);  // kSyncReply and kUpdate both advance version_
        continue;
      }
      if (Clock::now() < deadline) continue;
      if (comm_.closed(0)) throw ShutdownSignal{};
      comm_.send(rank_, 0, {kSyncRequest, {target}});
      recovery_.bump(recovery_.retries);
      backoff = next_backoff(backoff, options_.ft);
      deadline = Clock::now() + backoff;
    }
  }

  /// Advisory owner of row r among live workers (possibly this rank).
  int owner_of_alive(int r) const {
    std::vector<int> alive;
    for (int w = 1; w < comm_.size(); ++w)
      if (!comm_.closed(w)) alive.push_back(w);
    REPRO_DCHECK(!alive.empty());  // we are alive and a worker
    return alive[static_cast<std::size_t>(r) % alive.size()];
  }

  /// Deterministically recomputes the v0 bottom row of r from scratch (a
  /// single-row group job with no overrides — exactly how it was first
  /// produced). This is what makes partitioned ownership advisory: a lost
  /// deposit or a dead owner costs one recompute, never the run.
  const std::vector<std::int16_t>& rebuild_row(int r) {
    const auto it = owned_rows_.find(r);
    if (it != owned_rows_.end()) return it->second;
    recovery_.bump(recovery_.row_rebuilds);
    align::GroupJob job;
    job.seq = s_.codes();
    job.scoring = &scoring_;
    job.overrides = nullptr;
    job.r0 = r;
    job.count = 1;
    // Local buffer: a rebuild can run nested inside handle_assign (while it
    // waits on a row fetch), which is still using out_rows_.
    std::vector<align::Score> row(static_cast<std::size_t>(s_.length() - r));
    std::vector<std::span<align::Score>> outs{row};
    engine_.align(job, outs);
    std::vector<std::int16_t> narrow(row.size());
    for (std::size_t x = 0; x < row.size(); ++x)
      narrow[x] = static_cast<std::int16_t>(row[x]);
    return owned_rows_.emplace(r, std::move(narrow)).first->second;
  }

  void serve_row(int src, int r) {
    REPRO_CHECK_MSG(partitioned(), "replica mode has no worker-owned rows");
    const auto owned = owned_rows_.find(r);
    if (owned != owned_rows_.end()) {
      comm_.send(rank_, src, make_row_message(kRowReply, r, owned->second));
      return;
    }
    const auto cached = row_cache_.find(r);
    if (cached != row_cache_.end()) {
      comm_.send(rank_, src, make_row_message(kRowReply, r, cached->second));
      return;
    }
    comm_.send(rank_, src, make_row_message(kRowReply, r, rebuild_row(r)));
  }

  /// Original bottom row of r, from the local cache, own partition, or the
  /// row's owner (master in replica mode, a live peer in partitioned mode).
  /// While blocked on the reply the worker keeps servicing peer requests
  /// and deposits — otherwise two waiting owners would deadlock — and
  /// resends with backoff, re-routing around a dead owner.
  const std::vector<std::int16_t>& original_row(int r) {
    if (const auto it = row_cache_.find(r); it != row_cache_.end())
      return it->second;
    if (partitioned()) {
      if (const auto it = owned_rows_.find(r); it != owned_rows_.end())
        return it->second;
    }
    auto backoff = milliseconds(options_.ft.row_timeout_ms);
    for (;;) {
      const int owner = partitioned() ? owner_of_alive(r) : 0;
      if (owner == rank_) return rebuild_row(r);  // shard re-homed to us
      comm_.send(rank_, owner, {kRowRequest, {r}});
      const auto deadline = Clock::now() + backoff;
      for (;;) {
        if (Clock::now() >= deadline) break;
        const auto got =
            comm_.recv_any_for(rank_, milliseconds(options_.ft.poll_ms));
        if (!got) continue;
        const auto& [src, msg] = *got;
        if (msg.tag == kRowReply && msg.data.at(0) == r)
          return row_cache_.emplace(r, row_from_message(msg)).first->second;
        if (msg.tag == kShutdown) throw ShutdownSignal{};
        if (msg.tag == kAssign) {
          // The master may have optimistically requeued our task; finish
          // the current compute first, then take the new assignment.
          pending_assigns_.push_back(msg);
          continue;
        }
        dispatch(src, msg);
      }
      if (!comm_.fault_active() && !comm_.closed(owner)) continue;
      if (comm_.closed(0)) throw ShutdownSignal{};
      recovery_.bump(recovery_.retries);
      backoff = next_backoff(backoff, options_.ft);
    }
  }

  void handle_assign(const Message& assign) {
    registered_ = true;
    const int r0 = assign.data.at(0);
    const int count = assign.data.at(1);
    const int v = assign.data.at(2);
    // The replica may have missed update broadcasts: catch up to the
    // assign's version before computing (fault-free, per-channel FIFO
    // guarantees v == version_ on arrival).
    if (v > version_) sync_to(v);
    if (v != version_) {
      // A duplicated or superseded assign landed after the replica moved
      // past its version; computing "at v" with a newer triangle would
      // produce scores from the wrong version. Hand it back.
      comm_.send(rank_, 0, {kReject, {r0, v}});
      return;
    }
    const int m = s_.length();

    align::GroupJob job;
    job.seq = s_.codes();
    job.scoring = &scoring_;
    job.overrides = v == 0 ? nullptr : &triangle_;
    job.r0 = r0;
    job.count = count;
    out_rows_.resize(static_cast<std::size_t>(count));
    std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
      out_rows_[static_cast<std::size_t>(k)].resize(
          static_cast<std::size_t>(m - (r0 + k)));
      outs[static_cast<std::size_t>(k)] = out_rows_[static_cast<std::size_t>(k)];
    }
    engine_.align(job, outs);

    Message result;
    result.tag = kResult;
    result.data = {r0, count, v};
    for (int k = 0; k < count; ++k) {
      const int r = r0 + k;
      const auto& row = out_rows_[static_cast<std::size_t>(k)];
      align::Score score;
      if (v == 0) {
        score = align::find_best_end(row).score;
        std::vector<std::int16_t> narrow(row.size());
        for (std::size_t x = 0; x < row.size(); ++x)
          narrow[x] = static_cast<std::int16_t>(row[x]);
        if (partitioned()) {
          // Route the row to its owner (in-process sends are causally
          // ordered before our result reaches the master, so the deposit is
          // always in the owner's mailbox before any consumer's request —
          // and if the fault plan drops it, the owner rebuilds on demand).
          const int owner = owner_of_alive(r);
          if (owner == rank_) {
            owned_rows_.emplace(r, std::move(narrow));
          } else {
            comm_.send(rank_, owner, make_row_message(kRowDeposit, r, narrow));
            recovery_.bump(recovery_.deposits);
            row_cache_.emplace(r, std::move(narrow));  // keep our own copy
          }
        } else {
          // Replica mode: cache locally; the archive copy rides the result.
          row_cache_.emplace(r, std::move(narrow));
        }
      } else {
        score = align::find_best_end(row, original_row(r)).score;
      }
      result.data.push_back(score);
    }
    if (v == 0 && !partitioned()) {
      for (int k = 0; k < count; ++k)
        for (align::Score x : out_rows_[static_cast<std::size_t>(k)])
          result.data.push_back(x);
    }
    comm_.send(rank_, 0, std::move(result));
  }

  Comm& comm_;
  int rank_;
  const seq::Sequence& s_;
  const seq::Scoring& scoring_;
  const ClusterOptions& options_;
  RecoveryStats& recovery_;
  align::Engine& engine_;
  align::OverrideTriangle triangle_;
  int version_ = 0;
  bool registered_ = false;  ///< the master has provably seen our hello
  std::deque<Message> pending_assigns_;
  std::unordered_map<int, std::vector<std::int16_t>> row_cache_;
  std::unordered_map<int, std::vector<std::int16_t>> owned_rows_;
  std::vector<std::vector<align::Score>> out_rows_;
};

}  // namespace

core::FinderResult find_top_alignments_cluster(const seq::Sequence& s,
                                               const seq::Scoring& scoring,
                                               const ClusterOptions& options,
                                               const align::EngineFactory& factory,
                                               ClusterRunInfo* info) {
  REPRO_CHECK(options.ranks >= 1);
  REPRO_CHECK(options.finder.min_score >= 1);
  REPRO_CHECK_MSG(options.finder.memory == core::MemoryMode::kArchiveRows,
                  "the distributed finder manages rows via RowStorage; "
                  "MemoryMode::kRecomputeRows applies to the sequential "
                  "finder only");
  REPRO_CHECK_MSG(options.finder.traceback == core::TracebackMode::kFullMatrix,
                  "the distributed master uses the full-matrix traceback");
  const auto crashed = options.fault_plan.crashed_ranks();
  for (int c : crashed)
    REPRO_CHECK_MSG(c > 0 && c < options.ranks,
                    "fault plan may only crash worker ranks (got rank "
                        << c << " of " << options.ranks << ")");
  REPRO_CHECK_MSG(static_cast<int>(crashed.size()) < options.ranks - 1 ||
                      options.ranks == 1,
                  "fault plan must leave at least one worker alive");
  if (options.ranks == 1) {
    // Degenerate single-rank mode: no workers to message (and no channels
    // for a fault plan to act on); run sequentially.
    const auto engine = factory();
    return core::find_top_alignments(s, scoring, options.finder, *engine);
  }

  std::vector<std::unique_ptr<align::Engine>> engines(
      static_cast<std::size_t>(options.ranks));
  for (int w = 1; w < options.ranks; ++w) {
    engines[static_cast<std::size_t>(w)] = factory();
    REPRO_CHECK(engines[static_cast<std::size_t>(w)] != nullptr);
  }
  const int lanes = engines[1]->lanes();
  for (int w = 2; w < options.ranks; ++w)
    REPRO_CHECK_MSG(engines[static_cast<std::size_t>(w)]->lanes() == lanes,
                    "all worker engines must have the same lane count");

  RecoveryStats recovery;
  Comm comm(options.ranks, options.fault_plan);
  Master master(comm, s, scoring, options, lanes, recovery);
  core::FinderResult result;
  run_ranks(comm, [&](int rank) {
    if (rank == 0) {
      result = master.run();
    } else {
      Worker worker(comm, rank, s, scoring, options,
                    *engines[static_cast<std::size_t>(rank)], recovery);
      worker.run();
    }
  });

  // Publish after the join: stragglers (workers finishing superseded work
  // during shutdown) keep sending — and counting — until their bodies exit.
  const FaultStats faults = comm.fault_stats();
  const auto load = [](const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  if (info != nullptr) {
    info->messages = comm.messages_sent();
    info->payload_words = comm.words_sent();
    info->row_replicas_served = master.replicas_served();
    info->row_deposits = load(recovery.deposits);
    info->messages_by_rank.resize(static_cast<std::size_t>(comm.size()));
    info->payload_words_by_rank.resize(static_cast<std::size_t>(comm.size()));
    for (int rank = 0; rank < comm.size(); ++rank) {
      info->messages_by_rank[static_cast<std::size_t>(rank)] =
          comm.messages_sent_from(rank);
      info->payload_words_by_rank[static_cast<std::size_t>(rank)] =
          comm.words_sent_from(rank);
    }
    info->faults_injected = faults.injected();
    info->retries = load(recovery.retries);
    info->reassignments = load(recovery.reassignments);
    info->heartbeat_misses = load(recovery.heartbeat_misses);
    info->stale_results = load(recovery.stale_results);
    info->row_rebuilds = load(recovery.row_rebuilds);
    info->sync_requests = load(recovery.sync_requests);
    info->workers_lost = load(recovery.workers_lost);
    info->fault_stats = faults;
  }
  if constexpr (obs::kEnabled) {
    auto& reg = obs::Registry::global();
    reg.counter("cluster.messages").add(comm.messages_sent());
    reg.counter("cluster.payload_words").add(comm.words_sent());
    reg.counter("cluster.row_replicas_served").add(master.replicas_served());
    reg.counter("cluster.row_deposits").add(load(recovery.deposits));
    reg.counter("cluster.ranks").add(static_cast<std::uint64_t>(comm.size()));
    reg.counter("cluster.faults_injected").add(faults.injected());
    reg.counter("cluster.retries").add(load(recovery.retries));
    reg.counter("cluster.reassignments").add(load(recovery.reassignments));
    reg.counter("cluster.heartbeat_misses").add(load(recovery.heartbeat_misses));
    reg.counter("cluster.stale_results").add(load(recovery.stale_results));
    reg.counter("cluster.row_rebuilds").add(load(recovery.row_rebuilds));
    reg.counter("cluster.sync_requests").add(load(recovery.sync_requests));
    reg.counter("cluster.workers_lost").add(load(recovery.workers_lost));
    for (int rank = 0; rank < comm.size(); ++rank) {
      const std::string suffix = ".rank" + std::to_string(rank);
      reg.counter("cluster.messages" + suffix)
          .add(comm.messages_sent_from(rank));
      reg.counter("cluster.payload_words" + suffix)
          .add(comm.words_sent_from(rank));
    }
  }
  core::publish_finder_stats(result.stats, s.length(), "cluster.");
  return result;
}

}  // namespace repro::cluster
