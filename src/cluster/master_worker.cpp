#include "cluster/master_worker.hpp"

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "align/bottom_row_store.hpp"
#include "align/override_triangle.hpp"
#include "align/traceback.hpp"
#include "cluster/mpisim.hpp"
#include "core/task_queue.hpp"
#include "core/top_alignment_finder.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace repro::cluster {
namespace {

using core::GroupTask;
using core::TaskKey;

enum Tag : int {
  kReqWork = 1,  // W->M: initial hello
  kAssign,       // M->W: [r0, count, version]
  kResult,       // W->M: [r0, count, version, scores...; rows... when
                 //        version==0 in replica mode]
  kRowRequest,   // any->owner: [r]  (owner = master in replica mode)
  kRowReply,     // owner->any: [r, row values...]
  kRowDeposit,   // W->owner W: [r, row values...]  (partitioned mode, v0)
  kUpdate,       // M->W: [new_version, npairs, i0, j0, i1, j1, ...]
  kShutdown,     // M->W: []
};

struct KeyCmp {
  bool operator()(const TaskKey& a, const TaskKey& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.r < b.r;
  }
};

/// Owner rank of row r under partitioned storage.
int owner_of(int r, int ranks) { return 1 + (r % (ranks - 1)); }

Message make_row_message(int tag, int r, std::span<const std::int16_t> row) {
  Message msg;
  msg.tag = tag;
  msg.data.reserve(row.size() + 1);
  msg.data.push_back(r);
  for (std::int16_t v : row) msg.data.push_back(v);
  return msg;
}

std::vector<std::int16_t> row_from_message(const Message& msg) {
  std::vector<std::int16_t> row(msg.data.size() - 1);
  for (std::size_t x = 1; x < msg.data.size(); ++x)
    row[x - 1] = static_cast<std::int16_t>(msg.data[x]);
  return row;
}

/// Master (rank 0): task queue, acceptance + traceback; in replica mode
/// also the bottom-row archive.
class Master {
 public:
  Master(Comm& comm, const seq::Sequence& s, const seq::Scoring& scoring,
         const ClusterOptions& options, int lanes)
      : comm_(comm),
        s_(s),
        scoring_(scoring),
        options_(options),
        triangle_(s.length()),
        lanes_(lanes),
        groups_(core::make_groups(s.length(), lanes)) {
    if (options.row_storage == RowStorage::kMasterReplica)
      rows_.emplace(s.length());
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      queue_.push(static_cast<int>(gi), groups_[gi].key());
      group_of_r0_[groups_[gi].r0] = static_cast<int>(gi);
    }
  }

  core::FinderResult run(ClusterRunInfo* info) {
    util::WallTimer timer;
    const int workers = comm_.size() - 1;
    bool done = false;
    while (!done) {
      done = try_accept();
      if (!done) {
        assign_idle();
        const bool all_idle = static_cast<int>(idle_.size()) == workers;
        if (inflight_.empty() && all_idle) {
          // Nothing running and nothing assignable: with an up-to-date,
          // unblocked head try_accept would have progressed — exhausted.
          done = true;
        }
      }
      if (done) break;
      auto [src, msg] = comm_.recv_any(0);
      handle(src, msg);
    }
    comm_.broadcast(0, {kShutdown, {}});

    core::FinderResult res;
    res.tops = std::move(tops_);
    res.stats = stats_;
    res.stats.seconds = timer.seconds();
    if (info != nullptr) {
      info->messages = comm_.messages_sent();
      info->payload_words = comm_.words_sent();
      info->row_replicas_served = replicas_served_;
      info->row_deposits = deposits_;
      info->messages_by_rank.resize(static_cast<std::size_t>(comm_.size()));
      info->payload_words_by_rank.resize(static_cast<std::size_t>(comm_.size()));
      for (int rank = 0; rank < comm_.size(); ++rank) {
        info->messages_by_rank[static_cast<std::size_t>(rank)] =
            comm_.messages_sent_from(rank);
        info->payload_words_by_rank[static_cast<std::size_t>(rank)] =
            comm_.words_sent_from(rank);
      }
    }
    if constexpr (obs::kEnabled) {
      auto& reg = obs::Registry::global();
      reg.counter("cluster.messages").add(comm_.messages_sent());
      reg.counter("cluster.payload_words").add(comm_.words_sent());
      reg.counter("cluster.row_replicas_served").add(replicas_served_);
      reg.counter("cluster.row_deposits").add(deposits_);
      reg.counter("cluster.ranks").add(static_cast<std::uint64_t>(comm_.size()));
      for (int rank = 0; rank < comm_.size(); ++rank) {
        const std::string suffix = ".rank" + std::to_string(rank);
        reg.counter("cluster.messages" + suffix)
            .add(comm_.messages_sent_from(rank));
        reg.counter("cluster.payload_words" + suffix)
            .add(comm_.words_sent_from(rank));
      }
    }
    core::publish_finder_stats(res.stats, s_.length(), "cluster.");
    return res;
  }

 private:
  int version() const { return static_cast<int>(tops_.size()); }

  bool group_stale(int gi) const {
    const GroupTask& g = groups_[static_cast<std::size_t>(gi)];
    return g.version[static_cast<std::size_t>(g.best_member())] != version();
  }

  /// Blocks until the owner's reply for row r arrives, servicing every other
  /// message normally in the meantime (results keep flowing during the
  /// master's fetch — only acceptance is on hold).
  std::vector<std::int16_t> await_row(int r) {
    for (;;) {
      auto [src, msg] = comm_.recv_any(0);
      if (msg.tag == kRowReply && msg.data.at(0) == r) return row_from_message(msg);
      handle(src, msg);
    }
  }

  /// Original bottom row of r for the acceptance traceback.
  std::span<const std::int16_t> original_row(int r) {
    if (rows_.has_value()) return rows_->row(r);
    const auto it = fetched_.find(r);
    if (it != fetched_.end()) return it->second;
    comm_.send(0, owner_of(r, comm_.size()), {kRowRequest, {r}});
    return fetched_.emplace(r, await_row(r)).first->second;
  }

  /// Accepts as long as the deterministic guard allows; returns true when
  /// the search is complete.
  bool try_accept() {
    for (;;) {
      if (static_cast<int>(tops_.size()) >= options_.finder.num_top_alignments)
        return true;
      const auto head = queue_.peek();
      if (!head || group_stale(head->second)) return false;
      if (!inflight_.empty() && KeyCmp{}(*inflight_.begin(), head->first))
        return false;  // an in-flight bound could still order before the head
      if (head->first.score < options_.finder.min_score) return true;

      // Fetching the original row may process further results; re-validate
      // the head afterwards (its key cannot have *improved*, but an
      // in-flight bound may have landed above it).
      const GroupTask& head_group = groups_[static_cast<std::size_t>(head->second)];
      const int b = head_group.best_member();
      const int r = head_group.r0 + b;
      const std::span<const std::int16_t> original = original_row(r);
      const auto head2 = queue_.peek();
      if (!head2 || head2->second != head->second || group_stale(head2->second))
        continue;
      if (!inflight_.empty() && KeyCmp{}(*inflight_.begin(), head2->first))
        return false;

      const auto popped = queue_.pop_best();
      REPRO_CHECK(popped && *popped == head->second);
      GroupTask& g = groups_[static_cast<std::size_t>(*popped)];
      core::TopAlignment top =
          core::accept_alignment(s_, scoring_, triangle_, original, r,
                                 g.score[static_cast<std::size_t>(b)]);
      // Broadcast the triangle growth before any assign can reference the
      // new version (per-channel FIFO makes the ordering safe).
      Message update;
      update.tag = kUpdate;
      update.data.push_back(version() + 1);
      update.data.push_back(static_cast<std::int32_t>(top.pairs.size()));
      for (const auto& [i, j] : top.pairs) {
        update.data.push_back(i);
        update.data.push_back(j);
      }
      comm_.broadcast(0, update);
      tops_.push_back(std::move(top));
      ++stats_.tracebacks;
      queue_.push(*popped, g.key());
    }
  }

  void assign_idle() {
    while (!idle_.empty()) {
      const auto gi = queue_.pop_best_if([this](int g) { return group_stale(g); });
      if (!gi) break;
      const int w = idle_.back();
      idle_.pop_back();
      GroupTask& g = groups_[static_cast<std::size_t>(*gi)];
      inflight_.insert(g.key());
      assigned_version_[g.r0] = version();
      comm_.send(0, w, {kAssign, {g.r0, g.count, version()}});
    }
  }

  void handle(int src, const Message& msg) {
    switch (msg.tag) {
      case kReqWork:
        idle_.push_back(src);
        break;
      case kRowRequest: {
        REPRO_CHECK_MSG(rows_.has_value(),
                        "row request reached the master in partitioned mode");
        const int r = msg.data.at(0);
        comm_.send(0, src, make_row_message(kRowReply, r, rows_->row(r)));
        ++replicas_served_;
        break;
      }
      case kResult:
        apply_result(src, msg);
        break;
      default:
        REPRO_CHECK_MSG(false, "master received unexpected tag " << msg.tag);
    }
  }

  void apply_result(int src, const Message& msg) {
    const int r0 = msg.data.at(0);
    const int count = msg.data.at(1);
    const int v = msg.data.at(2);
    const auto it = group_of_r0_.find(r0);
    REPRO_CHECK(it != group_of_r0_.end());
    GroupTask& g = groups_[static_cast<std::size_t>(it->second)];
    REPRO_CHECK(g.count == count);
    REPRO_CHECK_MSG(assigned_version_.at(r0) == v, "result version mismatch");

    const TaskKey bound = g.key();
    const auto inflight_it = inflight_.find(bound);
    REPRO_CHECK(inflight_it != inflight_.end());
    inflight_.erase(inflight_it);

    std::size_t cursor = 3 + static_cast<std::size_t>(count);
    for (int k = 0; k < count; ++k) {
      const int r = r0 + k;
      auto& member_version = g.version[static_cast<std::size_t>(k)];
      if (member_version == -1) {
        REPRO_CHECK(v == 0);
        ++stats_.first_alignments;
        if (rows_.has_value()) {
          // Replica mode: the worker appended the bottom row for archival.
          const auto len = static_cast<std::size_t>(s_.length() - r);
          std::vector<align::Score> row(
              msg.data.begin() + static_cast<std::ptrdiff_t>(cursor),
              msg.data.begin() + static_cast<std::ptrdiff_t>(cursor + len));
          cursor += len;
          rows_->store(r, row);
        } else {
          ++deposits_;  // the worker deposited it with the row's owner
        }
      } else if (member_version == v) {
        ++stats_.speculative;
      } else {
        ++stats_.realignments;
      }
      g.score[static_cast<std::size_t>(k)] = msg.data.at(3 + static_cast<std::size_t>(k));
      member_version = v;
    }
    REPRO_CHECK(cursor == msg.data.size());
    // Mirror the engines' accounting: lanes x rows x columns per group.
    stats_.cells += static_cast<std::uint64_t>(g.r0 + g.count - 1) *
                    static_cast<std::uint64_t>(s_.length() - g.r0) *
                    static_cast<std::uint64_t>(lanes_);
    ++stats_.queue_pops;
    queue_.push(it->second, g.key());
    idle_.push_back(src);
  }

  Comm& comm_;
  const seq::Sequence& s_;
  const seq::Scoring& scoring_;
  const ClusterOptions& options_;
  align::OverrideTriangle triangle_;
  std::optional<align::BottomRowStore> rows_;  // replica mode only
  std::unordered_map<int, std::vector<std::int16_t>> fetched_;  // partitioned
  int lanes_;
  std::vector<GroupTask> groups_;
  core::GroupQueue queue_;
  std::unordered_map<int, int> group_of_r0_;
  std::unordered_map<int, int> assigned_version_;
  std::multiset<TaskKey, KeyCmp> inflight_;
  std::vector<int> idle_;
  std::vector<core::TopAlignment> tops_;
  core::FinderStats stats_;
  std::uint64_t replicas_served_ = 0;
  std::uint64_t deposits_ = 0;
};

/// Raised inside a worker when the master shuts the run down while the
/// worker is blocked on a row-replica reply (its in-flight result is no
/// longer needed — the search already completed).
struct ShutdownSignal {};

/// Worker rank: private engine, replicated triangle, cached original rows;
/// under partitioned storage also the owner of every row r with
/// owner_of(r) == rank.
class Worker {
 public:
  Worker(Comm& comm, int rank, const seq::Sequence& s,
         const seq::Scoring& scoring, const ClusterOptions& options,
         align::Engine& engine)
      : comm_(comm),
        rank_(rank),
        s_(s),
        scoring_(scoring),
        options_(options),
        engine_(engine),
        triangle_(s.length()) {}

  void run() {
    comm_.send(rank_, 0, {kReqWork, {}});
    try {
      for (;;) {
        auto [src, msg] = comm_.recv_any(rank_);
        if (!dispatch(src, msg)) return;
      }
    } catch (const ShutdownSignal&) {
      // master completed the search mid-task
    }
  }

 private:
  bool partitioned() const {
    return options_.row_storage == RowStorage::kPartitioned;
  }

  /// Handles one message; returns false on shutdown.
  bool dispatch(int src, const Message& msg) {
    switch (msg.tag) {
      case kShutdown:
        return false;
      case kUpdate:
        apply_update(msg);
        return true;
      case kAssign:
        handle_assign(msg);
        return true;
      case kRowRequest:
        serve_row(src, msg.data.at(0));
        return true;
      case kRowDeposit:
        owned_rows_.emplace(msg.data.at(0), row_from_message(msg));
        return true;
      default:
        REPRO_CHECK_MSG(false, "worker " << rank_ << " got unexpected tag "
                                         << msg.tag << " from " << src);
        return false;
    }
  }

  void apply_update(const Message& msg) {
    const int new_version = msg.data.at(0);
    const int npairs = msg.data.at(1);
    REPRO_CHECK(new_version == version_ + 1);
    for (int p = 0; p < npairs; ++p)
      triangle_.set(msg.data.at(2 + 2 * static_cast<std::size_t>(p)),
                    msg.data.at(3 + 2 * static_cast<std::size_t>(p)));
    version_ = new_version;
  }

  void serve_row(int src, int r) {
    REPRO_CHECK_MSG(partitioned(), "replica mode has no worker-owned rows");
    const auto it = owned_rows_.find(r);
    REPRO_CHECK_MSG(it != owned_rows_.end(),
                    "rank " << rank_ << " asked for unowned/undeposited row "
                            << r);
    comm_.send(rank_, src, make_row_message(kRowReply, r, it->second));
  }

  /// Original bottom row of r, from the local cache, own partition, or the
  /// row's owner (master in replica mode, a peer worker in partitioned
  /// mode). While blocked on the reply the worker keeps servicing peer
  /// requests and deposits — otherwise two waiting owners would deadlock.
  const std::vector<std::int16_t>& original_row(int r) {
    if (const auto it = row_cache_.find(r); it != row_cache_.end())
      return it->second;
    if (partitioned()) {
      if (const auto it = owned_rows_.find(r); it != owned_rows_.end())
        return it->second;
    }
    const int owner = partitioned() ? owner_of(r, comm_.size()) : 0;
    comm_.send(rank_, owner, {kRowRequest, {r}});
    for (;;) {
      auto [src, msg] = comm_.recv_any(rank_);
      if (msg.tag == kRowReply) {
        REPRO_CHECK(msg.data.at(0) == r);
        return row_cache_.emplace(r, row_from_message(msg)).first->second;
      }
      if (msg.tag == kShutdown) throw ShutdownSignal{};
      // Updates may overtake the reply (they only affect future assigns);
      // peer row requests and deposits must be serviced to avoid deadlock.
      REPRO_CHECK(msg.tag != kAssign);  // we are not idle
      dispatch(src, msg);
    }
  }

  void handle_assign(const Message& assign) {
    const int r0 = assign.data.at(0);
    const int count = assign.data.at(1);
    const int v = assign.data.at(2);
    REPRO_CHECK_MSG(v == version_, "assign version " << v
                                                     << " != replica version "
                                                     << version_);
    const int m = s_.length();

    align::GroupJob job;
    job.seq = s_.codes();
    job.scoring = &scoring_;
    job.overrides = v == 0 ? nullptr : &triangle_;
    job.r0 = r0;
    job.count = count;
    out_rows_.resize(static_cast<std::size_t>(count));
    std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
      out_rows_[static_cast<std::size_t>(k)].resize(
          static_cast<std::size_t>(m - (r0 + k)));
      outs[static_cast<std::size_t>(k)] = out_rows_[static_cast<std::size_t>(k)];
    }
    engine_.align(job, outs);

    Message result;
    result.tag = kResult;
    result.data = {r0, count, v};
    for (int k = 0; k < count; ++k) {
      const int r = r0 + k;
      const auto& row = out_rows_[static_cast<std::size_t>(k)];
      align::Score score;
      if (v == 0) {
        score = align::find_best_end(row).score;
        std::vector<std::int16_t> narrow(row.size());
        for (std::size_t x = 0; x < row.size(); ++x)
          narrow[x] = static_cast<std::int16_t>(row[x]);
        if (partitioned()) {
          // Route the row to its owner (in-process sends are causally
          // ordered before our result reaches the master, so the deposit is
          // always in the owner's mailbox before any consumer's request;
          // a real-MPI port would acknowledge deposits before reporting).
          const int owner = owner_of(r, comm_.size());
          if (owner == rank_) {
            owned_rows_.emplace(r, std::move(narrow));
          } else {
            comm_.send(rank_, owner, make_row_message(kRowDeposit, r, narrow));
            row_cache_.emplace(r, std::move(narrow));  // keep our own copy
          }
        } else {
          // Replica mode: cache locally; the archive copy rides the result.
          row_cache_.emplace(r, std::move(narrow));
        }
      } else {
        score = align::find_best_end(row, original_row(r)).score;
      }
      result.data.push_back(score);
    }
    if (v == 0 && !partitioned()) {
      for (int k = 0; k < count; ++k)
        for (align::Score x : out_rows_[static_cast<std::size_t>(k)])
          result.data.push_back(x);
    }
    comm_.send(rank_, 0, std::move(result));
  }

  Comm& comm_;
  int rank_;
  const seq::Sequence& s_;
  const seq::Scoring& scoring_;
  const ClusterOptions& options_;
  align::Engine& engine_;
  align::OverrideTriangle triangle_;
  int version_ = 0;
  std::unordered_map<int, std::vector<std::int16_t>> row_cache_;
  std::unordered_map<int, std::vector<std::int16_t>> owned_rows_;
  std::vector<std::vector<align::Score>> out_rows_;
};

}  // namespace

core::FinderResult find_top_alignments_cluster(const seq::Sequence& s,
                                               const seq::Scoring& scoring,
                                               const ClusterOptions& options,
                                               const align::EngineFactory& factory,
                                               ClusterRunInfo* info) {
  REPRO_CHECK(options.ranks >= 1);
  REPRO_CHECK(options.finder.min_score >= 1);
  REPRO_CHECK_MSG(options.finder.memory == core::MemoryMode::kArchiveRows,
                  "the distributed finder manages rows via RowStorage; "
                  "MemoryMode::kRecomputeRows applies to the sequential "
                  "finder only");
  REPRO_CHECK_MSG(options.finder.traceback == core::TracebackMode::kFullMatrix,
                  "the distributed master uses the full-matrix traceback");
  if (options.ranks == 1) {
    // Degenerate single-rank mode: no workers to message; run sequentially.
    const auto engine = factory();
    return core::find_top_alignments(s, scoring, options.finder, *engine);
  }

  std::vector<std::unique_ptr<align::Engine>> engines(
      static_cast<std::size_t>(options.ranks));
  for (int w = 1; w < options.ranks; ++w) {
    engines[static_cast<std::size_t>(w)] = factory();
    REPRO_CHECK(engines[static_cast<std::size_t>(w)] != nullptr);
  }
  const int lanes = engines[1]->lanes();
  for (int w = 2; w < options.ranks; ++w)
    REPRO_CHECK_MSG(engines[static_cast<std::size_t>(w)]->lanes() == lanes,
                    "all worker engines must have the same lane count");

  Comm comm(options.ranks);
  Master master(comm, s, scoring, options, lanes);
  core::FinderResult result;
  run_ranks(comm, [&](int rank) {
    if (rank == 0) {
      result = master.run(info);
    } else {
      Worker worker(comm, rank, s, scoring, options,
                    *engines[static_cast<std::size_t>(rank)]);
      worker.run();
    }
  });
  return result;
}

}  // namespace repro::cluster
