// Deterministic fault plans for the message substrate (chaos testing).
//
// The paper's cluster finder assumes a reliable Myrinet interconnect; a
// production deployment cannot. A FaultPlan is a *pre-computed, seeded*
// schedule of message faults — drop, bounded delay, duplicate delivery, and
// rank crash — that Comm (cluster/mpisim.hpp) injects while preserving FIFO
// ordering within each (source, destination) channel. Because every fault
// is keyed on a deterministic op index (the Nth send on a channel, or the
// Nth communication op a rank performs) rather than on wall-clock time, a
// plan is fully reproducible from its seed or its spec string, and the
// chaos suite (tests/cluster_fault_test.cpp) can assert that the recovered
// run accepts byte-identical top alignments under every schedule.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace repro::cluster {

enum class FaultKind {
  kDrop,       ///< the Nth send on (from, to) is silently discarded
  kDelay,      ///< the Nth send on (from, to) is held for `ticks` net ticks
               ///< (later sends on the channel queue behind it — FIFO holds)
  kDuplicate,  ///< the Nth send on (from, to) is delivered twice, back to back
  kCrash,      ///< rank `from` stops at its Nth communication op (its channel
               ///< closes; peers observe ChannelClosed instead of silence)
};

struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  int from = 0;            ///< sender rank (kCrash: the crashing rank)
  int to = 0;              ///< receiver rank (unused by kCrash)
  std::uint64_t op = 0;    ///< 0-based channel send index, or rank op index
                           ///< for kCrash
  std::uint64_t ticks = 0; ///< kDelay only: release after this many net ticks
};

/// An ordered set of fault events. Empty plan = fault-free run.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] bool schedules_crash() const;
  /// Ranks scheduled to crash (deduplicated).
  [[nodiscard]] std::vector<int> crashed_ranks() const;
  /// True when at least one event is a kDelay (Comm then polls its waits so
  /// held messages are guaranteed to be released).
  [[nodiscard]] bool has_delays() const;

  /// Round-trippable spec string, one event per ';':
  ///   drop:from=1,to=0,op=3
  ///   delay:from=0,to=2,op=0,ticks=64
  ///   dup:from=2,to=0,op=5
  ///   crash:rank=3,op=40
  [[nodiscard]] std::string to_string() const;

  /// Parses the spec grammar above; throws std::runtime_error with the
  /// offending token on malformed input. Whitespace is ignored.
  static FaultPlan parse(std::string_view spec);

  /// Deterministic seeded chaos schedule for a `ranks`-rank communicator:
  /// per-channel drop/delay/duplicate events plus at most workers-1 rank
  /// crashes — rank 0 (the master) never crashes and at least one worker
  /// always survives, the regime in which the finder guarantees recovery.
  static FaultPlan from_seed(std::uint64_t seed, int ranks);
};

/// Injection counts, filled in by Comm as the plan fires. A scheduled event
/// whose (channel, op) is never reached does not count.
struct FaultStats {
  std::uint64_t drops = 0;
  std::uint64_t delays = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t crashes = 0;

  [[nodiscard]] std::uint64_t injected() const {
    return drops + delays + duplicates + crashes;
  }
};

}  // namespace repro::cluster
