#include "cluster/mpisim.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "util/check.hpp"

namespace repro::cluster {
namespace {

/// Poll quantum for waits that must make progress without a notify: held
/// (delayed) messages are released on tick advancement, and ticks advance
/// on sends and on these polls, so a delayed message is never stranded.
constexpr auto kTickQuantum = std::chrono::milliseconds(1);

}  // namespace

Comm::Comm(int size) : Comm(size, FaultPlan{}) {}

Comm::Comm(int size, FaultPlan plan)
    : per_rank_(static_cast<std::size_t>(size)),
      plan_(std::move(plan)),
      closed_(static_cast<std::size_t>(size)) {
  REPRO_CHECK(size >= 1);
  boxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
    boxes_.back()->held.resize(static_cast<std::size_t>(size));
  }
  init_plan();
}

void Comm::init_plan() {
  const auto n = static_cast<std::size_t>(size());
  channel_sends_.assign(n * n, 0);
  rank_ops_.assign(n, 0);
  crash_at_.assign(n, std::numeric_limits<std::uint64_t>::max());
  by_channel_.assign(n * n, {});
  fault_ = !plan_.empty();
  has_delays_ = plan_.has_delays();
  for (const FaultEvent& ev : plan_.events) {
    REPRO_CHECK(ev.from >= 0 && ev.from < size());
    if (ev.kind == FaultKind::kCrash) {
      auto& at = crash_at_[static_cast<std::size_t>(ev.from)];
      at = std::min(at, std::max<std::uint64_t>(ev.op, 1));
      continue;
    }
    REPRO_CHECK(ev.to >= 0 && ev.to < size());
    by_channel_[static_cast<std::size_t>(ev.from) * n +
                static_cast<std::size_t>(ev.to)]
        .emplace_back(ev.op, &ev);
  }
  for (auto& channel : by_channel_)
    std::sort(channel.begin(), channel.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
}

const FaultEvent* Comm::event_for(int from, int to, std::uint64_t op) const {
  const auto& channel =
      by_channel_[static_cast<std::size_t>(from) * static_cast<std::size_t>(size()) +
                  static_cast<std::size_t>(to)];
  const auto it = std::lower_bound(
      channel.begin(), channel.end(), op,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  if (it != channel.end() && it->first == op) return it->second;
  return nullptr;
}

void Comm::note_op(int rank) {
  if (!fault_) return;
  auto& ops = rank_ops_[static_cast<std::size_t>(rank)];
  ++ops;  // own-thread only: each rank is driven by a single thread
  if (ops >= crash_at_[static_cast<std::size_t>(rank)]) {
    crashes_.fetch_add(1, std::memory_order_relaxed);
    crash_at_[static_cast<std::size_t>(rank)] =
        std::numeric_limits<std::uint64_t>::max();  // count the crash once
    throw RankCrashed(rank);
  }
}

bool Comm::flush_held(Mailbox& box) {
  bool released = false;
  const std::uint64_t now = tick_.load(std::memory_order_relaxed);
  for (std::size_t from = 0; from < box.held.size(); ++from) {
    auto& channel = box.held[from];
    while (!channel.empty() && channel.front().release_tick <= now) {
      box.queue.emplace_back(static_cast<int>(from),
                             std::move(channel.front().msg));
      channel.pop_front();
      released = true;
    }
  }
  return released;
}

void Comm::send(int from, int to, Message msg) {
  REPRO_CHECK(from >= 0 && from < size() && to >= 0 && to < size());
  note_op(from);
  messages_.fetch_add(1, std::memory_order_relaxed);
  words_.fetch_add(msg.data.size() + 1, std::memory_order_relaxed);
  RankCounters& rc = per_rank_[static_cast<std::size_t>(from)];
  rc.messages.fetch_add(1, std::memory_order_relaxed);
  rc.words.fetch_add(msg.data.size() + 1, std::memory_order_relaxed);
  tick_.fetch_add(1, std::memory_order_relaxed);
  if (closed_[static_cast<std::size_t>(to)].load(std::memory_order_acquire))
    return;  // the peer exited; the message vanishes on the wire
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  {
    std::lock_guard lock(box.mutex);
    const FaultEvent* ev = nullptr;
    if (fault_) {
      const std::size_t channel = static_cast<std::size_t>(from) *
                                      static_cast<std::size_t>(size()) +
                                  static_cast<std::size_t>(to);
      ev = event_for(from, to, channel_sends_[channel]);
      ++channel_sends_[channel];
    }
    auto& held = box.held[static_cast<std::size_t>(from)];
    const auto deliver = [&](Message m) {
      // FIFO per channel: while earlier messages are held, later ones must
      // queue behind them (release_tick 0 = releasable immediately after).
      if (!held.empty())
        held.push_back({std::move(m), 0});
      else
        box.queue.emplace_back(from, std::move(m));
    };
    if (ev == nullptr) {
      deliver(std::move(msg));
    } else {
      switch (ev->kind) {
        case FaultKind::kDrop:
          drops_.fetch_add(1, std::memory_order_relaxed);
          break;
        case FaultKind::kDuplicate: {
          duplicates_.fetch_add(1, std::memory_order_relaxed);
          Message copy = msg;
          deliver(std::move(copy));
          deliver(std::move(msg));
          break;
        }
        case FaultKind::kDelay:
          delays_.fetch_add(1, std::memory_order_relaxed);
          held.push_back(
              {std::move(msg),
               tick_.load(std::memory_order_relaxed) + std::max<std::uint64_t>(
                                                           ev->ticks, 1)});
          break;
        case FaultKind::kCrash:
          break;  // unreachable: crash events never map to channels
      }
    }
    flush_held(box);
  }
  box.cv.notify_all();
}

Message Comm::recv(int to, int from) {
  REPRO_CHECK(from >= 0 && from < size() && to >= 0 && to < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    flush_held(box);
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->first == from) {
        note_op(to);
        Message msg = std::move(it->second);
        box.queue.erase(it);
        return msg;
      }
    }
    if (closed_[static_cast<std::size_t>(from)].load(std::memory_order_acquire) &&
        box.held[static_cast<std::size_t>(from)].empty())
      throw ChannelClosed(from);
    if (has_delays_) {
      box.cv.wait_for(lock, kTickQuantum);
      tick_.fetch_add(1, std::memory_order_relaxed);
    } else {
      box.cv.wait(lock);
    }
  }
}

Message Comm::recv_tagged(int to, int from, int tag) {
  REPRO_CHECK(from >= 0 && from < size() && to >= 0 && to < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    flush_held(box);
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->first == from && it->second.tag == tag) {
        note_op(to);
        Message msg = std::move(it->second);
        box.queue.erase(it);
        return msg;
      }
    }
    if (closed_[static_cast<std::size_t>(from)].load(std::memory_order_acquire) &&
        box.held[static_cast<std::size_t>(from)].empty())
      throw ChannelClosed(from);
    if (has_delays_) {
      box.cv.wait_for(lock, kTickQuantum);
      tick_.fetch_add(1, std::memory_order_relaxed);
    } else {
      box.cv.wait(lock);
    }
  }
}

void Comm::broadcast(int from, const Message& msg) {
  for (int to = 0; to < size(); ++to)
    if (to != from) send(from, to, msg);
}

void Comm::barrier(int rank) {
  if (size() == 1) return;
  if (rank == 0) {
    for (int w = 1; w < size(); ++w) recv_tagged(0, w, kBarrierTag);
    for (int w = 1; w < size(); ++w) send(0, w, {kBarrierTag, {}});
  } else {
    send(rank, 0, {kBarrierTag, {}});
    recv_tagged(rank, 0, kBarrierTag);
  }
}

std::pair<int, Message> Comm::recv_any(int to) {
  REPRO_CHECK(to >= 0 && to < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    flush_held(box);
    if (!box.queue.empty()) {
      note_op(to);
      auto front = std::move(box.queue.front());
      box.queue.pop_front();
      return front;
    }
    bool any_held = false;
    for (const auto& channel : box.held) any_held |= !channel.empty();
    if (!any_held && closed_count_.load(std::memory_order_acquire) >=
                         size() - (closed(to) ? 0 : 1))
      throw ChannelClosed(to);  // every peer is gone; nothing can arrive
    if (has_delays_) {
      box.cv.wait_for(lock, kTickQuantum);
      tick_.fetch_add(1, std::memory_order_relaxed);
    } else {
      box.cv.wait(lock);
    }
  }
}

std::optional<std::pair<int, Message>> Comm::recv_any_for(
    int to, std::chrono::milliseconds timeout) {
  REPRO_CHECK(to >= 0 && to < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lock(box.mutex);
  for (;;) {
    flush_held(box);
    if (!box.queue.empty()) {
      note_op(to);
      auto front = std::move(box.queue.front());
      box.queue.pop_front();
      return front;
    }
    bool any_held = false;
    for (const auto& channel : box.held) any_held |= !channel.empty();
    if (!any_held && closed_count_.load(std::memory_order_acquire) >=
                         size() - (closed(to) ? 0 : 1))
      throw ChannelClosed(to);
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    const auto slice = has_delays_
                           ? std::min<std::chrono::steady_clock::duration>(
                                 kTickQuantum, deadline - now)
                           : deadline - now;
    box.cv.wait_for(lock, slice);
    if (has_delays_) tick_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Comm::iprobe(int to) {
  REPRO_CHECK(to >= 0 && to < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  std::lock_guard lock(box.mutex);
  flush_held(box);
  return !box.queue.empty();
}

void Comm::close(int rank) {
  REPRO_CHECK(rank >= 0 && rank < size());
  if (closed_[static_cast<std::size_t>(rank)].exchange(
          true, std::memory_order_acq_rel))
    return;  // idempotent
  closed_count_.fetch_add(1, std::memory_order_acq_rel);
  // Wake every blocked receive so it can re-evaluate its closed condition.
  for (auto& box : boxes_) {
    { std::lock_guard lock(box->mutex); }
    box->cv.notify_all();
  }
}

bool Comm::closed(int rank) const {
  REPRO_CHECK(rank >= 0 && rank < size());
  return closed_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
}

int Comm::alive_ranks() const {
  return size() - closed_count_.load(std::memory_order_acquire);
}

FaultStats Comm::fault_stats() const {
  FaultStats stats;
  stats.drops = drops_.load(std::memory_order_relaxed);
  stats.delays = delays_.load(std::memory_order_relaxed);
  stats.duplicates = duplicates_.load(std::memory_order_relaxed);
  stats.crashes = crashes_.load(std::memory_order_relaxed);
  return stats;
}

std::uint64_t Comm::messages_sent() const {
  return messages_.load(std::memory_order_relaxed);
}

std::uint64_t Comm::words_sent() const {
  return words_.load(std::memory_order_relaxed);
}

std::uint64_t Comm::messages_sent_from(int rank) const {
  REPRO_CHECK(rank >= 0 && rank < size());
  return per_rank_[static_cast<std::size_t>(rank)].messages.load(
      std::memory_order_relaxed);
}

std::uint64_t Comm::words_sent_from(int rank) const {
  REPRO_CHECK(rank >= 0 && rank < size());
  return per_rank_[static_cast<std::size_t>(rank)].words.load(
      std::memory_order_relaxed);
}

void run_ranks(Comm& comm, const std::function<void(int)>& body) {
  std::mutex error_mutex;
  std::exception_ptr error;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(comm.size()));
  for (int rank = 0; rank < comm.size(); ++rank) {
    threads.emplace_back([&, rank] {
      try {
        body(rank);
      } catch (const RankCrashed&) {
        // A scheduled fault-plan death: the rank simply stops; survivors
        // observe its closed channel and recover.
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      comm.close(rank);
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace repro::cluster
