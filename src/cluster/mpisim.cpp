#include "cluster/mpisim.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "util/check.hpp"

namespace repro::cluster {

Comm::Comm(int size) : per_rank_(static_cast<std::size_t>(size)) {
  REPRO_CHECK(size >= 1);
  boxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

void Comm::send(int from, int to, Message msg) {
  REPRO_CHECK(from >= 0 && from < size() && to >= 0 && to < size());
  messages_.fetch_add(1, std::memory_order_relaxed);
  words_.fetch_add(msg.data.size() + 1, std::memory_order_relaxed);
  RankCounters& rc = per_rank_[static_cast<std::size_t>(from)];
  rc.messages.fetch_add(1, std::memory_order_relaxed);
  rc.words.fetch_add(msg.data.size() + 1, std::memory_order_relaxed);
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  {
    std::lock_guard lock(box.mutex);
    box.queue.emplace_back(from, std::move(msg));
  }
  box.cv.notify_all();
}

Message Comm::recv(int to, int from) {
  REPRO_CHECK(from >= 0 && from < size() && to >= 0 && to < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->first == from) {
        Message msg = std::move(it->second);
        box.queue.erase(it);
        return msg;
      }
    }
    box.cv.wait(lock);
  }
}

Message Comm::recv_tagged(int to, int from, int tag) {
  REPRO_CHECK(from >= 0 && from < size() && to >= 0 && to < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->first == from && it->second.tag == tag) {
        Message msg = std::move(it->second);
        box.queue.erase(it);
        return msg;
      }
    }
    box.cv.wait(lock);
  }
}

void Comm::broadcast(int from, const Message& msg) {
  for (int to = 0; to < size(); ++to)
    if (to != from) send(from, to, msg);
}

void Comm::barrier(int rank) {
  if (size() == 1) return;
  if (rank == 0) {
    for (int w = 1; w < size(); ++w) recv_tagged(0, w, kBarrierTag);
    for (int w = 1; w < size(); ++w) send(0, w, {kBarrierTag, {}});
  } else {
    send(rank, 0, {kBarrierTag, {}});
    recv_tagged(rank, 0, kBarrierTag);
  }
}

std::pair<int, Message> Comm::recv_any(int to) {
  REPRO_CHECK(to >= 0 && to < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  std::unique_lock lock(box.mutex);
  box.cv.wait(lock, [&box] { return !box.queue.empty(); });
  auto front = std::move(box.queue.front());
  box.queue.pop_front();
  return front;
}

bool Comm::iprobe(int to) {
  REPRO_CHECK(to >= 0 && to < size());
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  std::lock_guard lock(box.mutex);
  return !box.queue.empty();
}

std::uint64_t Comm::messages_sent() const {
  return messages_.load(std::memory_order_relaxed);
}

std::uint64_t Comm::words_sent() const {
  return words_.load(std::memory_order_relaxed);
}

std::uint64_t Comm::messages_sent_from(int rank) const {
  REPRO_CHECK(rank >= 0 && rank < size());
  return per_rank_[static_cast<std::size_t>(rank)].messages.load(
      std::memory_order_relaxed);
}

std::uint64_t Comm::words_sent_from(int rank) const {
  REPRO_CHECK(rank >= 0 && rank < size());
  return per_rank_[static_cast<std::size_t>(rank)].words.load(
      std::memory_order_relaxed);
}

void run_ranks(Comm& comm, const std::function<void(int)>& body) {
  std::mutex error_mutex;
  std::exception_ptr error;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(comm.size()));
  for (int rank = 0; rank < comm.size(); ++rank) {
    threads.emplace_back([&, rank] {
      try {
        body(rank);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace repro::cluster
