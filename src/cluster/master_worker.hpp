// Distributed-memory master/worker finder (paper §4.3) over the MPI-shaped
// message substrate (cluster/mpisim.hpp).
//
// Rank 0 is sacrificed as the master: it owns the task queue, the
// bottom-row archive, and the acceptance step (including the sequential
// traceback). Workers own a private engine and a replicated override
// triangle, kept current by update broadcasts; original bottom rows are
// fetched from the master on demand and cached ("once computed, the last
// row data never changes"). Acceptance uses the same deterministic guard as
// the shared-memory finder, so the accepted top alignments are identical
// for every rank count — and identical to the sequential algorithm's.
#pragma once

#include <cstdint>
#include <vector>

#include "align/engine.hpp"
#include "core/options.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"

namespace repro::cluster {

/// Where first-alignment bottom rows live (paper §4.3).
///   kMasterReplica — the paper's implementation: the master archives every
///     row; workers fetch replicas on demand and cache them. Requires the
///     master to hold the full m(m-1)/2 store (the paper notes this breaks
///     down past m ≈ 40000 at 2003 memory sizes).
///   kPartitioned — the paper's proposed alternative for that regime: rows
///     are partitioned over the workers by r; consumers (other workers, and
///     the master at traceback time) ask the *owner*, which services
///     requests whenever it touches its mailbox — modeling exactly the
///     polling concern the paper raises.
enum class RowStorage { kMasterReplica, kPartitioned };

struct ClusterOptions {
  /// Total ranks including the master; ranks == 1 runs a degenerate
  /// master-computes-everything mode (for testing the protocol plumbing).
  int ranks = 4;
  RowStorage row_storage = RowStorage::kMasterReplica;
  core::FinderOptions finder;
};

struct ClusterRunInfo {
  std::uint64_t messages = 0;
  std::uint64_t payload_words = 0;
  std::uint64_t row_replicas_served = 0;  ///< master-served (replica mode)
  std::uint64_t row_deposits = 0;         ///< owner deposits (partitioned mode)
  /// Per-sender breakdown, indexed by rank (rank 0 = master): separates
  /// master control traffic from worker results/deposits/replica replies.
  std::vector<std::uint64_t> messages_by_rank;
  std::vector<std::uint64_t> payload_words_by_rank;
};

core::FinderResult find_top_alignments_cluster(const seq::Sequence& s,
                                               const seq::Scoring& scoring,
                                               const ClusterOptions& options,
                                               const align::EngineFactory& factory,
                                               ClusterRunInfo* info = nullptr);

}  // namespace repro::cluster
