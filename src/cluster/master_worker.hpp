// Distributed-memory master/worker finder (paper §4.3) over the MPI-shaped
// message substrate (cluster/mpisim.hpp).
//
// Rank 0 is sacrificed as the master: it owns the task queue, the
// bottom-row archive, and the acceptance step (including the sequential
// traceback). Workers own a private engine and a replicated override
// triangle, kept current by update broadcasts; original bottom rows are
// fetched from the master on demand and cached ("once computed, the last
// row data never changes"). Acceptance uses the same deterministic guard as
// the shared-memory finder, so the accepted top alignments are identical
// for every rank count — and identical to the sequential algorithm's.
//
// Unlike the paper's reliable Myrinet deployment, this implementation is
// fault tolerant. The protocol survives message drops, bounded delays,
// duplicate deliveries, and worker crashes (injected deterministically via
// ClusterOptions::fault_plan) as long as the master and at least one worker
// stay alive:
//   * every master<->worker request is deduplicated by (group, version), so
//     timed-out work can be requeued and reassigned without double-applying;
//   * workers that fall behind the override-triangle version resynchronise
//     from the master (cumulative sync replies are idempotent);
//   * partitioned row shards are re-homed by recomputation: row ownership is
//     advisory routing, and any worker asked for a v0 bottom row it does not
//     hold rebuilds it deterministically from the sequence.
// Because results are deterministic functions of (group, version) and the
// acceptance guard is unchanged, the accepted top alignments under any such
// fault schedule are identical to the fault-free — and sequential — run's.
#pragma once

#include <cstdint>
#include <vector>

#include "align/engine.hpp"
#include "cluster/fault.hpp"
#include "core/options.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"

namespace repro::cluster {

/// Where first-alignment bottom rows live (paper §4.3).
///   kMasterReplica — the paper's implementation: the master archives every
///     row; workers fetch replicas on demand and cache them. Requires the
///     master to hold the full m(m-1)/2 store (the paper notes this breaks
///     down past m ≈ 40000 at 2003 memory sizes).
///   kPartitioned — the paper's proposed alternative for that regime: rows
///     are partitioned over the workers by r; consumers (other workers, and
///     the master at traceback time) ask the *owner*, which services
///     requests whenever it touches its mailbox — modeling exactly the
///     polling concern the paper raises.
enum class RowStorage { kMasterReplica, kPartitioned };

/// Timeout/retry tuning for the recovery protocol. Task deadlines and
/// proactive hello resends only arm when a fault plan is active (an
/// in-process fault-free run cannot lose messages, so arming them would
/// just add noise); closed-rank detection is always on, which is what
/// turns a worker dying mid-run from a hang into a recovered run.
struct FaultToleranceOptions {
  int task_timeout_ms = 150;  ///< master: assignment deadline before requeue
  int row_timeout_ms = 60;    ///< row-fetch / sync-request resend base
  int hello_timeout_ms = 80;  ///< worker: hello resend base until registered
  double backoff = 2.0;       ///< exponential backoff factor for resends
  int max_backoff_ms = 2000;  ///< resend interval cap
  int poll_ms = 20;           ///< master main-loop receive quantum
};

struct ClusterOptions {
  /// Total ranks including the master; ranks == 1 runs a degenerate
  /// master-computes-everything mode (for testing the protocol plumbing).
  int ranks = 4;
  RowStorage row_storage = RowStorage::kMasterReplica;
  core::FinderOptions finder;
  /// Deterministic fault schedule injected into the communicator. Must not
  /// crash rank 0 and must leave at least one worker alive — the regime in
  /// which recovery (and identical output) is guaranteed. Empty = reliable.
  FaultPlan fault_plan;
  FaultToleranceOptions ft;
};

struct ClusterRunInfo {
  std::uint64_t messages = 0;
  std::uint64_t payload_words = 0;
  std::uint64_t row_replicas_served = 0;  ///< master-served (replica mode)
  std::uint64_t row_deposits = 0;  ///< cross-rank owner deposits (partitioned)
  /// Per-sender breakdown, indexed by rank (rank 0 = master): separates
  /// master control traffic from worker results/deposits/replica replies.
  std::vector<std::uint64_t> messages_by_rank;
  std::vector<std::uint64_t> payload_words_by_rank;

  /// Recovery accounting (all zero on a fault-free run).
  std::uint64_t faults_injected = 0;   ///< drops+delays+dups+crashes fired
  std::uint64_t retries = 0;           ///< timed-out requests resent/requeued
  std::uint64_t reassignments = 0;     ///< tasks re-homed off dead workers
  std::uint64_t heartbeat_misses = 0;  ///< assignment deadlines that lapsed
  std::uint64_t stale_results = 0;     ///< duplicate/superseded results dropped
  std::uint64_t row_rebuilds = 0;      ///< partitioned rows recomputed on demand
  std::uint64_t sync_requests = 0;     ///< worker version resynchronisations
  std::uint64_t workers_lost = 0;      ///< ranks observed dead by the master
  FaultStats fault_stats;              ///< per-kind injection breakdown
};

core::FinderResult find_top_alignments_cluster(const seq::Sequence& s,
                                               const seq::Scoring& scoring,
                                               const ClusterOptions& options,
                                               const align::EngineFactory& factory,
                                               ClusterRunInfo* info = nullptr);

}  // namespace repro::cluster
