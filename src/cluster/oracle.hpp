// Memoising alignment oracle for the virtual-cluster simulator.
//
// The Fig.-8 experiment measures scaling to 128 processors on hardware this
// reproduction does not have; the VirtualCluster replays the *real*
// scheduling algorithm under virtual time. The oracle supplies the real
// alignment scores that drive those scheduling decisions: group member
// scores as a function of (group, triangle version), computed with a real
// engine and cached. Because the acceptance sequence is deterministic (the
// same guard as the sequential finder), triangle state at version v is
// identical across simulations with different processor counts, so cached
// scores are shared by the whole sweep — only the small fraction of
// speculative realignments a particular processor count provokes is
// computed fresh.
//
// The same determinism carries over to the simulator's failure model
// (ClusterModel::worker_failure_times): a task lost to a worker death is
// requeued and recomputed at the then-current version, so member_scores is
// simply consulted again — scores are a pure function of (group, version),
// which is exactly why the live protocol's recovery preserves the accepted
// sequence.
#pragma once

#include <map>
#include <vector>

#include "align/bottom_row_store.hpp"
#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "core/options.hpp"
#include "core/task_queue.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"

namespace repro::cluster {

class AlignmentOracle {
 public:
  AlignmentOracle(const seq::Sequence& s, const seq::Scoring& scoring,
                  align::Engine& engine);

  [[nodiscard]] const seq::Sequence& sequence() const { return s_; }
  [[nodiscard]] int lanes() const;
  [[nodiscard]] const std::vector<core::GroupTask>& group_layout() const {
    return layout_;
  }

  /// Resets the replayed triangle to version 0 for a fresh simulation.
  void begin_run();

  [[nodiscard]] int version() const { return version_; }

  /// Member scores of group `gi` aligned against the current triangle.
  /// Cached across runs; `expected_version` must equal version().
  const std::vector<align::Score>& member_scores(int gi, int expected_version);

  /// Advances the triangle by accepting split r with the given score; the
  /// acceptance sequence is recorded on the first run and verified (and the
  /// traceback skipped) on replays. Returns the accepted alignment.
  const core::TopAlignment& accept(int r, align::Score expected);

  /// Alignments actually computed by the engine (cache misses) — the
  /// speculation-overhead measure ("up to 8.4 % more alignments", §5.2).
  [[nodiscard]] std::uint64_t computed_alignments() const { return computed_; }

  [[nodiscard]] const std::vector<core::TopAlignment>& accepted() const {
    return accepted_;
  }

 private:
  const seq::Sequence& s_;
  const seq::Scoring& scoring_;
  align::Engine& engine_;
  align::OverrideTriangle triangle_;
  align::BottomRowStore rows_;
  std::vector<core::GroupTask> layout_;  // geometry only (r0, count)
  int version_ = 0;
  std::map<std::pair<int, int>, std::vector<align::Score>> cache_;
  std::vector<core::TopAlignment> accepted_;
  std::uint64_t computed_ = 0;
  std::vector<std::vector<align::Score>> out_rows_;
};

}  // namespace repro::cluster
