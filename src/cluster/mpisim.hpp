// An in-process message-passing substrate with MPI-shaped semantics.
//
// The paper's distributed finder is written against MPI (§4.3). No MPI
// implementation is assumed here; ranks are threads of one process and
// messages are moved queues, but the programming model is the same:
// explicit ranks, tagged messages, blocking receives, FIFO ordering per
// (source, destination) channel, no shared state between ranks other than
// what is messaged. The master/worker protocol (master_worker.cpp) uses
// only this interface, so porting it to real MPI is mechanical.
//
// Unlike the paper's reliable Myrinet, this substrate models failure:
//   * A seeded FaultPlan (cluster/fault.hpp) injects message drops, bounded
//     delays, duplicate deliveries and rank crashes at deterministic op
//     counts, preserving FIFO order within each (source, destination)
//     channel (a delayed message holds the channel's later messages behind
//     it until release).
//   * Channels close: when a rank's body exits — normally, by error, or by
//     a scheduled crash — run_ranks closes it, and a receive that can never
//     be satisfied (peer closed, nothing queued or held) throws
//     ChannelClosed instead of blocking forever. This is the fix for the
//     recv-after-peer-exit deadlock: any peer death is observable.
//   * recv_any_for bounds a receive by a timeout, the primitive under the
//     master's heartbeats and retry/reassignment logic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/fault.hpp"

namespace repro::cluster {

/// A tagged message with a flat i32 payload (scores, splits, row data).
struct Message {
  int tag = 0;
  std::vector<std::int32_t> data;
};

/// Thrown by a receive that can never complete: the awaited peer (or, for
/// recv_any, every peer) has closed and nothing deliverable remains.
struct ChannelClosed : std::runtime_error {
  explicit ChannelClosed(int rank_)
      : std::runtime_error("channel closed: rank " + std::to_string(rank_) +
                           " exited with no deliverable message"),
        rank(rank_) {}
  int rank;
};

/// Thrown inside a rank's own Comm call when its FaultPlan crash op count
/// is reached. run_ranks treats it as a *scheduled* death (the rank closes
/// and the run continues), never as a test failure.
struct RankCrashed : std::runtime_error {
  explicit RankCrashed(int rank_)
      : std::runtime_error("rank " + std::to_string(rank_) +
                           " crashed (scheduled fault)"),
        rank(rank_) {}
  int rank;
};

/// A communicator over `size` ranks. All methods are thread-safe; each rank
/// must only be driven by its own thread (as with MPI processes).
class Comm {
 public:
  explicit Comm(int size);
  Comm(int size, FaultPlan plan);

  [[nodiscard]] int size() const { return static_cast<int>(boxes_.size()); }

  /// Asynchronous send (buffered, never blocks). Under a fault plan the
  /// message may be dropped, delayed or duplicated; sends to a closed rank
  /// are silently discarded (the peer can no longer receive).
  void send(int from, int to, Message msg);

  /// Blocking receive of the next message from a specific source
  /// (FIFO within the (from, to) channel). Throws ChannelClosed if `from`
  /// closes with no deliverable message on the channel.
  Message recv(int to, int from);

  /// Blocking receive of the next message from `from` with tag `tag`,
  /// leaving other messages queued (like a tag-filtered MPI_Recv).
  /// Throws ChannelClosed if `from` closes with no matching message left.
  Message recv_tagged(int to, int from, int tag);

  /// Blocking receive from any source; returns (source, message).
  /// Messages from different sources may interleave in any order, but each
  /// (source, destination) channel stays FIFO — like MPI_ANY_SOURCE.
  /// Throws ChannelClosed when every other rank has closed and nothing
  /// deliverable remains.
  std::pair<int, Message> recv_any(int to);

  /// recv_any bounded by a timeout: nullopt when nothing arrived in time.
  /// The timeout primitive behind master heartbeats and fetch retries.
  std::optional<std::pair<int, Message>> recv_any_for(
      int to, std::chrono::milliseconds timeout);

  /// Nonblocking probe: true when recv_any(to) would not block.
  bool iprobe(int to);

  /// Sends `msg` from `from` to every other rank (MPI_Bcast-shaped).
  void broadcast(int from, const Message& msg);

  /// Collective barrier: every rank must call it; returns when all have.
  /// Implemented purely with messages (gather at rank 0, then release) on a
  /// reserved tag, so it composes with pending application traffic.
  void barrier(int rank);

  /// Marks a rank as exited: its mailbox stops accepting sends and blocked
  /// receives on it become ChannelClosed. Idempotent; run_ranks calls this
  /// for every rank body on exit (normal, error, or crash).
  void close(int rank);

  /// True when `rank` has closed (exited or crashed).
  [[nodiscard]] bool closed(int rank) const;

  /// Ranks not yet closed.
  [[nodiscard]] int alive_ranks() const;

  /// Injection counts from the fault plan so far (all zero when fault-free).
  [[nodiscard]] FaultStats fault_stats() const;

  /// True when this communicator was built with a non-empty fault plan.
  [[nodiscard]] bool fault_active() const { return fault_; }

  /// Total messages and payload words transferred (for bench reporting).
  /// Counts send *attempts*: dropped and discarded-to-closed messages were
  /// paid for by the sender even though nobody received them.
  [[nodiscard]] std::uint64_t messages_sent() const;
  [[nodiscard]] std::uint64_t words_sent() const;

  /// Per-sender breakdown of the same totals (rank 0 is the master, so
  /// these separate master->worker control traffic from worker->master row
  /// deposits and replica replies).
  [[nodiscard]] std::uint64_t messages_sent_from(int rank) const;
  [[nodiscard]] std::uint64_t words_sent_from(int rank) const;

  /// Tag reserved for barrier traffic; applications must not use it.
  static constexpr int kBarrierTag = -1001;

 private:
  struct Held {
    Message msg;
    std::uint64_t release_tick = 0;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::pair<int, Message>> queue;
    /// Per-source hold queues for delayed messages; a message is released
    /// only after its own tick AND every predecessor on its channel, so
    /// per-channel FIFO survives injection.
    std::vector<std::deque<Held>> held;
  };

  struct alignas(64) RankCounters {  // cache-line padded: ranks send often
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> words{0};
  };

  void init_plan();
  /// Scheduled-crash bookkeeping: called on the rank's own thread; throws
  /// RankCrashed when the plan's op count for this rank is reached.
  void note_op(int rank);
  /// Moves every due held message into the delivery queue (caller holds the
  /// mailbox mutex). Returns true when anything was released.
  bool flush_held(Mailbox& box);
  /// The fault event scheduled for this channel op, if any.
  [[nodiscard]] const FaultEvent* event_for(int from, int to,
                                            std::uint64_t op) const;

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> words_{0};
  std::vector<RankCounters> per_rank_;

  FaultPlan plan_;
  bool fault_ = false;
  bool has_delays_ = false;
  std::vector<std::atomic<bool>> closed_;  // never resized after construction
  std::atomic<int> closed_count_{0};
  std::atomic<std::uint64_t> tick_{0};  // net time: sends + wait polls
  std::vector<std::uint64_t> channel_sends_;  // per (from*size+to); sender-owned
  std::vector<std::uint64_t> rank_ops_;       // per rank; own-thread only
  std::vector<std::uint64_t> crash_at_;       // op count per rank (max = never)
  // (from*size+to) -> op -> event, resolved at construction.
  std::vector<std::vector<std::pair<std::uint64_t, const FaultEvent*>>> by_channel_;
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> crashes_{0};
};

/// Spawns `size` rank threads running body(rank) against a shared Comm and
/// joins them; every rank is closed when its body exits, so surviving ranks
/// observe ChannelClosed instead of deadlocking on a dead peer. A
/// RankCrashed escape is a *scheduled* fault-plan death and is swallowed;
/// the first other exception thrown by any rank is rethrown.
void run_ranks(Comm& comm, const std::function<void(int)>& body);

}  // namespace repro::cluster
