// An in-process message-passing substrate with MPI-shaped semantics.
//
// The paper's distributed finder is written against MPI (§4.3). No MPI
// implementation is assumed here; ranks are threads of one process and
// messages are moved queues, but the programming model is the same:
// explicit ranks, tagged messages, blocking receives, FIFO ordering per
// (source, destination) channel, no shared state between ranks other than
// what is messaged. The master/worker protocol (master_worker.cpp) uses
// only this interface, so porting it to real MPI is mechanical.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace repro::cluster {

/// A tagged message with a flat i32 payload (scores, splits, row data).
struct Message {
  int tag = 0;
  std::vector<std::int32_t> data;
};

/// A communicator over `size` ranks. All methods are thread-safe; each rank
/// must only be driven by its own thread (as with MPI processes).
class Comm {
 public:
  explicit Comm(int size);

  [[nodiscard]] int size() const { return static_cast<int>(boxes_.size()); }

  /// Asynchronous send (buffered, never blocks).
  void send(int from, int to, Message msg);

  /// Blocking receive of the next message from a specific source
  /// (FIFO within the (from, to) channel).
  Message recv(int to, int from);

  /// Blocking receive of the next message from `from` with tag `tag`,
  /// leaving other messages queued (like a tag-filtered MPI_Recv).
  Message recv_tagged(int to, int from, int tag);

  /// Blocking receive from any source; returns (source, message).
  /// Messages from different sources may interleave in any order, but each
  /// (source, destination) channel stays FIFO — like MPI_ANY_SOURCE.
  std::pair<int, Message> recv_any(int to);

  /// Nonblocking probe: true when recv_any(to) would not block.
  bool iprobe(int to);

  /// Sends `msg` from `from` to every other rank (MPI_Bcast-shaped).
  void broadcast(int from, const Message& msg);

  /// Collective barrier: every rank must call it; returns when all have.
  /// Implemented purely with messages (gather at rank 0, then release) on a
  /// reserved tag, so it composes with pending application traffic.
  void barrier(int rank);

  /// Total messages and payload words transferred (for bench reporting).
  [[nodiscard]] std::uint64_t messages_sent() const;
  [[nodiscard]] std::uint64_t words_sent() const;

  /// Per-sender breakdown of the same totals (rank 0 is the master, so
  /// these separate master->worker control traffic from worker->master row
  /// deposits and replica replies).
  [[nodiscard]] std::uint64_t messages_sent_from(int rank) const;
  [[nodiscard]] std::uint64_t words_sent_from(int rank) const;

  /// Tag reserved for barrier traffic; applications must not use it.
  static constexpr int kBarrierTag = -1001;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::pair<int, Message>> queue;
  };

  struct alignas(64) RankCounters {  // cache-line padded: ranks send often
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> words{0};
  };

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> words_{0};
  std::vector<RankCounters> per_rank_;
};

/// Spawns `size` rank threads running body(rank) against a shared Comm and
/// joins them; the first exception thrown by any rank is rethrown.
void run_ranks(Comm& comm, const std::function<void(int)>& body);

}  // namespace repro::cluster
