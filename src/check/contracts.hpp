// Runtime contract macros (the `checked` build preset).
//
// REPRO_DCHECK / REPRO_DCHECK_MSG state internal invariants of the hot
// paths — kernel cell properties, checkpoint-resume consistency, queue
// ordering, triangle monotonicity, and the cluster recovery protocol
// (cluster/master_worker.cpp): an assignment record may only be cancelled
// while its queue key is unchanged, sync replies never shrink a worker's
// triangle version, and a group completing with member_version == -1 must
// carry version-0 rows — the invariants that make timed-out work safe to
// requeue and duplicate results safe to drop. They are compiled in when
// REPRO_CONTRACTS_ENABLED is 1 (the `checked` CMake preset, or any
// non-NDEBUG build) and compile to *nothing* otherwise: the condition is
// not evaluated, no code is generated, and the failure handler symbol
// (repro::check::dcheck_failed) does not appear in Release objects —
// tools/lint.sh's codegen audit relies on that symbol being absent.
//
// Contract violations are programming errors, never input errors; they
// throw std::logic_error so the test suite (and the fuzz drivers) convert
// them into hard failures. Input validation belongs in REPRO_CHECK
// (util/check.hpp), which is always on.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#ifndef REPRO_CONTRACTS_ENABLED
#ifdef NDEBUG
#define REPRO_CONTRACTS_ENABLED 0
#else
#define REPRO_CONTRACTS_ENABLED 1
#endif
#endif

namespace repro::check {

/// True in builds that evaluate REPRO_DCHECK conditions. Use it to guard
/// contract-only bookkeeping (e.g. capturing a previous value to state a
/// monotonicity invariant) so that Release builds carry zero overhead:
///   if constexpr (repro::check::kContractsEnabled) { ... }
inline constexpr bool kContractsEnabled = REPRO_CONTRACTS_ENABLED != 0;

#if REPRO_CONTRACTS_ENABLED
[[noreturn]] inline void dcheck_failed(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
#endif

}  // namespace repro::check

#if REPRO_CONTRACTS_ENABLED

#define REPRO_DCHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr))                                                           \
      ::repro::check::dcheck_failed(#expr, __FILE__, __LINE__, {});        \
  } while (0)

#define REPRO_DCHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream repro_dcheck_os_;                                 \
      repro_dcheck_os_ << msg;                                             \
      ::repro::check::dcheck_failed(#expr, __FILE__, __LINE__,             \
                                    repro_dcheck_os_.str());               \
    }                                                                      \
  } while (0)

#else

// The condition is intentionally not evaluated (and not odr-used): a
// Release REPRO_DCHECK must generate zero code.
#define REPRO_DCHECK(expr) \
  do {                     \
  } while (0)

#define REPRO_DCHECK_MSG(expr, msg) \
  do {                              \
  } while (0)

#endif
