// Exchange (substitution) matrices and gap penalty models.
//
// The paper's gap model (§2.1): every gap of length L costs
// `open + L * extend`, subtracted from the alignment score. Its running
// example uses match +2 / mismatch -1 / open 2 / extend 1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "seq/alphabet.hpp"

namespace repro::seq {

/// Affine gap penalty: cost(L) = open + L * extend for a gap of length L >= 1.
/// Both components are stored as positive numbers to subtract.
struct GapPenalty {
  int open = 10;
  int extend = 1;

  [[nodiscard]] int cost(int len) const { return open + len * extend; }
};

/// Symmetric residue-pair exchange matrix over one alphabet.
class ScoreMatrix {
 public:
  /// Standard protein matrices (24-residue BLOSUM ordering, incl. B/Z/X/*).
  static ScoreMatrix blosum62();
  static ScoreMatrix blosum50();
  static ScoreMatrix pam250();

  /// Simple nucleotide matrix: `match` on equal core bases, `mismatch`
  /// otherwise; N scores `mismatch` against everything including itself.
  static ScoreMatrix dna(int match = 2, int mismatch = -1);

  /// match/mismatch matrix over an arbitrary alphabet (the paper's example
  /// metric is uniform(dna, 2, -1)).
  static ScoreMatrix uniform(const Alphabet& alphabet, int match, int mismatch);

  /// Parses an NCBI-format matrix (as distributed with BLAST): '#' comment
  /// lines, a header row of residue letters, then one labelled row per
  /// residue. File letters must belong to `alphabet`; alphabet residues the
  /// file does not cover score `missing` against everything.
  static ScoreMatrix from_text(std::istream& in, const Alphabet& alphabet,
                               int missing = 0);

  /// Writes the matrix back in NCBI format (round-trips with from_text).
  void write_text(std::ostream& out) const;

  [[nodiscard]] const Alphabet& alphabet() const { return *alphabet_; }
  [[nodiscard]] int size() const { return n_; }

  [[nodiscard]] int score(std::uint8_t a, std::uint8_t b) const {
    return data_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) + b];
  }

  /// Row pointer for kernel-level lookup (codes of one residue vs all).
  [[nodiscard]] const std::int16_t* row(std::uint8_t a) const {
    return data_.data() + static_cast<std::size_t>(a) * static_cast<std::size_t>(n_);
  }

  /// Largest entry; bounds the per-pair score used in overflow analysis.
  [[nodiscard]] int max_score() const;

  /// Smallest entry; the biased u8 kernels add `-min_score()` to every
  /// profile entry so saturating-unsigned arithmetic never sees a negative.
  [[nodiscard]] int min_score() const;

  [[nodiscard]] bool symmetric() const;

 private:
  ScoreMatrix(const Alphabet& alphabet, std::vector<std::int16_t> data);

  const Alphabet* alphabet_;
  int n_;
  std::vector<std::int16_t> data_;
};

/// Everything the alignment kernels need to score one sequence pair.
struct Scoring {
  ScoreMatrix matrix;
  GapPenalty gap;

  /// The paper's running-example metric (Fig. 2).
  static Scoring paper_example();

  /// Default protein scoring used throughout examples and benches.
  static Scoring protein_default();
};

}  // namespace repro::seq
