// Synthetic repeat-bearing sequences.
//
// Stand-in for the paper's test set (human titin and other large proteins;
// §5). The generators implant divergent repeat copies — point mutations down
// to the 10–25 % conservation the paper describes, plus insertions and
// deletions — into random background, so the top-alignment search sees the
// same kind of score landscape the real data produces. Everything is
// deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/sequence.hpp"

namespace repro::seq {

/// Parameters for repeat implantation.
struct RepeatSpec {
  int unit_length = 90;      ///< length of the ancestral repeat unit
  int copies = 8;            ///< number of copies implanted
  double conservation = 0.4; ///< fraction of unit residues left unmutated
  double indel_rate = 0.02;  ///< per-residue probability of an indel event
  int max_indel = 3;         ///< maximum single indel length
  int spacer_min = 0;        ///< random spacer between copies (min)
  int spacer_max = 0;        ///< random spacer between copies (max)
  bool tandem = true;        ///< tandem copies; false = interspersed through
                             ///< the background at random offsets
};

/// Where each implanted copy landed, for ground-truth checking in tests.
struct ImplantedCopy {
  int begin = 0;  ///< 0-based start in the final sequence
  int end = 0;    ///< exclusive end
};

/// A generated sequence plus its ground truth.
struct GeneratedSequence {
  Sequence sequence;
  std::vector<ImplantedCopy> copies;
};

/// Uniform random sequence over the core alphabet.
Sequence random_sequence(const Alphabet& alphabet, int length,
                         std::uint64_t seed, std::string name = "random");

/// Background of `total_length` residues with repeats implanted per `spec`.
/// The result is exactly `total_length` long (the background shrinks to make
/// room). Throws if the repeats cannot fit.
GeneratedSequence make_repeat_sequence(const Alphabet& alphabet,
                                       int total_length, const RepeatSpec& spec,
                                       std::uint64_t seed,
                                       std::string name = "synthetic-repeat");

/// Titin stand-in: a protein of `length` residues dominated by tandem
/// ~95-residue domain repeats at ~25 % conservation (immunoglobulin /
/// fibronectin-like architecture). Used by all paper-reproduction benches.
GeneratedSequence synthetic_titin(int length, std::uint64_t seed = 2003);

/// DNA microsatellite-style sequence with a short tandem repeat region.
GeneratedSequence synthetic_dna_tandem(int length, int unit_length, int copies,
                                       std::uint64_t seed = 2003);

}  // namespace repro::seq
