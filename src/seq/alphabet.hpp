// Residue alphabets and their encodings.
//
// Sequences are stored as small integer codes so the alignment kernels can
// index exchange matrices directly (one lookup feeds all SIMD lanes, §4.1 of
// the paper).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace repro::seq {

enum class AlphabetKind : std::uint8_t { kProtein, kDna };

/// Immutable mapping between residue characters and dense codes [0, size).
class Alphabet {
 public:
  /// 20 standard amino acids plus the ambiguity codes B, Z, X and the stop '*'
  /// in the conventional BLOSUM ordering.
  static const Alphabet& protein();

  /// A, C, G, T plus the ambiguity code N.
  static const Alphabet& dna();

  [[nodiscard]] AlphabetKind kind() const { return kind_; }
  [[nodiscard]] int size() const { return static_cast<int>(letters_.size()); }
  [[nodiscard]] std::string_view letters() const { return letters_; }

  /// True if `c` (any case) is a residue of this alphabet.
  [[nodiscard]] bool valid(char c) const;

  /// Encodes a residue character; throws on characters outside the alphabet.
  [[nodiscard]] std::uint8_t encode(char c) const;

  [[nodiscard]] char decode(std::uint8_t code) const;

  /// Code of the ambiguity/unknown residue (X for protein, N for DNA).
  [[nodiscard]] std::uint8_t unknown_code() const { return unknown_; }

  /// Number of unambiguous residues (20 for protein, 4 for DNA); the random
  /// generators draw only from this prefix of the alphabet.
  [[nodiscard]] int core_size() const { return core_size_; }

 private:
  Alphabet(AlphabetKind kind, std::string letters, int core_size, char unknown);

  AlphabetKind kind_;
  std::string letters_;
  int core_size_;
  std::uint8_t unknown_;
  std::array<std::int8_t, 256> to_code_{};
};

}  // namespace repro::seq
