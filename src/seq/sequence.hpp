// Encoded biological sequences.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "seq/alphabet.hpp"

namespace repro::seq {

/// A named, alphabet-encoded sequence. Residues are stored as dense codes;
/// positions are 0-based throughout the API (the paper's prose is 1-based —
/// the mapping is documented wherever it matters).
class Sequence {
 public:
  Sequence(std::string name, std::vector<std::uint8_t> codes,
           const Alphabet& alphabet);

  /// Encodes `residues` using `alphabet`; throws on invalid characters.
  static Sequence from_string(std::string name, std::string_view residues,
                              const Alphabet& alphabet);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Alphabet& alphabet() const { return *alphabet_; }
  [[nodiscard]] int length() const { return static_cast<int>(codes_.size()); }
  [[nodiscard]] bool empty() const { return codes_.empty(); }

  [[nodiscard]] std::span<const std::uint8_t> codes() const { return codes_; }
  [[nodiscard]] std::uint8_t operator[](int i) const {
    return codes_[static_cast<std::size_t>(i)];
  }

  /// Decodes back to a residue string.
  [[nodiscard]] std::string to_string() const;

  /// Subsequence [begin, end) as a new Sequence (used by examples/tests; the
  /// alignment kernels take spans and never copy).
  [[nodiscard]] Sequence subsequence(int begin, int end) const;

 private:
  std::string name_;
  std::vector<std::uint8_t> codes_;
  const Alphabet* alphabet_;
};

}  // namespace repro::seq
