#include "seq/generator.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace repro::seq {
namespace {

using util::Rng;

std::uint8_t random_residue(const Alphabet& a, Rng& rng) {
  return static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(a.core_size())));
}

/// Different residue than `c`, uniformly from the core alphabet.
std::uint8_t mutate_residue(const Alphabet& a, std::uint8_t c, Rng& rng) {
  const auto n = static_cast<std::uint64_t>(a.core_size());
  auto r = static_cast<std::uint8_t>(rng.below(n - 1));
  if (r >= c) ++r;
  return r;
}

std::vector<std::uint8_t> random_codes(const Alphabet& a, int length, Rng& rng) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(length));
  for (auto& c : out) c = random_residue(a, rng);
  return out;
}

/// Derives one divergent copy of `unit`: point mutations leave `conservation`
/// of positions intact; indel events insert or delete short runs.
std::vector<std::uint8_t> mutate_copy(const Alphabet& a,
                                      const std::vector<std::uint8_t>& unit,
                                      const RepeatSpec& spec, Rng& rng) {
  std::vector<std::uint8_t> out;
  out.reserve(unit.size() + 8);
  for (std::uint8_t c : unit) {
    if (rng.uniform() < spec.indel_rate) {
      const int len = static_cast<int>(rng.range(1, spec.max_indel));
      if (rng.chance(0.5)) {
        for (int k = 0; k < len; ++k) out.push_back(random_residue(a, rng));
        out.push_back(c);
      }
      // Deletion: drop this residue (and implicitly at most one per event to
      // keep copies near unit length).
      continue;
    }
    out.push_back(rng.uniform() < spec.conservation ? c
                                                    : mutate_residue(a, c, rng));
  }
  if (out.empty()) out.push_back(unit.empty() ? std::uint8_t{0} : unit[0]);
  return out;
}

}  // namespace

Sequence random_sequence(const Alphabet& alphabet, int length,
                         std::uint64_t seed, std::string name) {
  REPRO_CHECK(length >= 0);
  Rng rng(seed);
  return Sequence(std::move(name), random_codes(alphabet, length, rng), alphabet);
}

GeneratedSequence make_repeat_sequence(const Alphabet& alphabet,
                                       int total_length, const RepeatSpec& spec,
                                       std::uint64_t seed, std::string name) {
  REPRO_CHECK(total_length > 0);
  REPRO_CHECK(spec.unit_length > 0 && spec.copies >= 0);
  REPRO_CHECK(spec.conservation >= 0.0 && spec.conservation <= 1.0);
  REPRO_CHECK(spec.indel_rate >= 0.0 && spec.indel_rate < 1.0);
  REPRO_CHECK(spec.spacer_min >= 0 && spec.spacer_min <= spec.spacer_max);

  Rng rng(seed);
  const std::vector<std::uint8_t> unit =
      random_codes(alphabet, spec.unit_length, rng);

  // Generate all copies first so we know how much background room remains.
  std::vector<std::vector<std::uint8_t>> copies;
  copies.reserve(static_cast<std::size_t>(spec.copies));
  std::vector<int> spacers;
  int repeat_total = 0;
  for (int i = 0; i < spec.copies; ++i) {
    copies.push_back(mutate_copy(alphabet, unit, spec, rng));
    repeat_total += static_cast<int>(copies.back().size());
    if (i + 1 < spec.copies) {
      const int sp = static_cast<int>(rng.range(spec.spacer_min, spec.spacer_max));
      spacers.push_back(sp);
      repeat_total += spec.tandem ? sp : 0;
    }
  }

  GeneratedSequence result{Sequence("", {}, alphabet), {}};
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(total_length));

  if (spec.tandem) {
    // Indel variance can push the block past the budget; shed trailing
    // copies rather than fail (ground truth shrinks accordingly).
    while (repeat_total > total_length && copies.size() > 1) {
      repeat_total -= static_cast<int>(copies.back().size());
      copies.pop_back();
      if (!spacers.empty()) {
        repeat_total -= spacers.back();
        spacers.pop_back();
      }
    }
    REPRO_CHECK_MSG(repeat_total <= total_length,
                    "tandem repeat block (" << repeat_total
                                            << ") exceeds total length "
                                            << total_length);
    const int background = total_length - repeat_total;
    const int lead = background > 0
                         ? static_cast<int>(rng.range(0, background))
                         : 0;
    auto bg = random_codes(alphabet, background, rng);
    out.insert(out.end(), bg.begin(), bg.begin() + lead);
    for (std::size_t i = 0; i < copies.size(); ++i) {
      const int begin = static_cast<int>(out.size());
      out.insert(out.end(), copies[i].begin(), copies[i].end());
      result.copies.push_back({begin, static_cast<int>(out.size())});
      if (i < spacers.size()) {
        for (int k = 0; k < spacers[i]; ++k)
          out.push_back(random_residue(alphabet, rng));
      }
    }
    out.insert(out.end(), bg.begin() + lead, bg.end());
  } else {
    // Interspersed: place copies at sorted random offsets into background.
    int copies_len = 0;
    for (const auto& c : copies) copies_len += static_cast<int>(c.size());
    REPRO_CHECK_MSG(copies_len <= total_length,
                    "repeat copies exceed total length");
    const int background = total_length - copies_len;
    auto bg = random_codes(alphabet, background, rng);
    // Choose cut points in the background where copies are inserted.
    std::vector<int> cuts(copies.size());
    for (auto& c : cuts) c = static_cast<int>(rng.range(0, background));
    std::sort(cuts.begin(), cuts.end());
    int bg_pos = 0;
    for (std::size_t i = 0; i < copies.size(); ++i) {
      out.insert(out.end(), bg.begin() + bg_pos, bg.begin() + cuts[i]);
      bg_pos = cuts[i];
      const int begin = static_cast<int>(out.size());
      out.insert(out.end(), copies[i].begin(), copies[i].end());
      result.copies.push_back({begin, static_cast<int>(out.size())});
    }
    out.insert(out.end(), bg.begin() + bg_pos, bg.end());
  }

  REPRO_CHECK(static_cast<int>(out.size()) == total_length);
  result.sequence = Sequence(std::move(name), std::move(out), alphabet);
  return result;
}

GeneratedSequence synthetic_titin(int length, std::uint64_t seed) {
  REPRO_CHECK(length >= 100);
  RepeatSpec spec;
  // Full-size domains are ~95 residues (Ig/FN3); below ~500 residues scale
  // the unit down so short test sequences still carry several copies.
  spec.unit_length = std::min(95, std::max(20, length / 5));
  // Domains cover ~85 % of titin; leave some background at the ends.
  spec.copies =
      std::max(2, static_cast<int>(length * 0.85) / (spec.unit_length + 6));
  spec.conservation = 0.25;  // paper: 10-25 % of residues conserved
  spec.indel_rate = 0.03;
  spec.max_indel = 4;
  spec.spacer_min = 0;
  spec.spacer_max = 8;
  spec.tandem = true;
  return make_repeat_sequence(Alphabet::protein(), length, spec, seed,
                              "synthetic-titin-" + std::to_string(length));
}

GeneratedSequence synthetic_dna_tandem(int length, int unit_length, int copies,
                                       std::uint64_t seed) {
  RepeatSpec spec;
  spec.unit_length = unit_length;
  spec.copies = copies;
  spec.conservation = 0.85;
  spec.indel_rate = 0.01;
  spec.max_indel = 2;
  spec.tandem = true;
  return make_repeat_sequence(Alphabet::dna(), length, spec, seed,
                              "synthetic-dna-tandem");
}

}  // namespace repro::seq
