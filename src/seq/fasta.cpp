#include "seq/fasta.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace repro::seq {

std::vector<Sequence> read_fasta(std::istream& in, const Alphabet& alphabet) {
  std::vector<Sequence> records;
  std::string name;
  std::vector<std::uint8_t> codes;
  bool in_record = false;

  auto flush = [&] {
    if (in_record) {
      REPRO_CHECK_MSG(!codes.empty(), "FASTA record '"
                                          << name
                                          << "' has a header but no sequence "
                                             "data");
      records.emplace_back(std::move(name), std::move(codes), alphabet);
      name.clear();
      codes = {};
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      in_record = true;
      name = line.substr(1);
      // Trim leading whitespace of the header.
      const auto pos = name.find_first_not_of(" \t");
      name = pos == std::string::npos ? std::string() : name.substr(pos);
    } else {
      REPRO_CHECK_MSG(in_record, "FASTA data before the first '>' header");
      for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
        REPRO_CHECK_MSG(alphabet.valid(c), "invalid residue '"
                                               << c << "' in record '" << name
                                               << "'");
        codes.push_back(alphabet.encode(c));
      }
    }
  }
  flush();
  return records;
}

std::vector<Sequence> read_fasta_file(const std::filesystem::path& path,
                                      const Alphabet& alphabet) {
  std::ifstream in(path);
  REPRO_CHECK_MSG(in.good(), "cannot open FASTA file " << path);
  return read_fasta(in, alphabet);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& records,
                 int width) {
  REPRO_CHECK(width > 0);
  for (const auto& rec : records) {
    out << '>' << rec.name() << '\n';
    const std::string s = rec.to_string();
    for (std::size_t i = 0; i < s.size(); i += static_cast<std::size_t>(width))
      out << s.substr(i, static_cast<std::size_t>(width)) << '\n';
  }
}

void write_fasta_file(const std::filesystem::path& path,
                      const std::vector<Sequence>& records, int width) {
  std::ofstream out(path);
  REPRO_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_fasta(out, records, width);
  REPRO_CHECK_MSG(out.good(), "write to " << path << " failed");
}

}  // namespace repro::seq
