#include "seq/scoring.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace repro::seq {
namespace {

// Standard NCBI matrices in the conventional residue order
// ARNDCQEGHILKMFPSTWYVBZX* (24 x 24).
constexpr int kProteinN = 24;

constexpr std::int16_t kBlosum62[kProteinN * kProteinN] = {
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
       4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4,
      -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4,
      -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4,
      -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4,
       0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4,
      -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4,
      -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4,
       0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4,
      -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4,
      -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4,
      -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4,
      -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4,
      -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4,
      -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4,
      -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4,
       1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4,
       0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4,
      -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4,
      -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4,
       0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4,
      -2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4,
      -1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4,
       0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4,
      -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1,
};

constexpr std::int16_t kBlosum50[kProteinN * kProteinN] = {
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
       5, -2, -1, -2, -1, -1, -1,  0, -2, -1, -2, -1, -1, -3, -1,  1,  0, -3, -2,  0, -2, -1, -1, -5,
      -2,  7, -1, -2, -4,  1,  0, -3,  0, -4, -3,  3, -2, -3, -3, -1, -1, -3, -1, -3, -1,  0, -1, -5,
      -1, -1,  7,  2, -2,  0,  0,  0,  1, -3, -4,  0, -2, -4, -2,  1,  0, -4, -2, -3,  4,  0, -1, -5,
      -2, -2,  2,  8, -4,  0,  2, -1, -1, -4, -4, -1, -4, -5, -1,  0, -1, -5, -3, -4,  5,  1, -1, -5,
      -1, -4, -2, -4, 13, -3, -3, -3, -3, -2, -2, -3, -2, -2, -4, -1, -1, -5, -3, -1, -3, -3, -2, -5,
      -1,  1,  0,  0, -3,  7,  2, -2,  1, -3, -2,  2,  0, -4, -1,  0, -1, -1, -1, -3,  0,  4, -1, -5,
      -1,  0,  0,  2, -3,  2,  6, -3,  0, -4, -3,  1, -2, -3, -1, -1, -1, -3, -2, -3,  1,  5, -1, -5,
       0, -3,  0, -1, -3, -2, -3,  8, -2, -4, -4, -2, -3, -4, -2,  0, -2, -3, -3, -4, -1, -2, -2, -5,
      -2,  0,  1, -1, -3,  1,  0, -2, 10, -4, -3,  0, -1, -1, -2, -1, -2, -3,  2, -4,  0,  0, -1, -5,
      -1, -4, -3, -4, -2, -3, -4, -4, -4,  5,  2, -3,  2,  0, -3, -3, -1, -3, -1,  4, -4, -3, -1, -5,
      -2, -3, -4, -4, -2, -2, -3, -4, -3,  2,  5, -3,  3,  1, -4, -3, -1, -2, -1,  1, -4, -3, -1, -5,
      -1,  3,  0, -1, -3,  2,  1, -2,  0, -3, -3,  6, -2, -4, -1,  0, -1, -3, -2, -3,  0,  1, -1, -5,
      -1, -2, -2, -4, -2,  0, -2, -3, -1,  2,  3, -2,  7,  0, -3, -2, -1, -1,  0,  1, -3, -1, -1, -5,
      -3, -3, -4, -5, -2, -4, -3, -4, -1,  0,  1, -4,  0,  8, -4, -3, -2,  1,  4, -1, -4, -4, -2, -5,
      -1, -3, -2, -1, -4, -1, -1, -2, -2, -3, -4, -1, -3, -4, 10, -1, -1, -4, -3, -3, -2, -1, -2, -5,
       1, -1,  1,  0, -1,  0, -1,  0, -1, -3, -3,  0, -2, -3, -1,  5,  2, -4, -2, -2,  0,  0, -1, -5,
       0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  2,  5, -3, -2,  0,  0, -1,  0, -5,
      -3, -3, -4, -5, -5, -1, -3, -3, -3, -3, -2, -3, -1,  1, -4, -4, -3, 15,  2, -3, -5, -2, -3, -5,
      -2, -1, -2, -3, -3, -1, -2, -3,  2, -1, -1, -2,  0,  4, -3, -2, -2,  2,  8, -1, -3, -2, -1, -5,
       0, -3, -3, -4, -1, -3, -3, -4, -4,  4,  1, -3,  1, -1, -3, -2,  0, -3, -1,  5, -4, -3, -1, -5,
      -2, -1,  4,  5, -3,  0,  1, -1,  0, -4, -4,  0, -3, -4, -2,  0,  0, -5, -3, -4,  5,  2, -1, -5,
      -1,  0,  0,  1, -3,  4,  5, -2,  0, -3, -3,  1, -1, -4, -1,  0, -1, -2, -2, -3,  2,  5, -1, -5,
      -1, -1, -1, -1, -2, -1, -1, -2, -1, -1, -1, -1, -1, -2, -2, -1,  0, -3, -1, -1, -1, -1, -1, -5,
      -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5, -5,  1,
};

constexpr std::int16_t kPam250[kProteinN * kProteinN] = {
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
       2, -2,  0,  0, -2,  0,  0,  1, -1, -1, -2, -1, -1, -3,  1,  1,  1, -6, -3,  0,  0,  0,  0, -8,
      -2,  6,  0, -1, -4,  1, -1, -3,  2, -2, -3,  3,  0, -4,  0,  0, -1,  2, -4, -2, -1,  0, -1, -8,
       0,  0,  2,  2, -4,  1,  1,  0,  2, -2, -3,  1, -2, -3,  0,  1,  0, -4, -2, -2,  2,  1,  0, -8,
       0, -1,  2,  4, -5,  2,  3,  1,  1, -2, -4,  0, -3, -6, -1,  0,  0, -7, -4, -2,  3,  3, -1, -8,
      -2, -4, -4, -5, 12, -5, -5, -3, -3, -2, -6, -5, -5, -4, -3,  0, -2, -8,  0, -2, -4, -5, -3, -8,
       0,  1,  1,  2, -5,  4,  2, -1,  3, -2, -2,  1, -1, -5,  0, -1, -1, -5, -4, -2,  1,  3, -1, -8,
       0, -1,  1,  3, -5,  2,  4,  0,  1, -2, -3,  0, -2, -5, -1,  0,  0, -7, -4, -2,  3,  3, -1, -8,
       1, -3,  0,  1, -3, -1,  0,  5, -2, -3, -4, -2, -3, -5,  0,  1,  0, -7, -5, -1,  0,  0, -1, -8,
      -1,  2,  2,  1, -3,  3,  1, -2,  6, -2, -2,  0, -2, -2,  0, -1, -1, -3,  0, -2,  1,  2, -1, -8,
      -1, -2, -2, -2, -2, -2, -2, -3, -2,  5,  2, -2,  2,  1, -2, -1,  0, -5, -1,  4, -2, -2, -1, -8,
      -2, -3, -3, -4, -6, -2, -3, -4, -2,  2,  6, -3,  4,  2, -3, -3, -2, -2, -1,  2, -3, -3, -1, -8,
      -1,  3,  1,  0, -5,  1,  0, -2,  0, -2, -3,  5,  0, -5, -1,  0,  0, -3, -4, -2,  1,  0, -1, -8,
      -1,  0, -2, -3, -5, -1, -2, -3, -2,  2,  4,  0,  6,  0, -2, -2, -1, -4, -2,  2, -2, -2, -1, -8,
      -3, -4, -3, -6, -4, -5, -5, -5, -2,  1,  2, -5,  0,  9, -5, -3, -3,  0,  7, -1, -4, -5, -2, -8,
       1,  0,  0, -1, -3,  0, -1,  0,  0, -2, -3, -1, -2, -5,  6,  1,  0, -6, -5, -1, -1,  0, -1, -8,
       1,  0,  1,  0,  0, -1,  0,  1, -1, -1, -3,  0, -2, -3,  1,  2,  1, -2, -3, -1,  0,  0,  0, -8,
       1, -1,  0,  0, -2, -1,  0,  0, -1,  0, -2,  0, -1, -3,  0,  1,  3, -5, -3,  0,  0, -1,  0, -8,
      -6,  2, -4, -7, -8, -5, -7, -7, -3, -5, -2, -3, -4,  0, -6, -2, -5, 17,  0, -6, -5, -6, -4, -8,
      -3, -4, -2, -4,  0, -4, -4, -5,  0, -1, -1, -4, -2,  7, -5, -3, -3,  0, 10, -2, -3, -4, -2, -8,
       0, -2, -2, -2, -2, -2, -2, -1, -2,  4,  2, -2,  2, -1, -1, -1,  0, -6, -2,  4, -2, -2, -1, -8,
       0, -1,  2,  3, -4,  1,  3,  0,  1, -2, -3,  1, -2, -4, -1,  0,  0, -5, -3, -2,  3,  2, -1, -8,
       0,  0,  1,  3, -5,  3,  3,  0,  2, -2, -3,  0, -2, -5,  0,  0, -1, -6, -4, -2,  2,  3, -1, -8,
       0, -1,  0, -1, -3, -1, -1, -1, -1, -1, -1, -1, -1, -2, -1,  0,  0, -4, -2, -1, -1, -1, -1, -8,
      -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8, -8,  1,
};

}  // namespace

ScoreMatrix::ScoreMatrix(const Alphabet& alphabet, std::vector<std::int16_t> data)
    : alphabet_(&alphabet), n_(alphabet.size()), data_(std::move(data)) {
  REPRO_CHECK(data_.size() ==
              static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
}

ScoreMatrix ScoreMatrix::blosum62() {
  return ScoreMatrix(Alphabet::protein(),
                     std::vector<std::int16_t>(kBlosum62, kBlosum62 + kProteinN * kProteinN));
}

ScoreMatrix ScoreMatrix::blosum50() {
  return ScoreMatrix(Alphabet::protein(),
                     std::vector<std::int16_t>(kBlosum50, kBlosum50 + kProteinN * kProteinN));
}

ScoreMatrix ScoreMatrix::pam250() {
  return ScoreMatrix(Alphabet::protein(),
                     std::vector<std::int16_t>(kPam250, kPam250 + kProteinN * kProteinN));
}

ScoreMatrix ScoreMatrix::dna(int match, int mismatch) {
  const Alphabet& a = Alphabet::dna();
  const int n = a.size();
  std::vector<std::int16_t> data(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const bool core = i < a.core_size() && j < a.core_size();
      data[static_cast<std::size_t>(i) * n + j] =
          static_cast<std::int16_t>(core && i == j ? match : mismatch);
    }
  }
  return ScoreMatrix(a, std::move(data));
}

ScoreMatrix ScoreMatrix::uniform(const Alphabet& alphabet, int match,
                                 int mismatch) {
  const int n = alphabet.size();
  std::vector<std::int16_t> data(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      data[static_cast<std::size_t>(i) * n + j] =
          static_cast<std::int16_t>(i == j ? match : mismatch);
  return ScoreMatrix(alphabet, std::move(data));
}

ScoreMatrix ScoreMatrix::from_text(std::istream& in, const Alphabet& alphabet,
                                   int missing) {
  const int n = alphabet.size();
  std::vector<std::int16_t> data(static_cast<std::size_t>(n) * n,
                                 static_cast<std::int16_t>(missing));
  std::vector<std::uint8_t> columns;
  std::string line;
  bool header_seen = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream row(line);
    if (line.empty()) continue;
    if (line[0] == '#') continue;
    if (!header_seen) {
      char c;
      while (row >> c) columns.push_back(alphabet.encode(c));
      REPRO_CHECK_MSG(!columns.empty(), "matrix header row is empty");
      header_seen = true;
      continue;
    }
    char label;
    REPRO_CHECK_MSG(static_cast<bool>(row >> label), "malformed matrix row");
    const std::uint8_t a = alphabet.encode(label);
    for (const std::uint8_t b : columns) {
      int v;
      REPRO_CHECK_MSG(static_cast<bool>(row >> v),
                      "matrix row '" << label << "' is shorter than the header");
      data[static_cast<std::size_t>(a) * static_cast<std::size_t>(n) + b] =
          static_cast<std::int16_t>(v);
    }
    int extra;
    REPRO_CHECK_MSG(!(row >> extra),
                    "matrix row '" << label << "' is longer than the header");
  }
  REPRO_CHECK_MSG(header_seen, "no matrix header found");
  return ScoreMatrix(alphabet, std::move(data));
}

void ScoreMatrix::write_text(std::ostream& out) const {
  out << "# reprolib exchange matrix (" << n_ << " residues)\n ";
  for (int j = 0; j < n_; ++j) out << "  " << alphabet_->decode(static_cast<std::uint8_t>(j));
  out << '\n';
  for (int i = 0; i < n_; ++i) {
    out << alphabet_->decode(static_cast<std::uint8_t>(i));
    for (int j = 0; j < n_; ++j) {
      const int v = score(static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j));
      out << (v < 0 ? " " : "  ") << v;
    }
    out << '\n';
  }
}

int ScoreMatrix::max_score() const {
  return *std::max_element(data_.begin(), data_.end());
}

int ScoreMatrix::min_score() const {
  return *std::min_element(data_.begin(), data_.end());
}

bool ScoreMatrix::symmetric() const {
  for (int i = 0; i < n_; ++i)
    for (int j = i + 1; j < n_; ++j)
      if (score(static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j)) !=
          score(static_cast<std::uint8_t>(j), static_cast<std::uint8_t>(i)))
        return false;
  return true;
}

Scoring Scoring::paper_example() {
  return Scoring{ScoreMatrix::dna(2, -1), GapPenalty{2, 1}};
}

Scoring Scoring::protein_default() {
  return Scoring{ScoreMatrix::blosum62(), GapPenalty{10, 1}};
}

}  // namespace repro::seq
