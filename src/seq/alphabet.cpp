#include "seq/alphabet.hpp"

#include <cctype>

#include "util/check.hpp"

namespace repro::seq {

Alphabet::Alphabet(AlphabetKind kind, std::string letters, int core_size,
                   char unknown)
    : kind_(kind), letters_(std::move(letters)), core_size_(core_size) {
  to_code_.fill(-1);
  for (std::size_t i = 0; i < letters_.size(); ++i) {
    const char c = letters_[i];
    to_code_[static_cast<unsigned char>(c)] = static_cast<std::int8_t>(i);
    to_code_[static_cast<unsigned char>(std::tolower(c))] =
        static_cast<std::int8_t>(i);
  }
  unknown_ = encode(unknown);
}

const Alphabet& Alphabet::protein() {
  // Conventional BLOSUM residue order.
  static const Alphabet a(AlphabetKind::kProtein, "ARNDCQEGHILKMFPSTWYVBZX*", 20,
                          'X');
  return a;
}

const Alphabet& Alphabet::dna() {
  static const Alphabet a(AlphabetKind::kDna, "ACGTN", 4, 'N');
  return a;
}

bool Alphabet::valid(char c) const {
  return to_code_[static_cast<unsigned char>(c)] >= 0;
}

std::uint8_t Alphabet::encode(char c) const {
  const std::int8_t code = to_code_[static_cast<unsigned char>(c)];
  REPRO_CHECK_MSG(code >= 0, "character '" << c << "' not in alphabet "
                                           << letters_);
  return static_cast<std::uint8_t>(code);
}

char Alphabet::decode(std::uint8_t code) const {
  REPRO_CHECK_MSG(code < letters_.size(), "code " << int(code) << " out of range");
  return letters_[code];
}

}  // namespace repro::seq
