#include "seq/sequence.hpp"

#include "util/check.hpp"

namespace repro::seq {

Sequence::Sequence(std::string name, std::vector<std::uint8_t> codes,
                   const Alphabet& alphabet)
    : name_(std::move(name)), codes_(std::move(codes)), alphabet_(&alphabet) {
  for (std::uint8_t c : codes_)
    REPRO_CHECK_MSG(c < alphabet_->size(), "code out of range for alphabet");
}

Sequence Sequence::from_string(std::string name, std::string_view residues,
                               const Alphabet& alphabet) {
  std::vector<std::uint8_t> codes;
  codes.reserve(residues.size());
  for (char c : residues) codes.push_back(alphabet.encode(c));
  return Sequence(std::move(name), std::move(codes), alphabet);
}

std::string Sequence::to_string() const {
  std::string out;
  out.reserve(codes_.size());
  for (std::uint8_t c : codes_) out.push_back(alphabet_->decode(c));
  return out;
}

Sequence Sequence::subsequence(int begin, int end) const {
  REPRO_CHECK(begin >= 0 && begin <= end && end <= length());
  std::vector<std::uint8_t> codes(codes_.begin() + begin, codes_.begin() + end);
  return Sequence(name_ + "[" + std::to_string(begin) + ":" +
                      std::to_string(end) + ")",
                  std::move(codes), *alphabet_);
}

}  // namespace repro::seq
