// FASTA input/output.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "seq/sequence.hpp"

namespace repro::seq {

/// Reads every record in a FASTA stream. Whitespace inside sequence data is
/// ignored; characters outside `alphabet` throw with the offending record
/// name. An empty stream yields an empty vector.
std::vector<Sequence> read_fasta(std::istream& in, const Alphabet& alphabet);

std::vector<Sequence> read_fasta_file(const std::filesystem::path& path,
                                      const Alphabet& alphabet);

/// Writes records with lines wrapped at `width` residues.
void write_fasta(std::ostream& out, const std::vector<Sequence>& records,
                 int width = 70);

void write_fasta_file(const std::filesystem::path& path,
                      const std::vector<Sequence>& records, int width = 70);

}  // namespace repro::seq
