#include "core/old_finder.hpp"

#include <limits>
#include <utility>
#include <vector>

#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "align/traceback.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace repro::core {
namespace {

std::vector<std::int16_t> narrow_row(std::span<const align::Score> row) {
  std::vector<std::int16_t> out(row.size());
  for (std::size_t x = 0; x < row.size(); ++x) {
    REPRO_CHECK_MSG(row[x] <= std::numeric_limits<std::int16_t>::max(),
                    "score overflows i16 in old-algorithm shadow check");
    out[x] = static_cast<std::int16_t>(row[x]);
  }
  return out;
}

}  // namespace

FinderResult find_top_alignments_old(const seq::Sequence& s,
                                     const seq::Scoring& scoring,
                                     const FinderOptions& options) {
  util::WallTimer timer;
  const int m = s.length();
  REPRO_CHECK_MSG(m >= 2, "sequence too short for top alignments");
  REPRO_CHECK(options.min_score >= 1);

  const auto engine = align::make_engine(align::EngineKind::kGeneralGap);
  align::OverrideTriangle triangle(m);

  FinderResult res;
  FinderStats& st = res.stats;

  while (static_cast<int>(res.tops.size()) < options.num_top_alignments) {
    const bool first = res.tops.empty();
    align::Score best_score = 0;
    int best_r = 0;
    std::vector<std::int16_t> best_without;  // kept for the traceback

    // Exhaustive sweep: realign every rectangle from scratch.
    for (int r = 1; r <= m - 1; ++r) {
      align::GroupJob with;
      with.seq = s.codes();
      with.scoring = &scoring;
      with.overrides = first ? nullptr : &triangle;
      with.r0 = r;
      with.count = 1;
      const std::vector<align::Score> row_with = engine->align_one(with);
      if (first) ++st.first_alignments; else ++st.realignments;

      std::vector<std::int16_t> without;
      if (!first) {
        // Double alignment: the same rectangle without the triangle gives
        // the reference scores for shadow rejection.
        align::GroupJob plain = with;
        plain.overrides = nullptr;
        without = narrow_row(engine->align_one(plain));
        ++st.realignments;
      }

      const align::BestEnd end = align::find_best_end(row_with, without);
      if (end.end_x != 0 && (best_r == 0 || end.score > best_score)) {
        best_score = end.score;
        best_r = r;
        best_without = std::move(without);
      }
    }

    if (best_r == 0 || best_score < options.min_score) break;

    align::GroupJob job;
    job.seq = s.codes();
    job.scoring = &scoring;
    job.overrides = &triangle;
    job.r0 = best_r;
    job.count = 1;
    align::Traceback tb = align::traceback_best(job, best_without);
    REPRO_CHECK(tb.score == best_score);
    for (const auto& [i, j] : tb.pairs) triangle.set(i, j);
    TopAlignment top;
    top.r = best_r;
    top.score = tb.score;
    top.end_x = tb.end_x;
    top.pairs = std::move(tb.pairs);
    res.tops.push_back(std::move(top));
    ++st.tracebacks;
  }

  st.cells = engine->cells_computed();
  st.seconds = timer.seconds();
  return res;
}

}  // namespace repro::core
