// Options, statistics and result containers of the top-alignment finders.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "align/types.hpp"
#include "core/top_alignment.hpp"

namespace repro::core {

/// Realignment ordering (§3). kBestFirst is the paper's contribution: scores
/// from older override triangles are upper bounds, so realigning
/// best-score-first provably skips rectangles that cannot win (typically
/// 90–97 % of realignments). kExhaustiveSweep realigns every rectangle
/// before each acceptance — the old algorithm's schedule — and exists for
/// the ablation benches; both produce identical top alignments.
enum class RescanPolicy { kBestFirst, kExhaustiveSweep };

/// How first-alignment bottom rows (the shadow-rejection references and the
/// dominant data structure, Appendix A) are kept.
///   kArchiveRows    — the paper's implementation: m(m-1)/2 i16 entries.
///   kRecomputeRows  — the paper's proposed linear-memory variant: originals
///                     are recomputed on demand with an empty triangle. This
///                     costs one extra (override-free) alignment per
///                     realignment — and realignments are the rare case
///                     (best-first prunes ~97 %), so the total overhead is a
///                     few percent while the O(n^2) archive disappears.
enum class MemoryMode { kArchiveRows, kRecomputeRows };

/// How accepted alignments are reconstructed.
///   kFullMatrix  — the paper's traceback: recompute the rectangle's full
///                  matrix (rows x cols Scores) and walk back.
///   kLinearSpace — the memory-efficient traceback family the paper cites
///                  ("not covered here"): O(rows + cols) memory at ~2x the
///                  score-only work. Scores and validity are identical;
///                  among co-optimal paths it may mark different pairs, so
///                  runs are internally deterministic but not byte-identical
///                  to full-matrix runs beyond the first acceptance.
enum class TracebackMode { kFullMatrix, kLinearSpace };

struct FinderOptions {
  /// Top alignments requested; the paper uses 10–30, more for long
  /// sequences, 50 for Table 1 and up to 100 for Fig. 8.
  int num_top_alignments = 20;
  /// Stop early once no remaining alignment can reach this score.
  align::Score min_score = 1;
  RescanPolicy policy = RescanPolicy::kBestFirst;
  MemoryMode memory = MemoryMode::kArchiveRows;
  TracebackMode traceback = TracebackMode::kFullMatrix;
  /// Byte budget of the checkpoint-resume realignment cache (0 disables all
  /// incremental realignment, including the low-memory untouched-lane skip).
  /// The override triangle only grows, so DP rows above the topmost
  /// newly-overridden pair are identical between rounds; sweeps resume below
  /// the deepest clean checkpoint instead of recomputing from row 1. The
  /// parallel finder splits this budget evenly across worker threads.
  std::size_t checkpoint_mem = std::size_t{256} << 20;  // 256 MiB
  /// Checkpoint rows emitted per sweep: the grid stride is
  /// ceil(rows / checkpoints_per_sweep); the row just above the group is
  /// always emitted as well, so untouched groups resume at full depth.
  int checkpoints_per_sweep = 16;
};

struct FinderStats {
  std::uint64_t first_alignments = 0;  ///< score-only alignments, empty triangle
  std::uint64_t realignments = 0;      ///< demanded re-alignments (stale member)
  std::uint64_t speculative = 0;       ///< lane-mates recomputed while current
  std::uint64_t tracebacks = 0;        ///< accepted top alignments traced
  std::uint64_t queue_pops = 0;
  std::uint64_t cells = 0;             ///< matrix lane-cells computed
  // Checkpoint-resume realignment cache (zero when disabled/unsupported):
  std::uint64_t ckpt_hits = 0;        ///< sweeps resumed from a checkpoint
  std::uint64_t ckpt_misses = 0;      ///< lookups that had to start at row 1
  std::uint64_t ckpt_evictions = 0;   ///< cache entries evicted by the budget
  std::uint64_t rows_skipped = 0;     ///< realignment DP rows restored, not swept
  std::uint64_t rows_swept = 0;       ///< realignment DP rows a from-scratch run sweeps
  std::uint64_t skipped_realignments = 0;  ///< low-memory untouched lanes bumped
  // Adaptive-precision SIMD (zero for engines without precision tracking):
  std::uint64_t i8_sweeps = 0;             ///< group sweeps run in u8 lanes
  std::uint64_t i16_sweeps = 0;            ///< group sweeps run in i16 lanes
  std::uint64_t precision_escalations = 0; ///< u8 sweeps re-run at i16
  std::uint64_t profile_hits = 0;          ///< sweeps reusing a cached profile
  /// Wall time inside realignment-phase sweeps (version > 0); the parallel
  /// finder sums it across threads like idle_seconds.
  double realign_seconds = 0.0;
  double seconds = 0.0;
  /// Wall time worker threads spent parked on the scheduler's condition
  /// variable, summed over threads (shared-memory finder only; the paper's
  /// §5.1 speculation exists precisely to shrink this).
  double idle_seconds = 0.0;
};

struct FinderResult {
  std::vector<TopAlignment> tops;
  FinderStats stats;
};

}  // namespace repro::core
