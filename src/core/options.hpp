// Options, statistics and result containers of the top-alignment finders.
#pragma once

#include <cstdint>
#include <vector>

#include "align/types.hpp"
#include "core/top_alignment.hpp"

namespace repro::core {

/// Realignment ordering (§3). kBestFirst is the paper's contribution: scores
/// from older override triangles are upper bounds, so realigning
/// best-score-first provably skips rectangles that cannot win (typically
/// 90–97 % of realignments). kExhaustiveSweep realigns every rectangle
/// before each acceptance — the old algorithm's schedule — and exists for
/// the ablation benches; both produce identical top alignments.
enum class RescanPolicy { kBestFirst, kExhaustiveSweep };

/// How first-alignment bottom rows (the shadow-rejection references and the
/// dominant data structure, Appendix A) are kept.
///   kArchiveRows    — the paper's implementation: m(m-1)/2 i16 entries.
///   kRecomputeRows  — the paper's proposed linear-memory variant: originals
///                     are recomputed on demand with an empty triangle. This
///                     costs one extra (override-free) alignment per
///                     realignment — and realignments are the rare case
///                     (best-first prunes ~97 %), so the total overhead is a
///                     few percent while the O(n^2) archive disappears.
enum class MemoryMode { kArchiveRows, kRecomputeRows };

/// How accepted alignments are reconstructed.
///   kFullMatrix  — the paper's traceback: recompute the rectangle's full
///                  matrix (rows x cols Scores) and walk back.
///   kLinearSpace — the memory-efficient traceback family the paper cites
///                  ("not covered here"): O(rows + cols) memory at ~2x the
///                  score-only work. Scores and validity are identical;
///                  among co-optimal paths it may mark different pairs, so
///                  runs are internally deterministic but not byte-identical
///                  to full-matrix runs beyond the first acceptance.
enum class TracebackMode { kFullMatrix, kLinearSpace };

struct FinderOptions {
  /// Top alignments requested; the paper uses 10–30, more for long
  /// sequences, 50 for Table 1 and up to 100 for Fig. 8.
  int num_top_alignments = 20;
  /// Stop early once no remaining alignment can reach this score.
  align::Score min_score = 1;
  RescanPolicy policy = RescanPolicy::kBestFirst;
  MemoryMode memory = MemoryMode::kArchiveRows;
  TracebackMode traceback = TracebackMode::kFullMatrix;
};

struct FinderStats {
  std::uint64_t first_alignments = 0;  ///< score-only alignments, empty triangle
  std::uint64_t realignments = 0;      ///< demanded re-alignments (stale member)
  std::uint64_t speculative = 0;       ///< lane-mates recomputed while current
  std::uint64_t tracebacks = 0;        ///< accepted top alignments traced
  std::uint64_t queue_pops = 0;
  std::uint64_t cells = 0;             ///< matrix lane-cells computed
  double seconds = 0.0;
  /// Wall time worker threads spent parked on the scheduler's condition
  /// variable, summed over threads (shared-memory finder only; the paper's
  /// §5.1 speculation exists precisely to shrink this).
  double idle_seconds = 0.0;
};

struct FinderResult {
  std::vector<TopAlignment> tops;
  FinderStats stats;
};

}  // namespace repro::core
