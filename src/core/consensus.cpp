#include "core/consensus.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace repro::core {
namespace {

/// Copy start offsets for a given phase; empty when fewer than two copies fit.
std::vector<int> segment(const RepeatRegion& region, int shift) {
  std::vector<int> begins;
  for (int start = region.begin + shift; start + region.period <= region.end;
       start += region.period)
    begins.push_back(start);
  if (begins.size() < 2) begins.clear();
  return begins;
}

/// Majority residue per column plus the total agreement count.
struct ColumnVote {
  std::vector<std::uint8_t> consensus;
  int agreement = 0;
};

ColumnVote vote(const seq::Sequence& s, const std::vector<int>& begins,
                int period) {
  ColumnVote result;
  result.consensus.resize(static_cast<std::size_t>(period));
  std::vector<int> counts(static_cast<std::size_t>(s.alphabet().size()));
  for (int c = 0; c < period; ++c) {
    std::fill(counts.begin(), counts.end(), 0);
    for (const int b : begins) ++counts[s[b + c]];
    // Majority, ties to the smallest code (deterministic).
    int best = 0;
    for (int a = 1; a < s.alphabet().size(); ++a)
      if (counts[static_cast<std::size_t>(a)] > counts[static_cast<std::size_t>(best)])
        best = a;
    result.consensus[static_cast<std::size_t>(c)] = static_cast<std::uint8_t>(best);
    result.agreement += counts[static_cast<std::size_t>(best)];
  }
  return result;
}

}  // namespace

RepeatProfile build_profile(const seq::Sequence& s, const RepeatRegion& region) {
  RepeatProfile profile;
  if (region.period <= 0) return profile;
  REPRO_CHECK(region.begin >= 0 && region.end <= s.length());

  // Phase search: all cyclic shifts of the segmentation; keep the one whose
  // columns agree most (ties to the smallest shift).
  int best_shift = -1;
  ColumnVote best_vote;
  std::vector<int> best_begins;
  for (int shift = 0; shift < region.period; ++shift) {
    const auto begins = segment(region, shift);
    if (begins.empty()) continue;
    ColumnVote v = vote(s, begins, region.period);
    // Normalise by copy count so a shift that drops one copy is not
    // penalised for having fewer voters; compare cross-multiplied.
    const bool better =
        best_shift < 0 ||
        static_cast<long long>(v.agreement) * static_cast<long long>(best_begins.size()) >
            static_cast<long long>(best_vote.agreement) * static_cast<long long>(begins.size());
    if (better) {
      best_shift = shift;
      best_vote = std::move(v);
      best_begins = begins;
    }
  }
  if (best_shift < 0) return profile;  // region too small for two copies

  profile.period = region.period;
  profile.begin = region.begin + best_shift;
  profile.copy_begins = std::move(best_begins);
  profile.agreement = best_vote.agreement;
  profile.consensus.reserve(static_cast<std::size_t>(region.period));
  for (const std::uint8_t code : best_vote.consensus)
    profile.consensus.push_back(s.alphabet().decode(code));

  profile.copy_identity.reserve(profile.copy_begins.size());
  double total = 0.0;
  for (const int b : profile.copy_begins) {
    int same = 0;
    for (int c = 0; c < profile.period; ++c)
      same += s[b + c] == best_vote.consensus[static_cast<std::size_t>(c)];
    const double identity =
        static_cast<double>(same) / static_cast<double>(profile.period);
    profile.copy_identity.push_back(identity);
    total += identity;
  }
  profile.mean_identity = total / static_cast<double>(profile.copy_identity.size());
  return profile;
}

std::vector<RepeatProfile> build_profiles(const seq::Sequence& s,
                                          const std::vector<RepeatRegion>& regions) {
  std::vector<RepeatProfile> profiles;
  for (const auto& region : regions) {
    RepeatProfile p = build_profile(s, region);
    if (p.period > 0) profiles.push_back(std::move(p));
  }
  return profiles;
}

}  // namespace repro::core
