// Repeat delineation from top alignments — the second phase of the Repro
// method.
//
// The paper computes top alignments as input to repeat delineation and lists
// two phase-2 refinements as future work: selecting the "best" repeat unit
// length (in AACAACAACAAC: two AACAAC, four AAC, or eight A?) and tuning
// tandem start positions. This module is a reference implementation of the
// delineation step plus that unit-length filter: top-alignment pairs vote
// for homology offsets; covered positions are merged into regions; each
// region's period is the shortest offset that explains (as a near-multiple)
// the bulk of the observed offsets.
#pragma once

#include <span>
#include <vector>

#include "core/top_alignment.hpp"
#include "seq/sequence.hpp"

namespace repro::core {

struct RepeatRegion {
  int begin = 0;      ///< first covered position (0-based)
  int end = 0;        ///< exclusive end
  int period = 0;     ///< selected repeat unit length
  int copies = 0;     ///< floor(span / period)
  int support = 0;    ///< number of top-alignment pairs inside the region
};

struct DelineateOptions {
  int max_gap = 25;        ///< coverage holes up to this length stay merged
  int min_region = 16;     ///< discard regions shorter than this
  int min_support = 8;     ///< discard regions with fewer supporting pairs
  double tolerance = 0.2;  ///< relative slack when matching offset multiples
};

/// Shortest period that explains the offset sample: the smallest candidate
/// (offset-cluster median) whose near-multiples cover at least as many
/// offsets as any other candidate (within 5 %). Returns 0 on empty input.
int select_period(std::span<const int> offsets, double tolerance = 0.2);

/// Delineates repeat regions of `s` from its top alignments.
std::vector<RepeatRegion> delineate_repeats(const seq::Sequence& s,
                                            const std::vector<TopAlignment>& tops,
                                            const DelineateOptions& options = {});

}  // namespace repro::core
