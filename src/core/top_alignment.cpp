#include "core/top_alignment.hpp"

#include <sstream>

#include "util/check.hpp"

namespace repro::core {

std::string render(const TopAlignment& top, const seq::Sequence& s) {
  REPRO_CHECK(!top.pairs.empty());
  std::string line_a, line_m, line_b;
  int pi = -1;
  int pj = -1;
  for (const auto& [i, j] : top.pairs) {
    if (pi >= 0) {
      // Gap segments between consecutive aligned pairs (at most one of the
      // two sides advances by more than one position).
      for (int k = pi + 1; k < i; ++k) {
        line_a += s.alphabet().decode(s[k]);
        line_m += ' ';
        line_b += '-';
      }
      for (int k = pj + 1; k < j; ++k) {
        line_a += '-';
        line_m += ' ';
        line_b += s.alphabet().decode(s[k]);
      }
    }
    line_a += s.alphabet().decode(s[i]);
    line_b += s.alphabet().decode(s[j]);
    line_m += s[i] == s[j] ? '|' : '.';
    pi = i;
    pj = j;
  }
  return line_a + '\n' + line_m + '\n' + line_b + '\n';
}

std::string summary(const TopAlignment& top) {
  std::ostringstream os;
  os << "r=" << top.r << " score=" << top.score << " prefix["
     << top.prefix_begin() << ".." << top.prefix_end() << "] x suffix["
     << top.suffix_begin() << ".." << top.suffix_end() << "] pairs="
     << top.pairs.size();
  return os.str();
}

}  // namespace repro::core
