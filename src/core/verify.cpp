#include "core/verify.hpp"

#include <set>
#include <sstream>

#include "util/check.hpp"

namespace repro::core {

align::Score score_from_pairs(const TopAlignment& top, const seq::Sequence& s,
                              const seq::Scoring& scoring) {
  REPRO_CHECK(!top.pairs.empty());
  align::Score score = 0;
  int pi = -1;
  int pj = -1;
  for (const auto& [i, j] : top.pairs) {
    REPRO_CHECK_MSG(i >= 0 && j < s.length() && i < j,
                    "pair (" << i << "," << j << ") out of bounds");
    if (pi >= 0) {
      const int di = i - pi;
      const int dj = j - pj;
      REPRO_CHECK_MSG(di >= 1 && dj >= 1, "pairs not strictly ascending");
      REPRO_CHECK_MSG(di == 1 || dj == 1,
                      "both sides gapped between consecutive pairs");
      if (di > 1) score -= scoring.gap.cost(di - 1);
      if (dj > 1) score -= scoring.gap.cost(dj - 1);
    }
    score += scoring.matrix.score(s[i], s[j]);
    pi = i;
    pj = j;
  }
  return score;
}

void validate_tops(const std::vector<TopAlignment>& tops,
                   const seq::Sequence& s, const seq::Scoring& scoring) {
  std::set<std::pair<int, int>> used;
  align::Score prev_score = 0;
  for (std::size_t t = 0; t < tops.size(); ++t) {
    const TopAlignment& top = tops[t];
    REPRO_CHECK_MSG(top.r >= 1 && top.r <= s.length() - 1,
                    "top " << t << ": split r=" << top.r << " out of range");
    REPRO_CHECK_MSG(top.score > 0, "top " << t << ": nonpositive score");
    REPRO_CHECK_MSG(!top.pairs.empty(), "top " << t << ": empty pair list");
    // Rectangle membership: prefix side < r, suffix side >= r.
    for (const auto& [i, j] : top.pairs) {
      REPRO_CHECK_MSG(i < top.r && j >= top.r,
                      "top " << t << ": pair (" << i << "," << j
                             << ") outside rectangle r=" << top.r);
    }
    // The alignment ends in the bottom row: last prefix position is r-1.
    REPRO_CHECK_MSG(top.pairs.back().first == top.r - 1,
                    "top " << t << " does not end in the bottom row");
    REPRO_CHECK_MSG(top.pairs.back().second == top.r + top.end_x - 1,
                    "top " << t << ": end_x inconsistent with last pair");
    // Score reproducibility.
    const align::Score recomputed = score_from_pairs(top, s, scoring);
    REPRO_CHECK_MSG(recomputed == top.score,
                    "top " << t << ": stored score " << top.score
                           << " != recomputed " << recomputed);
    // Nonoverlap: no residue pair may repeat across accepted alignments.
    for (const auto& p : top.pairs)
      REPRO_CHECK_MSG(used.insert(p).second,
                      "top " << t << ": pair (" << p.first << "," << p.second
                             << ") reused across top alignments");
    // Acceptance order: scores never increase.
    if (t > 0)
      REPRO_CHECK_MSG(top.score <= prev_score,
                      "top " << t << ": score " << top.score
                             << " exceeds previous " << prev_score);
    prev_score = top.score;
  }
}

bool same_tops(const std::vector<TopAlignment>& a,
               const std::vector<TopAlignment>& b, std::string* diff) {
  auto describe = [&](const std::string& msg) {
    if (diff != nullptr) *diff = msg;
    return false;
  };
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "count differs: " << a.size() << " vs " << b.size();
    return describe(os.str());
  }
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (!(a[t] == b[t])) {
      std::ostringstream os;
      os << "top " << t << " differs: {" << summary(a[t]) << "} vs {"
         << summary(b[t]) << "}";
      return describe(os.str());
    }
  }
  return true;
}

}  // namespace repro::core
