// The new sequential top-alignment algorithm (paper §3, Fig. 5, Appendix A).
//
// For a sequence S of length m, all m-1 prefix/suffix rectangles are first
// aligned score-only against the empty override triangle (their bottom rows
// are archived). Rectangles are then repeatedly taken best-score-first:
//   * if the best rectangle's score is stale (older triangle), it is
//     realigned — its new score is the shadow-rejected maximum of its bottom
//     row — and requeued;
//   * if it is current, it is *accepted*: its alignment is traced back, its
//     pairs are added to the override triangle, and the search continues for
//     the next top alignment.
// Scores under an older triangle are upper bounds for newer triangles, so
// best-first ordering is exact, not heuristic in the lossy sense: it skips
// only realignments that provably cannot produce the next top alignment.
//
// The engine decides the SIMD group width: with an L-lane engine, rectangles
// are scheduled in fixed groups of L neighbouring splits (§4.1); the
// accepted top alignments are identical for every engine and group width.
#pragma once

#include <string_view>

#include "align/bottom_row_store.hpp"
#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "core/options.hpp"
#include "seq/sequence.hpp"

namespace repro::core {

/// Runs the new algorithm with the given engine.
FinderResult find_top_alignments(const seq::Sequence& s,
                                 const seq::Scoring& scoring,
                                 const FinderOptions& options,
                                 align::Engine& engine);

/// Convenience overload using the widest SIMD engine available.
FinderResult find_top_alignments(const seq::Sequence& s,
                                 const seq::Scoring& scoring,
                                 const FinderOptions& options = {});

/// Accepts rectangle r as the next top alignment: recomputes its full matrix
/// under `triangle`, traces back the best valid end cell, verifies the score
/// equals `expected`, and marks the alignment's pairs in `triangle`.
/// Shared by the sequential, shared-memory, and distributed finders.
TopAlignment accept_alignment(const seq::Sequence& s,
                              const seq::Scoring& scoring,
                              align::OverrideTriangle& triangle,
                              const align::BottomRowStore& rows, int r,
                              align::Score expected);

/// Overload taking a freshly recomputed original bottom row (the Appendix-A
/// low-memory mode, MemoryMode::kRecomputeRows).
TopAlignment accept_alignment(const seq::Sequence& s,
                              const seq::Scoring& scoring,
                              align::OverrideTriangle& triangle,
                              std::span<const align::Score> original_row, int r,
                              align::Score expected);

/// Overload taking an archived (i16) original row directly — used by the
/// distributed master, whose row may be a fetched replica.
TopAlignment accept_alignment(const seq::Sequence& s,
                              const seq::Scoring& scoring,
                              align::OverrideTriangle& triangle,
                              std::span<const std::int16_t> original_row, int r,
                              align::Score expected);

/// Publishes a finished run's FinderStats to the global obs registry under
/// `prefix` (e.g. "finder." / "parallel." / "cluster."): one counter per
/// stat, a `<prefix>seconds` timer, a `<prefix>cells_per_sec` gauge, and —
/// when at least two tops were accepted — `<prefix>realignments_avoided_pct`,
/// the §3 claim measured against the exhaustive-sweep baseline of
/// (tops-1)*(m-1) realignments. No-op when REPRO_OBS is off. Shared by the
/// sequential, shared-memory, and distributed finders.
void publish_finder_stats(const FinderStats& stats, int m,
                          std::string_view prefix);

}  // namespace repro::core
