// Waterman–Eggert (1987) K-best nonoverlapping local alignments of a
// sequence pair — the zero-override predecessor the paper builds on
// (Appendix A cites Waterman & Eggert and Huang et al.).
//
// After each reported alignment its path cells are forbidden (forced to
// zero) and the matrix is recomputed — which is precisely the recompute
// cascade the paper's override triangle manages incrementally across all
// m-1 rectangles at once. Two deliberate differences from the top-alignment
// machinery, preserved for fidelity to the original method:
//   * alignments may end anywhere in the matrix (a pair alignment has no
//     bottom-row-sufficiency argument);
//   * there is no shadow rejection — a rerouted suboptimal alignment is
//     reported if it is the current matrix maximum (the paper's §3/Appendix
//     explain why Repro must NOT do this for self-alignment rectangles).
#pragma once

#include <utility>
#include <vector>

#include "align/types.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"

namespace repro::core {

struct PairAlignment {
  align::Score score = 0;
  /// Aligned index pairs (position in a, position in b), strictly ascending.
  std::vector<std::pair<int, int>> pairs;
};

/// Up to k best nonoverlapping local alignments of a vs b; stops early when
/// the best remaining score drops below min_score.
std::vector<PairAlignment> waterman_eggert(const seq::Sequence& a,
                                           const seq::Sequence& b,
                                           const seq::Scoring& scoring, int k,
                                           align::Score min_score = 1);

/// Recomputes a PairAlignment's score from its pairs (test/verify helper).
align::Score pair_score(const PairAlignment& alignment, const seq::Sequence& a,
                        const seq::Sequence& b, const seq::Scoring& scoring);

}  // namespace repro::core
