// Repeat profiles: consensus extraction for delineated repeat regions —
// the rest of Repro's second phase, including the paper's future-work item
// of tuning "the right starting positions of tandem repeats".
//
// A RepeatRegion (delineate.hpp) carries a span and a period; this module
// segments the span into period-length copies, searches the cyclic phase
// whose columns agree best (repeat boundaries are "often vague" — the
// paper), and derives a majority-vote consensus with per-copy identities.
// Columnwise by design: indel-rich copies blur the tail columns, which the
// identity numbers then reflect honestly.
#pragma once

#include <string>
#include <vector>

#include "core/delineate.hpp"
#include "seq/sequence.hpp"

namespace repro::core {

struct RepeatProfile {
  int begin = 0;    ///< tuned start of the first full copy
  int period = 0;
  std::vector<int> copy_begins;      ///< starts of the segmented copies
  std::string consensus;             ///< majority residue per column
  std::vector<double> copy_identity; ///< per copy: fraction matching consensus
  double mean_identity = 0.0;
  /// Total majority agreements over all columns/copies — the phase-search
  /// objective; exposed for tests and ranking.
  int agreement = 0;
};

/// Builds the profile of one region; returns a default-constructed profile
/// (period 0) when the region cannot hold two full copies.
RepeatProfile build_profile(const seq::Sequence& s, const RepeatRegion& region);

/// Profiles for every region (skipping degenerate ones).
std::vector<RepeatProfile> build_profiles(const seq::Sequence& s,
                                          const std::vector<RepeatRegion>& regions);

}  // namespace repro::core
