#include "core/delineate.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace repro::core {

int select_period(std::span<const int> offsets, double tolerance) {
  if (offsets.empty()) return 0;
  std::vector<int> sorted(offsets.begin(), offsets.end());
  std::sort(sorted.begin(), sorted.end());

  // Candidate periods must have *direct evidence* in the data: either an
  // observed offset, or a pairwise difference between offsets (top
  // alignments mostly pair copies several units apart — a pair (i, j) of a
  // split-r alignment satisfies i < r <= j — so the fundamental period often
  // appears only as the spacing between offset levels). Requiring direct
  // evidence is what keeps spurious subharmonics (p/2, p/4, ...) out.
  constexpr int kMinPeriod = 2;
  constexpr std::size_t kMaxSample = 256;
  std::vector<int> sample;
  if (sorted.size() <= kMaxSample) {
    sample = sorted;
  } else {
    for (std::size_t k = 0; k < kMaxSample; ++k)
      sample.push_back(sorted[k * sorted.size() / kMaxSample]);
  }
  std::vector<int> evidence = sample;
  for (std::size_t a = 0; a < sample.size(); ++a)
    for (std::size_t b = a + 1; b < sample.size(); ++b)
      if (sample[b] - sample[a] >= kMinPeriod)
        evidence.push_back(sample[b] - sample[a]);
  std::sort(evidence.begin(), evidence.end());
  evidence.erase(std::unique(evidence.begin(), evidence.end()), evidence.end());

  // A candidate explains an offset when the offset sits within slack of one
  // of its positive multiples; slack is capped below p/2 so small periods
  // cannot trivially explain everything.
  auto slack_of = [&](int p) {
    return std::min(std::max(1, static_cast<int>(tolerance * p)), (p - 1) / 2);
  };
  auto explained = [&](int p) {
    const int slack = slack_of(p);
    std::size_t n = 0;
    for (int o : sorted) {
      const int mult = std::max(1, (o + p / 2) / p);
      if (std::abs(o - mult * p) <= slack) ++n;
    }
    return n;
  };
  // Direct evidence: enough observed values near the candidate itself.
  auto direct_support = [&](int p) {
    const int slack = slack_of(p);
    std::size_t n = 0;
    for (int e : evidence) n += std::abs(e - p) <= slack;
    return n;
  };

  // Score = explained minus the count a random offset sample would explain
  // by chance ((2*slack+1)/p of it). The correction is what demotes exact
  // subharmonics: p/5 explains every multiple of p too, but explains random
  // positions five times as often, so its corrected score collapses.
  const auto n = static_cast<double>(sorted.size());
  auto score_of = [&](int p) {
    const double chance = n * (2.0 * slack_of(p) + 1.0) / p;
    return static_cast<double>(explained(p)) - chance;
  };

  double best_score = 0.0;
  for (int p : evidence) {
    if (p < kMinPeriod && sorted.back() >= kMinPeriod) continue;
    best_score = std::max(best_score, score_of(p));
  }
  // Shortest directly-evidenced candidate scoring close to the best: the
  // "prefer four AAC over two AACAAC" rule.
  int fallback = evidence.back();
  for (int p : evidence) {
    if (p < kMinPeriod && sorted.back() >= kMinPeriod) continue;
    if (direct_support(p) == 0) continue;
    fallback = std::min(fallback, p);
    if (best_score > 0.0 && score_of(p) >= 0.8 * best_score) return p;
  }
  return fallback;
}

std::vector<RepeatRegion> delineate_repeats(const seq::Sequence& s,
                                            const std::vector<TopAlignment>& tops,
                                            const DelineateOptions& options) {
  REPRO_CHECK(options.max_gap >= 0 && options.min_region > 0);
  const int m = s.length();

  // Coverage: positions touched by any aligned pair.
  std::vector<bool> covered(static_cast<std::size_t>(m), false);
  std::vector<std::pair<int, int>> all_pairs;
  for (const auto& top : tops) {
    for (const auto& [i, j] : top.pairs) {
      covered[static_cast<std::size_t>(i)] = true;
      covered[static_cast<std::size_t>(j)] = true;
      all_pairs.emplace_back(i, j);
    }
  }

  // Merge covered positions into regions, bridging holes up to max_gap.
  std::vector<RepeatRegion> regions;
  int pos = 0;
  while (pos < m) {
    if (!covered[static_cast<std::size_t>(pos)]) {
      ++pos;
      continue;
    }
    int end = pos + 1;
    int last_covered = pos;
    while (end < m && end - last_covered <= options.max_gap) {
      if (covered[static_cast<std::size_t>(end)]) last_covered = end;
      ++end;
    }
    RepeatRegion region;
    region.begin = pos;
    region.end = last_covered + 1;
    regions.push_back(region);
    pos = end;
  }

  // Characterise each region by per-alignment offsets: each top alignment
  // contributes the *median* offset of its pairs inside the region. Pair-
  // level offsets drift along indel-rich paths and one long alignment would
  // swamp the sample; per-top medians keep each homology vote equal.
  std::vector<RepeatRegion> out;
  for (RepeatRegion region : regions) {
    if (region.end - region.begin < options.min_region) continue;
    std::vector<int> offsets;
    for (const auto& top : tops) {
      std::vector<int> inside;
      for (const auto& [i, j] : top.pairs) {
        if (i >= region.begin && j < region.end) {
          inside.push_back(j - i);
          ++region.support;
        }
      }
      if (inside.size() >= 4) {
        std::nth_element(inside.begin(), inside.begin() + static_cast<std::ptrdiff_t>(inside.size() / 2),
                         inside.end());
        offsets.push_back(inside[inside.size() / 2]);
      }
    }
    if (region.support < options.min_support) continue;
    region.period = select_period(offsets, options.tolerance);
    region.copies =
        region.period > 0 ? (region.end - region.begin) / region.period : 0;
    out.push_back(region);
  }
  return out;
}

}  // namespace repro::core
