#include "core/task_queue.hpp"

namespace repro::core {

std::vector<GroupTask> make_groups(int m, int lanes) {
  REPRO_CHECK(m >= 2);
  REPRO_CHECK(lanes >= 1);
  std::vector<GroupTask> groups;
  for (int r0 = 1; r0 <= m - 1; r0 += lanes)
    groups.emplace_back(r0, std::min(lanes, m - r0));
  return groups;
}

void GroupQueue::push(int group_index, TaskKey key) {
  const bool inserted = entries_.emplace(key, group_index).second;
  REPRO_CHECK_MSG(inserted, "group " << group_index << " already queued");
  pushes_ += 1;
}

std::optional<int> GroupQueue::pop_best() {
  if (entries_.empty()) return std::nullopt;
  const auto head = *entries_.begin();
  entries_.erase(entries_.begin());
  pops_ += 1;
  // Best-first ordering (Fig. 5): nothing left in the queue may order
  // before the key just popped.
  REPRO_DCHECK_MSG(entries_.empty() ||
                       !entries_.begin()->first.before(head.first),
                   "queue head (score=" << entries_.begin()->first.score
                       << ", r=" << entries_.begin()->first.r
                       << ") orders before the popped key (score="
                       << head.first.score << ", r=" << head.first.r << ")");
  return head.second;
}

std::optional<TaskKey> GroupQueue::peek_key() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.begin()->first;
}

std::optional<std::pair<TaskKey, int>> GroupQueue::peek() const {
  if (entries_.empty()) return std::nullopt;
  return *entries_.begin();
}

}  // namespace repro::core
