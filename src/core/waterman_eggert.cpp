#include "core/waterman_eggert.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace repro::core {
namespace {

using align::kNegInf;
using align::Score;

/// Full affine local-alignment matrix with a forbidden-cell set.
class PairMatrix {
 public:
  PairMatrix(const seq::Sequence& a, const seq::Sequence& b,
             const seq::Scoring& scoring)
      : a_(a), b_(b), scoring_(scoring), w_(static_cast<std::size_t>(b.length()) + 1) {
    mat_.resize((static_cast<std::size_t>(a.length()) + 1) * w_);
  }

  void recompute(const std::set<std::pair<int, int>>& forbidden) {
    const int rows = a_.length();
    const int cols = b_.length();
    std::fill(mat_.begin(), mat_.end(), 0);
    std::vector<Score> max_y(w_, kNegInf);
    best_ = 0;
    best_y_ = 0;
    best_x_ = 0;
    for (int y = 1; y <= rows; ++y) {
      const std::int16_t* erow = scoring_.matrix.row(a_[y - 1]);
      Score max_x = kNegInf;
      for (int x = 1; x <= cols; ++x) {
        const Score diag = at(y - 1, x - 1);
        const Score inner = std::max({max_x, max_y[static_cast<std::size_t>(x)], diag});
        Score h = std::max(Score{0}, erow[b_[x - 1]] + inner);
        if (forbidden.contains({y - 1, x - 1})) h = 0;
        at(y, x) = h;
        // Best over ALL cells (no bottom-row restriction for pairs); ties
        // to the smallest (y, x) for determinism.
        if (h > best_) {
          best_ = h;
          best_y_ = y;
          best_x_ = x;
        }
        max_x = std::max(diag - scoring_.gap.open, max_x) - scoring_.gap.extend;
        max_y[static_cast<std::size_t>(x)] =
            std::max(diag - scoring_.gap.open, max_y[static_cast<std::size_t>(x)]) -
            scoring_.gap.extend;
      }
    }
  }

  [[nodiscard]] Score best() const { return best_; }

  /// Walks back from the matrix maximum (same move preferences as the
  /// rectangle traceback: diagonal, shortest horizontal gap, shortest
  /// vertical gap).
  [[nodiscard]] PairAlignment traceback() const {
    PairAlignment out;
    out.score = best_;
    int y = best_y_;
    int x = best_x_;
    while (true) {
      const Score h = at(y, x);
      REPRO_DCHECK(h > 0);
      out.pairs.emplace_back(y - 1, x - 1);
      const Score e = scoring_.matrix.score(a_[y - 1], b_[x - 1]);
      const Score inner = h - e;
      int py = -1;
      int px = -1;
      if (at(y - 1, x - 1) == inner) {
        py = y - 1;
        px = x - 1;
      } else {
        for (int g = 1; g <= x - 2 && py < 0; ++g)
          if (at(y - 1, x - 1 - g) - scoring_.gap.open - g * scoring_.gap.extend ==
              inner) {
            py = y - 1;
            px = x - 1 - g;
          }
        for (int g = 1; g <= y - 2 && py < 0; ++g)
          if (at(y - 1 - g, x - 1) - scoring_.gap.open - g * scoring_.gap.extend ==
              inner) {
            py = y - 1 - g;
            px = x - 1;
          }
      }
      REPRO_CHECK_MSG(py >= 0, "pair traceback lost at (" << y << "," << x << ")");
      if (at(py, px) == 0) break;
      y = py;
      x = px;
    }
    std::reverse(out.pairs.begin(), out.pairs.end());
    return out;
  }

 private:
  [[nodiscard]] Score& at(int y, int x) {
    return mat_[static_cast<std::size_t>(y) * w_ + static_cast<std::size_t>(x)];
  }
  [[nodiscard]] Score at(int y, int x) const {
    return mat_[static_cast<std::size_t>(y) * w_ + static_cast<std::size_t>(x)];
  }

  const seq::Sequence& a_;
  const seq::Sequence& b_;
  const seq::Scoring& scoring_;
  std::size_t w_;
  std::vector<Score> mat_;
  Score best_ = 0;
  int best_y_ = 0;
  int best_x_ = 0;
};

}  // namespace

std::vector<PairAlignment> waterman_eggert(const seq::Sequence& a,
                                           const seq::Sequence& b,
                                           const seq::Scoring& scoring, int k,
                                           align::Score min_score) {
  REPRO_CHECK(k >= 0);
  REPRO_CHECK(min_score >= 1);
  REPRO_CHECK(a.length() >= 1 && b.length() >= 1);
  std::vector<PairAlignment> out;
  std::set<std::pair<int, int>> forbidden;
  PairMatrix matrix(a, b, scoring);
  for (int round = 0; round < k; ++round) {
    // The original method's schedule: full recompute after each report (the
    // paper's override triangle makes this incremental across rectangles).
    matrix.recompute(forbidden);
    if (matrix.best() < min_score) break;
    PairAlignment alignment = matrix.traceback();
    for (const auto& p : alignment.pairs) forbidden.insert(p);
    out.push_back(std::move(alignment));
  }
  return out;
}

align::Score pair_score(const PairAlignment& alignment, const seq::Sequence& a,
                        const seq::Sequence& b, const seq::Scoring& scoring) {
  REPRO_CHECK(!alignment.pairs.empty());
  Score score = 0;
  int pi = -1;
  int pj = -1;
  for (const auto& [i, j] : alignment.pairs) {
    REPRO_CHECK(i >= 0 && i < a.length() && j >= 0 && j < b.length());
    if (pi >= 0) {
      const int di = i - pi;
      const int dj = j - pj;
      REPRO_CHECK(di >= 1 && dj >= 1 && (di == 1 || dj == 1));
      if (di > 1) score -= scoring.gap.cost(di - 1);
      if (dj > 1) score -= scoring.gap.cost(dj - 1);
    }
    score += scoring.matrix.score(a[i], b[j]);
    pi = i;
    pj = j;
  }
  return score;
}

}  // namespace repro::core
