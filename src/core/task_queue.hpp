// Group task bookkeeping and the best-first queue (paper Fig. 5 and §4.1).
//
// Rectangles are scheduled in fixed groups of L consecutive splits (L = the
// engine's SIMD lane count; L = 1 degenerates to the paper's Fig.-5
// per-rectangle queue). Each member carries the score of its most recent
// alignment — an upper bound once the override triangle has grown — and the
// triangle version it was aligned against. A group's queue key is its best
// member's (score, split), so popping the queue yields exactly the task the
// sequential Fig.-5 algorithm would pick, independent of grouping.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "align/types.hpp"
#include "util/check.hpp"

namespace repro::core {

/// Sentinel "never aligned" score; orders above any real score (Fig. 5 line 4).
inline constexpr align::Score kScoreInf = align::Score{1} << 29;

/// Queue ordering key: higher score first, then smaller split.
struct TaskKey {
  align::Score score = 0;
  int r = 0;

  /// True when *this orders before (is preferred over) `o`.
  [[nodiscard]] bool before(const TaskKey& o) const {
    return score != o.score ? score > o.score : r < o.r;
  }
};

/// One group of consecutive splits with per-member alignment state.
struct GroupTask {
  int r0 = 1;
  int count = 1;
  std::vector<align::Score> score;  ///< per member; kScoreInf = never aligned
  std::vector<int> version;         ///< triangle version of last alignment; -1 = never

  GroupTask(int r0_, int count_)
      : r0(r0_),
        count(count_),
        score(static_cast<std::size_t>(count_), kScoreInf),
        version(static_cast<std::size_t>(count_), -1) {}

  /// Best member: maximum score, ties to the smallest split. This is the
  /// member the Fig.-5 task queue would pop first.
  [[nodiscard]] int best_member() const {
    int best = 0;
    for (int k = 1; k < count; ++k)
      if (score[static_cast<std::size_t>(k)] > score[static_cast<std::size_t>(best)])
        best = k;
    return best;
  }

  [[nodiscard]] TaskKey key() const {
    const int b = best_member();
    return {score[static_cast<std::size_t>(b)], r0 + b};
  }

  /// True when the best member was aligned against the current triangle.
  [[nodiscard]] bool best_up_to_date(int current_version) const {
    return version[static_cast<std::size_t>(best_member())] == current_version;
  }
};

/// Builds the fixed group partition for a sequence of length m: groups of
/// `lanes` consecutive splits 1..m-1 (the last group may be partial).
std::vector<GroupTask> make_groups(int m, int lanes);

/// Ordered queue of group indices, keyed by the groups' current TaskKeys.
/// Groups must be re-inserted after any state mutation (pop, mutate, push).
class GroupQueue {
 public:
  void push(int group_index, TaskKey key);

  /// Pops the overall best group; nullopt when empty.
  std::optional<int> pop_best();

  /// Pops the best group for which `stale(index)` holds, skipping better
  /// up-to-date groups (the shared-memory scheduler's speculative pick).
  template <typename Pred>
  std::optional<int> pop_best_if(Pred&& stale) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (stale(it->second)) {
        const int g = it->second;
        entries_.erase(it);
        pops_ += 1;
        return g;
      }
      stale_skips_ += 1;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<TaskKey> peek_key() const;

  /// Key and group index of the current head; nullopt when empty.
  [[nodiscard]] std::optional<std::pair<TaskKey, int>> peek() const;
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Lifetime push / pop counts and the number of up-to-date entries skipped
  /// over by pop_best_if while hunting for a stale group (a direct measure of
  /// how speculative the shared-memory scheduler had to get). Plain integers:
  /// every caller already serializes queue access.
  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }
  [[nodiscard]] std::uint64_t pops() const { return pops_; }
  [[nodiscard]] std::uint64_t stale_skips() const { return stale_skips_; }

 private:
  struct Cmp {
    bool operator()(const std::pair<TaskKey, int>& a,
                    const std::pair<TaskKey, int>& b) const {
      if (a.first.score != b.first.score) return a.first.score > b.first.score;
      if (a.first.r != b.first.r) return a.first.r < b.first.r;
      return a.second < b.second;
    }
  };
  std::set<std::pair<TaskKey, int>, Cmp> entries_;
  std::uint64_t pushes_ = 0;
  std::uint64_t pops_ = 0;
  std::uint64_t stale_skips_ = 0;
};

}  // namespace repro::core
