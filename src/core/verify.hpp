// Structural verification of top-alignment results.
//
// Used by the test suite and by benches in --verify mode; these checks
// encode the paper's invariants:
//   * a top alignment's score is reproducible from its pairs (exchange
//     values minus affine gap costs),
//   * accepted alignments never share a residue pair (nonoverlap, §2.2),
//   * scores are nonincreasing across the accepted sequence (the override
//     triangle only removes scoring mass),
//   * two finders/configurations produce identical top alignments (the
//     paper's "computes exactly the same top alignments" claim).
#pragma once

#include <string>
#include <vector>

#include "core/top_alignment.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"

namespace repro::core {

/// Recomputes the alignment score from the pair list.
align::Score score_from_pairs(const TopAlignment& top, const seq::Sequence& s,
                              const seq::Scoring& scoring);

/// Throws (with a descriptive message) on any violated invariant.
void validate_tops(const std::vector<TopAlignment>& tops,
                   const seq::Sequence& s, const seq::Scoring& scoring);

/// Compares two result lists; when they differ and `diff` is non-null, a
/// human-readable description of the first divergence is written to it.
bool same_tops(const std::vector<TopAlignment>& a,
               const std::vector<TopAlignment>& b, std::string* diff = nullptr);

}  // namespace repro::core
