// Top alignments: the output objects of the search (paper §2.2).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "align/types.hpp"
#include "seq/sequence.hpp"

namespace repro::core {

/// One accepted nonoverlapping top alignment: a local alignment of prefix
/// S[0..r) against suffix S[r..m) whose aligned residue pairs do not reuse
/// any pair of a previously accepted top alignment.
struct TopAlignment {
  int r = 0;                ///< split point
  align::Score score = 0;   ///< Smith–Waterman score under the overrides
  int end_x = 0;            ///< 1-based end column within rectangle r
  /// Aligned residue pairs as global 0-based positions (i, j), i < j,
  /// strictly ascending in both components.
  std::vector<std::pair<int, int>> pairs;

  bool operator==(const TopAlignment&) const = default;

  /// First/last prefix position covered (0-based, inclusive).
  [[nodiscard]] int prefix_begin() const { return pairs.front().first; }
  [[nodiscard]] int prefix_end() const { return pairs.back().first; }
  /// First/last suffix position covered (0-based, inclusive).
  [[nodiscard]] int suffix_begin() const { return pairs.front().second; }
  [[nodiscard]] int suffix_end() const { return pairs.back().second; }
};

/// Renders the classic three-line gapped view (sequence / match bars /
/// sequence) of one top alignment, e.g.
///   TTACAGA
///   || |.||
///   TTGC-GA
std::string render(const TopAlignment& top, const seq::Sequence& s);

/// One-line summary "r=… score=… [i0..i1] x [j0..j1] pairs=…".
std::string summary(const TopAlignment& top);

}  // namespace repro::core
