#include "core/top_alignment_finder.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "align/checkpoint_cache.hpp"
#include "align/linear_traceback.hpp"
#include "align/traceback.hpp"
#include "core/task_queue.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace repro::core {
namespace {

/// Shared per-run state and the group realignment step (used by both rescan
/// policies).
class SequentialRun {
 public:
  SequentialRun(const seq::Sequence& s, const seq::Scoring& scoring,
                const FinderOptions& options, align::Engine& engine)
      : s_(s),
        scoring_(scoring),
        options_(options),
        engine_(engine),
        m_(s.length()),
        triangle_(m_),
        groups_(make_groups(m_, engine.lanes())) {
    REPRO_CHECK_MSG(m_ >= 2, "sequence too short for top alignments");
    REPRO_CHECK(options.min_score >= 1);
    if (options.memory == MemoryMode::kArchiveRows)
      rows_.emplace(m_);  // otherwise: Appendix-A linear-memory mode
    REPRO_CHECK_MSG(&scoring.matrix.alphabet() == &s.alphabet(),
                    "scoring matrix alphabet does not match the sequence");
    out_rows_.resize(static_cast<std::size_t>(engine.lanes()));
    plain_rows_.resize(static_cast<std::size_t>(engine.lanes()));
    if (options.checkpoint_mem > 0 && engine.supports_checkpoints())
      cache_.emplace(options.checkpoint_mem);
  }

  FinderResult run() {
    obs::ScopedSpan span(obs::Registry::global(), "finder.run");
    util::WallTimer timer;
    const std::uint64_t cells0 = engine_.cells_computed();
    const align::PrecisionStats prec0 = engine_.precision_stats();
    if (options_.policy == RescanPolicy::kBestFirst) {
      run_best_first();
    } else {
      run_exhaustive();
    }
    result_.stats.cells = engine_.cells_computed() - cells0;
    // Engines may be reused across runs (their query profile persists by
    // design); report this run's precision activity as a delta.
    const align::PrecisionStats prec = engine_.precision_stats();
    result_.stats.i8_sweeps = prec.i8_sweeps - prec0.i8_sweeps;
    result_.stats.i16_sweeps = prec.i16_sweeps - prec0.i16_sweeps;
    result_.stats.precision_escalations = prec.escalations - prec0.escalations;
    result_.stats.profile_hits = prec.profile_hits - prec0.profile_hits;
    result_.stats.seconds = timer.seconds();
    if (cache_) {
      const align::CheckpointCacheStats& cs = cache_->stats();
      result_.stats.ckpt_hits = cs.hits;
      result_.stats.ckpt_misses = cs.misses;
      result_.stats.ckpt_evictions = cs.evictions;
    }
    publish_finder_stats(result_.stats, m_, "finder.");
    return std::move(result_);
  }

 private:
  int version() const { return static_cast<int>(result_.tops.size()); }

  bool incremental() const { return options_.checkpoint_mem > 0; }

  int ckpt_stride(int rows) const {
    const int c = std::max(1, options_.checkpoints_per_sweep);
    return std::max(1, (rows + c - 1) / c);
  }

  /// Deepest plain-checkpoint row still usable by an *overridden* sweep of
  /// the group at r0: no accepted pair reaches rows at or above it.
  int plain_valid_limit(int r0) const {
    const int md = all_dirty_.min_dirty_row(r0);
    return md == align::PairDirtyIndex::kNoDirtyRow
               ? std::numeric_limits<int>::max()
               : md - 1;
  }

  /// True when no pair accepted since a stale member's version intersects
  /// its rectangle — row and score are then provably unchanged.
  bool group_untouched(const GroupTask& g) const {
    for (int k = 0; k < g.count; ++k) {
      const int v = g.version[static_cast<std::size_t>(k)];
      if (v == version()) continue;
      if (v < 0) return false;
      const int r = g.r0 + k;
      for (int t = v; t < version(); ++t)
        if (dirty_[static_cast<std::size_t>(t)].min_dirty_row(r) <= r)
          return false;
    }
    return true;
  }

  /// Wires checkpoint resume/emission into a sweep job; returns the number
  /// of DP rows the sweep will restore instead of computing. `lookup` is off
  /// for first alignments (nothing can be cached yet, and counting them as
  /// misses would dilute the hit rate).
  int attach_checkpoints(align::GroupJob& job, align::CheckpointSink& sink,
                         align::CheckpointView& view, int rows,
                         bool plain_sweep, bool lookup) {
    if (!cache_) return 0;
    int resumed = 0;
    if (lookup) {
      const auto found =
          cache_->find(job.r0, plain_sweep,
                       plain_sweep ? 0 : plain_valid_limit(job.r0));
      if (found) {
        view = *found;
        job.resume = &view;
        resumed = view.row;
        // Checkpoint-resume consistency: a resume point must lie strictly
        // inside the group's row range (the kernel re-enters at row + 1).
        REPRO_DCHECK(view.row >= 1 && view.row < job.r0);
      }
    }
    sink.stride = ckpt_stride(rows);
    sink.top_row = job.r0 - 1;
    job.sink = &sink;
    return resumed;
  }

  /// (Re)aligns every member of a group against the current triangle and
  /// refreshes the member scores (shadow-rejected bottom-row maxima).
  void realign_group(GroupTask& g) {
    FinderStats& st = result_.stats;
    const bool is_realign = version() > 0;
    const int rows_g = g.r0 + g.count - 1;

    // Low-memory fast path: when every stale member's rectangle is untouched
    // by the pairs accepted since its version, both the overridden sweep and
    // the paired empty-triangle recompute are provably no-ops — bump the
    // versions without computing anything.
    if (incremental() && !rows_.has_value() && is_realign &&
        group_untouched(g)) {
      for (int k = 0; k < g.count; ++k) {
        auto& v = g.version[static_cast<std::size_t>(k)];
        if (v != version()) {
          v = version();
          ++st.skipped_realignments;
        }
      }
      return;
    }

    align::GroupJob job;
    job.seq = s_.codes();
    job.scoring = &scoring_;
    job.overrides = version() == 0 ? nullptr : &triangle_;
    job.r0 = g.r0;
    job.count = g.count;
    outs_.resize(static_cast<std::size_t>(g.count));
    for (int k = 0; k < g.count; ++k) {
      out_rows_[static_cast<std::size_t>(k)].resize(
          static_cast<std::size_t>(m_ - (g.r0 + k)));
      outs_[static_cast<std::size_t>(k)] = out_rows_[static_cast<std::size_t>(k)];
    }
    // A version-0 sweep runs under the empty triangle and is cached as a
    // plain sweep; overridden checkpoints stay valid via invalidation.
    const int resumed = attach_checkpoints(job, sink_, resume_view_, rows_g,
                                           /*plain_sweep=*/version() == 0,
                                           /*lookup=*/is_realign);
    util::WallTimer sweep_timer;
    engine_.align(job, outs_);

    // Low-memory mode: no archive — recompute the empty-triangle originals
    // with one extra group alignment (only realignments pay this).
    const bool recompute = !rows_.has_value() && is_realign;
    int plain_resumed = 0;
    if (recompute) {
      align::GroupJob plain = job;
      plain.overrides = nullptr;
      plain.resume = nullptr;
      plain.sink = nullptr;
      plain_outs_.resize(static_cast<std::size_t>(g.count));
      for (int k = 0; k < g.count; ++k) {
        plain_rows_[static_cast<std::size_t>(k)].resize(
            static_cast<std::size_t>(m_ - (g.r0 + k)));
        plain_outs_[static_cast<std::size_t>(k)] =
            plain_rows_[static_cast<std::size_t>(k)];
      }
      plain_resumed =
          attach_checkpoints(plain, plain_sink_, plain_resume_view_, rows_g,
                             /*plain_sweep=*/true, /*lookup=*/true);
      engine_.align(plain, plain_outs_);
    }
    if (is_realign) {
      st.realign_seconds += sweep_timer.seconds();
      st.rows_swept += static_cast<std::uint64_t>(rows_g);
      st.rows_skipped += static_cast<std::uint64_t>(resumed);
      if (recompute) {
        st.rows_swept += static_cast<std::uint64_t>(rows_g);
        st.rows_skipped += static_cast<std::uint64_t>(plain_resumed);
      }
    }

    for (int k = 0; k < g.count; ++k) {
      const int r = g.r0 + k;
      auto& row = out_rows_[static_cast<std::size_t>(k)];
      if (g.version[static_cast<std::size_t>(k)] == -1) {
        // Every rectangle is first-aligned while all queue keys are still
        // infinite, i.e. before any acceptance; the archived bottom rows are
        // therefore always empty-triangle originals.
        REPRO_CHECK(version() == 0);
        if (rows_.has_value()) rows_->store(r, row);
        ++st.first_alignments;
        g.score[static_cast<std::size_t>(k)] = align::find_best_end(row).score;
      } else {
        const align::Score old_score = g.score[static_cast<std::size_t>(k)];
        const bool was_current =
            g.version[static_cast<std::size_t>(k)] == version();
        if (was_current) {
          ++st.speculative;  // lane-mate recomputed although already current
        } else {
          ++st.realignments;
        }
        g.score[static_cast<std::size_t>(k)] =
            rows_.has_value()
                ? align::find_best_end(row, rows_->row(r)).score
                : align::find_best_end(
                      row, std::span<const align::Score>(
                               plain_rows_[static_cast<std::size_t>(k)]))
                      .score;
        if constexpr (check::kContractsEnabled) {
          // Upper-bound property (Fig. 5): the triangle only removes
          // scoring mass, so a realignment against a grown triangle can
          // never raise a member's score — and recomputing an up-to-date
          // member (same triangle, same shadow row) is deterministic.
          if (was_current) {
            REPRO_DCHECK_MSG(
                g.score[static_cast<std::size_t>(k)] == old_score,
                "speculative recompute changed r=" << r << " from "
                    << old_score << " to "
                    << g.score[static_cast<std::size_t>(k)]);
          } else {
            REPRO_DCHECK_MSG(
                g.score[static_cast<std::size_t>(k)] <= old_score,
                "realignment raised r=" << r << " from " << old_score
                    << " to " << g.score[static_cast<std::size_t>(k)]
                    << " — upper-bound property violated");
          }
        }
      }
      g.version[static_cast<std::size_t>(k)] = version();
    }

    if (cache_) {
      const align::Score priority =
          *std::max_element(g.score.begin(), g.score.end());
      cache_->store(g.r0, /*plain_class=*/version() == 0, priority, sink_);
      if (recompute)
        cache_->store(g.r0, /*plain_class=*/true, priority, plain_sink_);
    }
  }

  void accept(GroupTask& g, int member) {
    const int r = g.r0 + member;
    const align::Score expected = g.score[static_cast<std::size_t>(member)];
    if (options_.traceback == TracebackMode::kLinearSpace) {
      accept_linear(r, expected);
    } else if (rows_.has_value()) {
      result_.tops.push_back(
          accept_alignment(s_, scoring_, triangle_, *rows_, r, expected));
    } else {
      // Recompute the original row for the shadow check of the traceback.
      // Empty-triangle sweeps resume from (and refresh) plain checkpoints.
      align::GroupJob plain;
      plain.seq = s_.codes();
      plain.scoring = &scoring_;
      plain.r0 = r;
      plain.count = 1;
      attach_checkpoints(plain, plain_sink_, plain_resume_view_, r,
                         /*plain_sweep=*/true, /*lookup=*/true);
      const std::vector<align::Score> original = engine_.align_one(plain);
      if (cache_) cache_->store(r, /*plain_class=*/true, expected, plain_sink_);
      result_.tops.push_back(accept_alignment(s_, scoring_, triangle_,
                                              original, r, expected));
    }
    ++result_.stats.tracebacks;
    record_acceptance();
  }

  /// Acceptance via the O(rows+cols)-memory traceback (TracebackMode::
  /// kLinearSpace); shares the shadow-rejection reference with accept().
  void accept_linear(int r, align::Score expected) {
    align::GroupJob job;
    job.seq = s_.codes();
    job.scoring = &scoring_;
    job.overrides = &triangle_;
    job.r0 = r;
    job.count = 1;
    align::Traceback tb;
    if (rows_.has_value()) {
      tb = align::traceback_best_linear(job, rows_->row(r));
    } else {
      align::GroupJob plain = job;
      plain.overrides = nullptr;
      attach_checkpoints(plain, plain_sink_, plain_resume_view_, r,
                         /*plain_sweep=*/true, /*lookup=*/true);
      const std::vector<align::Score> original = engine_.align_one(plain);
      if (cache_) cache_->store(r, /*plain_class=*/true, expected, plain_sink_);
      tb = align::traceback_best_linear(
          job, std::span<const align::Score>(original));
    }
    REPRO_CHECK(tb.score == expected);
    for (const auto& [i, j] : tb.pairs) triangle_.set(i, j);
    TopAlignment top;
    top.r = r;
    top.score = tb.score;
    top.end_x = tb.end_x;
    top.pairs = std::move(tb.pairs);
    result_.tops.push_back(std::move(top));
  }

  /// Indexes the just-accepted alignment's pairs and invalidates checkpoints
  /// the new override bits can reach.
  void record_acceptance() {
    if constexpr (check::kContractsEnabled) {
      REPRO_DCHECK(!result_.tops.empty());
      const std::size_t n = result_.tops.size();
      // Acceptance order (§2.2): scores never increase down the top list.
      REPRO_DCHECK_MSG(
          n < 2 || result_.tops[n - 1].score <= result_.tops[n - 2].score,
          "acceptance " << n - 1 << " (score "
                        << result_.tops[n - 1].score
                        << ") outranks its predecessor (score "
                        << result_.tops[n - 2].score << ")");
      // Triangle monotone growth: every accepted pair is now overridden.
      for (const auto& [i, j] : result_.tops.back().pairs)
        REPRO_DCHECK(triangle_.contains(i, j));
    }
    if (!incremental()) return;
    const TopAlignment& top = result_.tops.back();
    const std::span<const std::pair<int, int>> pairs(top.pairs);
    dirty_.emplace_back(pairs);
    all_pairs_.insert(all_pairs_.end(), top.pairs.begin(), top.pairs.end());
    all_dirty_ = align::PairDirtyIndex(
        std::span<const std::pair<int, int>>(all_pairs_));
    if (cache_) cache_->invalidate(dirty_.back());
  }

  void run_best_first() {
    GroupQueue queue;
    for (std::size_t gi = 0; gi < groups_.size(); ++gi)
      queue.push(static_cast<int>(gi), groups_[gi].key());

    while (static_cast<int>(result_.tops.size()) < options_.num_top_alignments) {
      const auto gi = queue.pop_best();
      if (!gi) break;
      GroupTask& g = groups_[static_cast<std::size_t>(*gi)];
      ++result_.stats.queue_pops;
      const int b = g.best_member();
      if (g.version[static_cast<std::size_t>(b)] == version()) {
        if (g.score[static_cast<std::size_t>(b)] < options_.min_score) {
          queue.push(*gi, g.key());
          break;  // nothing left can reach min_score: all bounds are lower
        }
        accept(g, b);
      } else {
        realign_group(g);
      }
      queue.push(*gi, g.key());
    }

    if constexpr (obs::kEnabled) {
      auto& reg = obs::Registry::global();
      reg.counter("finder.queue.pushes").add(queue.pushes());
      reg.counter("finder.queue.pops").add(queue.pops());
      reg.counter("finder.queue.stale_skips").add(queue.stale_skips());
    }
  }

  void run_exhaustive() {
    while (static_cast<int>(result_.tops.size()) < options_.num_top_alignments) {
      // Old-style schedule: bring every rectangle up to date, then accept
      // the global best. Produces the same tops as best-first.
      for (auto& g : groups_) {
        bool stale = false;
        for (int k = 0; k < g.count; ++k)
          stale |= g.version[static_cast<std::size_t>(k)] != version();
        if (stale) realign_group(g);
      }
      int best_gi = -1;
      TaskKey best_key;
      for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        const TaskKey k = groups_[gi].key();
        if (best_gi < 0 || k.before(best_key)) {
          best_gi = static_cast<int>(gi);
          best_key = k;
        }
      }
      REPRO_CHECK(best_gi >= 0);
      if (best_key.score < options_.min_score) break;
      GroupTask& g = groups_[static_cast<std::size_t>(best_gi)];
      accept(g, g.best_member());
    }
  }

  const seq::Sequence& s_;
  const seq::Scoring& scoring_;
  const FinderOptions& options_;
  align::Engine& engine_;
  int m_;
  align::OverrideTriangle triangle_;
  std::optional<align::BottomRowStore> rows_;
  std::vector<GroupTask> groups_;
  std::vector<std::vector<align::Score>> out_rows_;
  std::vector<std::vector<align::Score>> plain_rows_;
  std::vector<std::span<align::Score>> outs_;        ///< reused across sweeps
  std::vector<std::span<align::Score>> plain_outs_;  ///< reused across sweeps
  // Checkpoint-resume state: one dirty index per acceptance (low-memory
  // untouched-lane skip), the cumulative index (plain-entry validity), and
  // reusable sinks/views so warm realignments allocate nothing.
  std::optional<align::CheckpointCache> cache_;
  std::vector<align::PairDirtyIndex> dirty_;
  std::vector<std::pair<int, int>> all_pairs_;
  align::PairDirtyIndex all_dirty_;
  align::CheckpointSink sink_;
  align::CheckpointSink plain_sink_;
  align::CheckpointView resume_view_;
  align::CheckpointView plain_resume_view_;
  FinderResult result_;
};

}  // namespace

namespace {

template <typename T>
TopAlignment accept_with_row(const seq::Sequence& s, const seq::Scoring& scoring,
                             align::OverrideTriangle& triangle,
                             std::span<const T> original_row, int r,
                             align::Score expected) {
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &scoring;
  job.overrides = &triangle;
  job.r0 = r;
  job.count = 1;
  align::Traceback tb = align::traceback_best(job, original_row);
  REPRO_CHECK_MSG(tb.score == expected,
                  "acceptance score mismatch at r=" << r << ": queued "
                                                    << expected << ", traced "
                                                    << tb.score);
  for (const auto& [i, j] : tb.pairs) triangle.set(i, j);
  TopAlignment top;
  top.r = r;
  top.score = tb.score;
  top.end_x = tb.end_x;
  top.pairs = std::move(tb.pairs);
  return top;
}

}  // namespace

TopAlignment accept_alignment(const seq::Sequence& s, const seq::Scoring& scoring,
                              align::OverrideTriangle& triangle,
                              const align::BottomRowStore& rows, int r,
                              align::Score expected) {
  return accept_with_row<std::int16_t>(s, scoring, triangle, rows.row(r), r,
                                       expected);
}

TopAlignment accept_alignment(const seq::Sequence& s, const seq::Scoring& scoring,
                              align::OverrideTriangle& triangle,
                              std::span<const align::Score> original_row, int r,
                              align::Score expected) {
  return accept_with_row<align::Score>(s, scoring, triangle, original_row, r,
                                       expected);
}

TopAlignment accept_alignment(const seq::Sequence& s, const seq::Scoring& scoring,
                              align::OverrideTriangle& triangle,
                              std::span<const std::int16_t> original_row, int r,
                              align::Score expected) {
  return accept_with_row<std::int16_t>(s, scoring, triangle, original_row, r,
                                       expected);
}

void publish_finder_stats(const FinderStats& stats, int m,
                          std::string_view prefix) {
  if constexpr (!obs::kEnabled) {
    (void)stats;
    (void)m;
    (void)prefix;
    return;
  }
  auto& reg = obs::Registry::global();
  const auto key = [&prefix](std::string_view name) {
    std::string k(prefix);
    k += name;
    return k;
  };
  reg.counter(key("first_alignments")).add(stats.first_alignments);
  reg.counter(key("realignments")).add(stats.realignments);
  reg.counter(key("speculative")).add(stats.speculative);
  reg.counter(key("tracebacks")).add(stats.tracebacks);
  reg.counter(key("queue_pops")).add(stats.queue_pops);
  reg.counter(key("cells")).add(stats.cells);
  reg.counter(key("ckpt_hits")).add(stats.ckpt_hits);
  reg.counter(key("ckpt_misses")).add(stats.ckpt_misses);
  reg.counter(key("ckpt_evictions")).add(stats.ckpt_evictions);
  reg.counter(key("ckpt_rows_skipped")).add(stats.rows_skipped);
  reg.counter(key("ckpt_rows_swept")).add(stats.rows_swept);
  reg.counter(key("skipped_realignments")).add(stats.skipped_realignments);
  reg.counter(key("i8_sweeps")).add(stats.i8_sweeps);
  reg.counter(key("i16_sweeps")).add(stats.i16_sweeps);
  reg.counter(key("precision_escalations")).add(stats.precision_escalations);
  reg.counter(key("profile_hits")).add(stats.profile_hits);
  if (stats.realign_seconds > 0.0)
    reg.timer(key("realign_seconds")).add_seconds(stats.realign_seconds);
  if (stats.ckpt_hits + stats.ckpt_misses > 0)
    reg.set_gauge(key("ckpt_hit_rate_pct"),
                  100.0 * static_cast<double>(stats.ckpt_hits) /
                      static_cast<double>(stats.ckpt_hits + stats.ckpt_misses));
  if (stats.rows_swept > 0)
    reg.set_gauge(key("ckpt_rows_skipped_pct"),
                  100.0 * static_cast<double>(stats.rows_skipped) /
                      static_cast<double>(stats.rows_swept));
  reg.timer(key("seconds")).add_seconds(stats.seconds);
  if (stats.idle_seconds > 0.0)
    reg.timer(key("idle_seconds")).add_seconds(stats.idle_seconds);
  if (stats.seconds > 0.0)
    reg.set_gauge(key("cells_per_sec"),
                  static_cast<double>(stats.cells) / stats.seconds);
  if (stats.tracebacks >= 2 && m >= 2) {
    // Exhaustive-sweep baseline: each of the tops-1 later acceptances would
    // realign all m-1 rectangles (the first sweep is first-alignments).
    const double sweep = static_cast<double>(stats.tracebacks - 1) *
                         static_cast<double>(m - 1);
    reg.set_gauge(key("realignments_avoided_pct"),
                  100.0 * (1.0 - static_cast<double>(stats.realignments) /
                                     sweep));
  }
}

FinderResult find_top_alignments(const seq::Sequence& s,
                                 const seq::Scoring& scoring,
                                 const FinderOptions& options,
                                 align::Engine& engine) {
  SequentialRun run(s, scoring, options, engine);
  return run.run();
}

FinderResult find_top_alignments(const seq::Sequence& s,
                                 const seq::Scoring& scoring,
                                 const FinderOptions& options) {
  const auto engine = align::make_best_engine();
  return find_top_alignments(s, scoring, options, *engine);
}

}  // namespace repro::core
