// Empirical score significance for top alignments.
//
// Which min_score separates real repeats from chance self-similarity
// depends on the metric and the sequence composition (and, as the DNA
// example shows, permissive metrics can even sit in the linear score regime
// where chance alignments grow with length). Instead of analytic
// Karlin–Altschul statistics — which do not cover gapped, self-alignment,
// linear-regime cases — we calibrate empirically, exactly as one would have
// next to the original Repro: shuffle the sequence (preserving composition),
// find the best top alignment of each shuffle, and take a high quantile of
// that null distribution as the threshold.
#pragma once

#include <cstdint>

#include "align/types.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"

namespace repro::core {

struct SignificanceOptions {
  int samples = 20;          ///< shuffled replicas to score
  double quantile = 1.0;     ///< 1.0 = max of the null sample (conservative)
  double margin = 1.05;      ///< multiplied onto the quantile
  std::uint64_t seed = 1;    ///< shuffle RNG seed
};

/// Returns a min_score threshold: top alignments of `s` scoring above it are
/// unlikely to arise from composition alone. Cost: `samples` single-top
/// searches on shuffles of `s`.
align::Score score_threshold(const seq::Sequence& s, const seq::Scoring& scoring,
                             const SignificanceOptions& options = {});

/// Composition-preserving shuffle (Fisher–Yates on the residue codes).
seq::Sequence shuffled(const seq::Sequence& s, std::uint64_t seed);

}  // namespace repro::core
