#include "core/significance.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/top_alignment_finder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace repro::core {

seq::Sequence shuffled(const seq::Sequence& s, std::uint64_t seed) {
  std::vector<std::uint8_t> codes(s.codes().begin(), s.codes().end());
  util::Rng rng(seed);
  for (std::size_t i = codes.size(); i > 1; --i)
    std::swap(codes[i - 1], codes[rng.below(i)]);
  return seq::Sequence(s.name() + "-shuffled", std::move(codes), s.alphabet());
}

align::Score score_threshold(const seq::Sequence& s, const seq::Scoring& scoring,
                             const SignificanceOptions& options) {
  REPRO_CHECK(options.samples >= 1);
  REPRO_CHECK(options.quantile > 0.0 && options.quantile <= 1.0);
  REPRO_CHECK(options.margin >= 1.0);

  std::vector<align::Score> null_scores;
  null_scores.reserve(static_cast<std::size_t>(options.samples));
  FinderOptions one;
  one.num_top_alignments = 1;
  const auto engine = align::make_best_engine();
  for (int k = 0; k < options.samples; ++k) {
    const seq::Sequence null_seq = shuffled(s, options.seed + static_cast<std::uint64_t>(k));
    const FinderResult res = find_top_alignments(null_seq, scoring, one, *engine);
    null_scores.push_back(res.tops.empty() ? 0 : res.tops.front().score);
  }
  std::sort(null_scores.begin(), null_scores.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(options.quantile * static_cast<double>(null_scores.size())) - 1);
  const align::Score q = null_scores[std::min(idx, null_scores.size() - 1)];
  return std::max<align::Score>(
      1, static_cast<align::Score>(std::ceil(options.margin * q)) + 1);
}

}  // namespace repro::core
