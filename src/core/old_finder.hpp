// The old (1993) top-alignment algorithm — the paper's baseline.
//
// Three properties make it O(n^4) where the new algorithm is O(n^3):
//   * the Eq.-1 recurrence is evaluated literally, scanning the whole row
//     and column with a length-dependent gap penalty: O(n) per cell (the new
//     algorithm's affine running maxima are O(1) per cell);
//   * every rectangle is realigned from scratch for every top alignment
//     (no best-first upper-bound ordering);
//   * shadow alignments are rejected by the expensive double alignment the
//     paper's Appendix A describes: each rectangle is aligned both with and
//     without the override triangle, and only bottom-row cells with equal
//     scores are valid alignment ends (the new algorithm archives the
//     empty-triangle bottom rows once instead).
//
// It computes exactly the same top alignments as the new algorithm (the
// paper's central correctness claim), which the test suite enforces.
#pragma once

#include "core/options.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"

namespace repro::core {

FinderResult find_top_alignments_old(const seq::Sequence& s,
                                     const seq::Scoring& scoring,
                                     const FinderOptions& options = {});

}  // namespace repro::core
