// Coarse-grained SIMD alignment kernel (paper §4.1, Figs. 6 & 7).
//
// One sweep computes `count` *neighbouring* rectangles — splits r0, r0+1,
// ..., r0+count-1 — in up to L lanes. The element type is a template
// parameter of the Ops policy: saturating i16 (the paper's width),
// saturating unsigned-biased u8 (double the lanes per register), or plain
// i32 (no saturation limit):
//
//   * Columns are indexed by global suffix position j in [r0, m); lane k
//     (split rk = r0+k) is valid for j >= rk, i.e. column c = j - r0 >= k.
//     The first count-1 columns therefore carry per-lane masks; forcing
//     H = 0 in a lane's invalid columns reproduces that lane's true left
//     boundary exactly (local-alignment scores are clamped at zero, so the
//     only contamination paths — gap maxima fed from masked cells — are
//     strictly negative and never win). This is the paper's "corrections for
//     the left and bottom borders".
//   * Cell (row y, column j) aligns the pair (i, j) = (y-1, j) in *every*
//     lane, so a single exchange-matrix lookup is broadcast to all lanes and
//     a single override-triangle bit zeroes all lanes at once. In rows
//     deeper than a lane's rectangle the pair degenerates to i >= j; those
//     lane-cells are garbage that is never extracted, and the override test
//     is skipped there (the triangle is a strict upper triangle).
//   * Rows are swept to rows = r0+count-1; lane k's bottom row is extracted
//     when y == rk.
//   * Matrix state is interleaved in memory (Fig. 7): entry (c, k) lives at
//     index c*L + k, so one aligned vector load fetches one column of all
//     lanes.
//   * Cache-aware striping (§4.1): columns are processed in stripes whose
//     row state fits in L1; per-row (H, MaxX) carries flow across stripe
//     boundaries.
//   * Saturation safety: a running per-lane peak (masked so garbage
//     lane-cells cannot contribute) certifies the sweep. A sweep is clean
//     when the peak stays at or below the element type's certification
//     limit — the largest value from which one more profile add provably
//     cannot saturate (i16: 32766; u8: 255 - bias - max_score). Peaks above
//     the limit are reported conservatively as saturated: the caller either
//     re-runs the group at a wider precision (adaptive engines) or throws.
//   * Unsigned u8 lanes (Farrar/SSW-style): profile entries carry
//     bias = max(0, -min_score()), the H update is
//     subs(adds(inner, e_biased), bias) = max(0, inner + score), and gap
//     maxima clamp at 0 instead of running to -inf. This is lossless:
//     inner = max(mx, my, diag) with diag >= 0 (a previous H or the zero
//     boundary), and each clamped gap chain X satisfies
//     X_true <= X_clamped <= max(X_true, 0) inductively (the update
//     X' = max(gap_start, X) - e preserves it, and gap_start >= its true
//     value by the same invariant on diag-fed starts) — so whenever a
//     clamped term wins the inner max it equals a value >= 0 that the true
//     recurrence also produces, and H trajectories are identical as long as
//     no adds saturates, which the peak certification guarantees.
//
// The kernel is templated over an Ops policy (SSE2, AVX2, or a portable
// scalar-lane fallback) providing saturating adds/subs, max, and masking.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#include "align/engine_detail.hpp"
#include "align/override_triangle.hpp"
#include "align/query_profile.hpp"
#include "align/types.hpp"
#include "check/contracts.hpp"
#include "util/aligned.hpp"

namespace repro::align::detail {

/// Portable lane ops; the compiler is free to auto-vectorize these loops
/// (the paper's remark that vectorizing compilers can handle data-independent
/// lanes). Also used to cross-check the intrinsic engines in tests.
template <int W>
struct GenericOps {
  static constexpr int kLanes = W;
  using Elem = std::int16_t;
  static constexpr bool kSaturating = true;
  struct Vec {
    std::int16_t v[W];
  };

  static Vec zero() {
    Vec r{};
    return r;
  }
  static Vec set1(std::int16_t x) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = x;
    return r;
  }
  static Vec load(const std::int16_t* p) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = p[k];
    return r;
  }
  static void store(std::int16_t* p, Vec a) {
    for (int k = 0; k < W; ++k) p[k] = a.v[k];
  }
  static Vec max(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = a.v[k] > b.v[k] ? a.v[k] : b.v[k];
    return r;
  }
  static Vec adds(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k) {
      const int s = int{a.v[k]} + int{b.v[k]};
      r.v[k] = static_cast<std::int16_t>(std::clamp(s, -32768, 32767));
    }
    return r;
  }
  static Vec subs(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k) {
      const int s = int{a.v[k]} - int{b.v[k]};
      r.v[k] = static_cast<std::int16_t>(std::clamp(s, -32768, 32767));
    }
    return r;
  }
  static Vec and_(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k)
      r.v[k] = static_cast<std::int16_t>(a.v[k] & b.v[k]);
    return r;
  }
};

/// Portable 32-bit lane ops: plain (non-saturating) arithmetic; scores are
/// bounded well inside i32 so wrapping cannot occur (the max local-alignment
/// score is max_exchange x min(rows, cols) < 2^24 at any realistic scale).
template <int W>
struct GenericOps32 {
  static constexpr int kLanes = W;
  using Elem = align::Score;
  static constexpr bool kSaturating = false;
  struct Vec {
    align::Score v[W];
  };

  static Vec zero() {
    Vec r{};
    return r;
  }
  static Vec set1(align::Score x) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = x;
    return r;
  }
  static Vec load(const align::Score* p) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = p[k];
    return r;
  }
  static void store(align::Score* p, Vec a) {
    for (int k = 0; k < W; ++k) p[k] = a.v[k];
  }
  static Vec max(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = a.v[k] > b.v[k] ? a.v[k] : b.v[k];
    return r;
  }
  static Vec adds(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = a.v[k] + b.v[k];
    return r;
  }
  static Vec subs(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = a.v[k] - b.v[k];
    return r;
  }
  static Vec and_(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = a.v[k] & b.v[k];
    return r;
  }
};

/// Portable unsigned u8 lane ops: saturating-unsigned arithmetic over biased
/// profile entries (see the header comment). Twice the lanes of GenericOps
/// in the same register width; adds clamps at 255, subs clamps at 0.
template <int W>
struct GenericOps8 {
  static constexpr int kLanes = W;
  using Elem = std::uint8_t;
  static constexpr bool kSaturating = true;
  struct Vec {
    std::uint8_t v[W];
  };

  static Vec zero() {
    Vec r{};
    return r;
  }
  static Vec set1(std::uint8_t x) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = x;
    return r;
  }
  static Vec load(const std::uint8_t* p) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = p[k];
    return r;
  }
  static void store(std::uint8_t* p, Vec a) {
    for (int k = 0; k < W; ++k) p[k] = a.v[k];
  }
  static Vec max(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k) r.v[k] = a.v[k] > b.v[k] ? a.v[k] : b.v[k];
    return r;
  }
  static Vec adds(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k) {
      const int s = int{a.v[k]} + int{b.v[k]};
      r.v[k] = static_cast<std::uint8_t>(s > 255 ? 255 : s);
    }
    return r;
  }
  static Vec subs(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k) {
      const int s = int{a.v[k]} - int{b.v[k]};
      r.v[k] = static_cast<std::uint8_t>(s < 0 ? 0 : s);
    }
    return r;
  }
  static Vec and_(Vec a, Vec b) {
    Vec r;
    for (int k = 0; k < W; ++k)
      r.v[k] = static_cast<std::uint8_t>(a.v[k] & b.v[k]);
    return r;
  }
};

/// Scratch buffers reused across group alignments (one instance per engine;
/// engines are single-threaded by contract).
template <typename Elem>
struct SimdScratchT {
  static_assert(std::is_integral_v<Elem> &&
                    (sizeof(Elem) == 1 || sizeof(Elem) == 2 ||
                     sizeof(Elem) == 4),
                "SIMD scratch elements are u8, i16, or i32");
  // The AVX2 kernels (16 x i16 and 32 x u8) issue 32-byte aligned loads on
  // these rows; AlignedAllocator's cache-line alignment must cover that.
  static_assert(util::kCacheLine % 32 == 0,
                "scratch rows must satisfy 32-byte AVX2 vector loads");
  std::vector<Elem, util::AlignedAllocator<Elem>> h;
  std::vector<Elem, util::AlignedAllocator<Elem>> max_y;
  std::vector<Elem, util::AlignedAllocator<Elem>> carry_h;
  std::vector<Elem, util::AlignedAllocator<Elem>> carry_mx;
  /// Per-stripe diagonal entry vectors captured from a restored checkpoint
  /// (one cache-line-aligned slot per stripe; see run_simd_group).
  std::vector<Elem, util::AlignedAllocator<Elem>> resume_diag;
};

/// resize() that never shrinks: steady-state sweeps reuse capacity, and the
/// slack past the live size is never read.
template <typename V>
inline void grow_to(V& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

using SimdScratch = SimdScratchT<std::int16_t>;

/// "Minus infinity" for the element type (i16 lanes rely on saturation).
/// Unsigned lanes have no negatives: their gap maxima clamp at 0, which the
/// header comment's invariant shows is lossless.
template <typename Elem>
constexpr Elem neg_inf_of() {
  if constexpr (!std::is_signed_v<Elem>) {
    return 0;
  } else if constexpr (sizeof(Elem) == 2) {
    return kNegInf16;
  } else {
    return kNegInf;
  }
}

/// Sweeps one group. `profile` (optional for signed elements, REQUIRED for
/// unsigned ones, which need the folded bias) replaces the per-cell exchange
/// matrix lookup with one indexed profile load. `saturated` selects the
/// saturation protocol: when null a saturating sweep throws (explicit
/// fixed-precision engines); when non-null it is set to whether the sweep
/// saturated — on saturation the sink is emptied (its rows were computed
/// from possibly-clamped state and are uncertified) and the outputs are
/// garbage the caller must discard by re-running at wider precision.
template <class Ops>
void run_simd_group(const GroupJob& job, std::span<const std::span<Score>> out,
                    int stripe_cols, SimdScratchT<typename Ops::Elem>& scratch,
                    const QueryProfileT<typename Ops::Elem>* profile = nullptr,
                    bool* saturated = nullptr) {
  constexpr int L = Ops::kLanes;
  using Vec = typename Ops::Vec;
  using Elem = typename Ops::Elem;
  constexpr bool kUnsigned = !std::is_signed_v<Elem>;

  const auto& seq = job.seq;
  const int m = static_cast<int>(seq.size());
  const int r0 = job.r0;
  const int count = job.count;
  const int width = m - r0;          // columns of the widest lane (lane 0)
  const int rows = r0 + count - 1;   // rows of the deepest lane
  const seq::ScoreMatrix& ex = job.scoring->matrix;
  if constexpr (kUnsigned) {
    static_assert(Ops::kSaturating, "unsigned lanes must saturate");
    REPRO_CHECK_MSG(profile != nullptr && profile->feasible(),
                    "unsigned u8 kernels require a feasible biased query "
                    "profile (group r0=" << r0 << ")");
  }
  const bool use_profile = profile != nullptr;
  REPRO_CHECK(!use_profile || profile->width() == m);
  const Vec v_open = Ops::set1(static_cast<Elem>(job.scoring->gap.open));
  const Vec v_ext = Ops::set1(static_cast<Elem>(job.scoring->gap.extend));
  const Vec v_zero = Ops::zero();
  const Vec v_neg = Ops::set1(neg_inf_of<Elem>());
  [[maybe_unused]] const Vec v_bias =
      Ops::set1(static_cast<Elem>(use_profile ? profile->bias() : 0));

  // Mask tables, kept as aligned i16 so vectors of over-aligned register
  // types never land in (insufficiently aligned) std::vector storage.
  // colmask row c: lane k alive iff c >= k — masks the first count-1 columns.
  // deepmask row t-1 (t = y - r0 >= 1): lane k alive iff k >= t — masks
  // garbage lane-cells out of the saturation peak in the deepest rows.
  alignas(64) Elem colmask[L * L];
  alignas(64) Elem deepmask[L * L];
  for (int c = 0; c + 1 < count; ++c)
    for (int k = 0; k < L; ++k)
      colmask[c * L + k] = static_cast<Elem>(c >= k ? -1 : 0);
  for (int t = 1; t < count; ++t)
    for (int k = 0; k < L; ++k)
      deepmask[(t - 1) * L + k] = static_cast<Elem>(k >= t ? -1 : 0);

  auto& h = scratch.h;
  auto& max_y = scratch.max_y;
  auto& carry_h = scratch.carry_h;
  auto& carry_mx = scratch.carry_mx;
  const std::size_t state_elems = static_cast<std::size_t>(width) * L;
  const std::size_t state_bytes = state_elems * sizeof(Elem);

  // Checkpoint resume: restore the interleaved (H, MaxY) state as the kernel
  // left it after DP row resume->row and re-enter the sweep one row below.
  // Stripe carries need no restoring — during the resumed sweep every carry
  // of a row >= y_begin is written by an earlier stripe before a later
  // stripe reads it; the only checkpoint-sourced carry is each stripe's
  // initial diagonal (H[y_begin-1][c0-1]), captured below.
  int y_begin = 1;
  if (job.resume != nullptr) {
    const CheckpointView& ck = *job.resume;
    REPRO_CHECK_MSG(ck.lanes == L &&
                        ck.elem_size == static_cast<int>(sizeof(Elem)) &&
                        ck.bytes == state_bytes && ck.row >= 1 && ck.row < r0,
                    "checkpoint state does not match this kernel's layout "
                    "(group r0=" << r0 << ")");
    grow_to(h, state_elems);
    grow_to(max_y, state_elems);
    std::memcpy(h.data(), ck.h, state_bytes);
    std::memcpy(max_y.data(), ck.max_y, state_bytes);
    y_begin = ck.row + 1;
    if constexpr (check::kContractsEnabled && !kUnsigned) {
      // Checkpoint rows are emitted at y <= r0-1, above every lane's bottom
      // row, so every restored lane-cell is a genuine (clamped) local score.
      // (Unsigned elements satisfy this by type.)
      for (std::size_t e = 0; e < state_elems; ++e)
        REPRO_DCHECK_MSG(h[e] >= 0, "restored checkpoint H negative at elem "
                                        << e << " (group r0=" << r0 << ")");
    }
  } else {
    h.assign(state_elems, 0);
    max_y.assign(state_elems, neg_inf_of<Elem>());
  }
  REPRO_DCHECK_MSG(util::is_vector_aligned(h.data()) &&
                       util::is_vector_aligned(max_y.data()),
                   "SIMD scratch rows must be 32-byte aligned");
  const bool resumed = y_begin > 1;

  const int stripe = stripe_cols <= 0 ? width : stripe_cols;
  const bool striped = stripe < width;
  if (striped) {
    // Grow-only: carry values are only ever read after an earlier stripe of
    // the same sweep wrote them (the stripe-0 carry_h read feeds a diagonal
    // that stripe 0 never uses), so stale contents are harmless.
    grow_to(carry_h, static_cast<std::size_t>(rows + 1) * L);
    grow_to(carry_mx, static_cast<std::size_t>(rows + 1) * L);
  }

  // A restored stripe's first row needs the checkpoint's H at the column
  // left of the stripe as its diagonal, but earlier stripes overwrite h[]
  // while they sweep — capture those vectors up front, one 64-byte slot per
  // stripe so the aligned vector loads stay legal.
  constexpr int kDiagSlot = static_cast<int>(util::kCacheLine / sizeof(Elem));
  auto& resume_diag = scratch.resume_diag;
  if (resumed && striped) {
    const int nstripes = (width + stripe - 1) / stripe;
    grow_to(resume_diag, static_cast<std::size_t>(nstripes) * kDiagSlot);
    for (int s = 1; s < nstripes; ++s)
      std::memcpy(
          resume_diag.data() + static_cast<std::size_t>(s) * kDiagSlot,
          h.data() + (static_cast<std::size_t>(s) * stripe - 1) * L,
          sizeof(Elem) * L);
  }

  // Checkpoint emission grid: rows on the sink's stride plus its top row,
  // clamped above every lane's bottom row so outputs are always recomputed.
  CheckpointSink* sink = job.sink;
  if (sink != nullptr) {
    REPRO_CHECK(sink->stride >= 1);
    sink->lanes = L;
    sink->elem_size = static_cast<int>(sizeof(Elem));
    sink->prepare(y_begin, std::min(sink->top_row, r0 - 1), state_bytes);
  }

  Vec v_peak = v_zero;  // running max of valid lane-cells (saturation guard)
  // Rows <= y_begin-1 were certified by the sweep that emitted the restored
  // checkpoint (saturating sweeps throw before their checkpoints are kept).

  for (int c0 = 0; c0 < width; c0 += stripe) {
    const int c1 = std::min(width, c0 + stripe);
    // Boundary row (y = 0) carry: H = 0, MaxX = -inf. Resumed stripes past
    // the first instead enter with the checkpoint's diagonal.
    Vec old_carry_above = v_zero;
    if (resumed && c0 > 0)
      old_carry_above = Ops::load(
          resume_diag.data() +
          static_cast<std::size_t>(c0 / stripe) * kDiagSlot);
    int emit_idx = 0;
    for (int y = y_begin; y <= rows; ++y) {
      const int i = y - 1;
      // One row pointer per DP row: the profile's pre-biased Elem row when a
      // profile is cached, else the raw exchange-matrix row.
      const Elem* prow =
          use_profile ? profile->row(seq[static_cast<std::size_t>(i)]) : nullptr;
      const std::int16_t* erow =
          use_profile ? nullptr : ex.row(seq[static_cast<std::size_t>(i)]);
      const std::atomic<std::uint64_t>* obits =
          (job.overrides != nullptr && !job.overrides->row_empty(i))
              ? job.overrides->row_bits(i)
              : nullptr;
      const int deep = y - r0;  // > 0 in the last count-1 rows
      const bool mask_peak = deep > 0;
      const Vec v_peak_mask =
          mask_peak ? Ops::load(deepmask + (deep - 1) * L) : v_zero;
      Vec v_diag = c0 == 0 ? v_zero : old_carry_above;
      Vec v_mx = c0 == 0
                     ? v_neg
                     : Ops::load(carry_mx.data() + static_cast<std::size_t>(y) * L);
      for (int c = c0; c < c1; ++c) {
        const int j = r0 + c;
        Elem* hp = h.data() + static_cast<std::size_t>(c) * L;
        Elem* myp = max_y.data() + static_cast<std::size_t>(c) * L;
        const Vec v_up = Ops::load(hp);
        const Vec v_my = Ops::load(myp);
        const Vec v_inner = Ops::max(v_mx, Ops::max(v_my, v_diag));
        const Vec v_e =
            use_profile
                ? Ops::set1(prow[static_cast<std::size_t>(j)])
                : Ops::set1(static_cast<Elem>(
                      erow[seq[static_cast<std::size_t>(j)]]));
        Vec v_h;
        if constexpr (kUnsigned) {
          // inner >= 0 and the profile entry carries the bias, so
          // subs(adds(inner, e+bias), bias) = max(0, inner + score) exactly
          // whenever adds does not saturate (certified by the peak below).
          v_h = Ops::subs(Ops::adds(v_inner, v_e), v_bias);
        } else {
          v_h = Ops::max(v_zero, Ops::adds(v_e, v_inner));
        }
        // Deep rows contain lane-cells with i >= j; the strict upper
        // triangle has no bit for those, so the test is guarded.
        if (obits != nullptr && j > i && override_bit(obits, i, j))
          v_h = v_zero;
        if (c < count - 1) v_h = Ops::and_(v_h, Ops::load(colmask + c * L));
        v_peak =
            Ops::max(v_peak, mask_peak ? Ops::and_(v_h, v_peak_mask) : v_h);
        Ops::store(hp, v_h);
        const Vec v_gap_start = Ops::subs(v_diag, v_open);
        v_mx = Ops::subs(Ops::max(v_gap_start, v_mx), v_ext);
        Ops::store(myp, Ops::subs(Ops::max(v_gap_start, v_my), v_ext));
        v_diag = v_up;
      }
      if (striped) {
        old_carry_above =
            Ops::load(carry_h.data() + static_cast<std::size_t>(y) * L);
        Ops::store(carry_h.data() + static_cast<std::size_t>(y) * L,
                   Ops::load(h.data() + static_cast<std::size_t>(c1 - 1) * L));
        Ops::store(carry_mx.data() + static_cast<std::size_t>(y) * L, v_mx);
      }
      // Extract lane k's bottom row when this is its last row.
      const int k = y - r0;
      if (k >= 0 && k < count) {
        auto row_out = out[static_cast<std::size_t>(k)];
        for (int c = std::max(c0, k); c < c1; ++c)
          row_out[static_cast<std::size_t>(c - k)] = static_cast<Score>(
              h[static_cast<std::size_t>(c) * L + static_cast<std::size_t>(k)]);
        if constexpr (check::kContractsEnabled) {
          for (int c = std::max(c0, k); c < c1; ++c)
            REPRO_DCHECK_MSG(row_out[static_cast<std::size_t>(c - k)] >= 0,
                             "negative bottom-row H (split r=" << r0 + k
                                 << ", column " << c - k << ")");
        }
      }
      // Emit this stripe's slice of a checkpoint row: h/max_y now hold
      // exactly the state a resume at row y+1 restores.
      if (sink != nullptr && emit_idx < sink->count &&
          y == sink->rows[static_cast<std::size_t>(emit_idx)].row) {
        CheckpointRow& cr = sink->rows[static_cast<std::size_t>(emit_idx)];
        const std::size_t off = static_cast<std::size_t>(c0) * L * sizeof(Elem);
        const std::size_t len =
            static_cast<std::size_t>(c1 - c0) * L * sizeof(Elem);
        std::memcpy(cr.h.data() + off,
                    h.data() + static_cast<std::size_t>(c0) * L, len);
        std::memcpy(cr.max_y.data() + off,
                    max_y.data() + static_cast<std::size_t>(c0) * L, len);
        if constexpr (check::kContractsEnabled && !kUnsigned) {
          // The emitted slice must satisfy the same non-negativity the
          // resume path asserts before re-entering the sweep. (Unsigned
          // elements satisfy it by type.)
          for (int c = c0; c < c1; ++c)
            for (int k2 = 0; k2 < L; ++k2)
              REPRO_DCHECK_MSG(
                  h[static_cast<std::size_t>(c) * L +
                    static_cast<std::size_t>(k2)] >= 0,
                  "negative H in emitted checkpoint row " << y);
        }
        ++emit_idx;
      }
    }
  }

  if constexpr (Ops::kSaturating) {
    // Certification limit: the largest peak from which one more adds input
    // provably could not have saturated. Every adds operand is an H value
    // <= peak, so peak <= limit proves no clamp occurred anywhere in the
    // sweep; peak > limit is treated as saturated (conservatively — the
    // adaptive driver just re-runs the group at wider precision).
    //   i16: limit 32766 (a peak of 32767 is indistinguishable from a clamp)
    //   u8:  limit 255 - bias - max_score (one biased profile add of slack)
    Elem sat_limit;
    if constexpr (kUnsigned) {
      sat_limit = static_cast<Elem>(std::numeric_limits<Elem>::max() -
                                    profile->bias() - profile->max_score());
    } else {
      sat_limit = static_cast<Elem>(std::numeric_limits<Elem>::max() - 1);
    }
    alignas(64) Elem peakbuf[L];
    Ops::store(peakbuf, v_peak);
    for (int k = 0; k < count; ++k) {
      if (peakbuf[k] <= sat_limit) continue;
      if (saturated != nullptr) {
        *saturated = true;
        // The staged checkpoint rows were computed from possibly-clamped
        // state; only certified rows may reach the cache.
        if (sink != nullptr) sink->count = 0;
        return;
      }
      REPRO_CHECK_MSG(false,
                      (kUnsigned ? "u8" : "i16")
                          << " SIMD lane saturated (split r=" << r0 + k
                          << "); use an adaptive or wider engine for this "
                             "input");
    }
  }
  if (saturated != nullptr) *saturated = false;
}

}  // namespace repro::align::detail
