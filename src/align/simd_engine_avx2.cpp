// AVX2 16-lane engine, compiled with -mavx2 in its own translation unit.
// Dispatch happens in make_engine() behind a runtime CPU check.
#include <immintrin.h>

#include "align/engine.hpp"
#include "align/engine_detail.hpp"
#include "align/simd_kernel.hpp"

namespace repro::align::detail {
namespace {

struct Avx2Ops16 {
  static constexpr int kLanes = 16;
  using Elem = std::int16_t;
  static constexpr bool kSaturating = true;
  using Vec = __m256i;
  static Vec zero() { return _mm256_setzero_si256(); }
  static Vec set1(std::int16_t x) { return _mm256_set1_epi16(x); }
  static Vec load(const std::int16_t* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::int16_t* p, Vec a) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static Vec max(Vec a, Vec b) { return _mm256_max_epi16(a, b); }
  static Vec adds(Vec a, Vec b) { return _mm256_adds_epi16(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm256_subs_epi16(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm256_and_si256(a, b); }
};

class Avx2Engine final : public Engine {
 public:
  explicit Avx2Engine(int stripe_cols)
      : stripe_(stripe_cols == 0 ? 32768 / 3 / (4 * 16) : stripe_cols) {}

  [[nodiscard]] std::string name() const override { return "simd16-avx2"; }
  [[nodiscard]] int lanes() const override { return 16; }
  [[nodiscard]] bool supports_checkpoints() const override { return true; }

 protected:
  void do_align(const GroupJob& job,
                std::span<const std::span<Score>> out) override {
    validate_job(job, out, lanes());
    run_simd_group<Avx2Ops16>(job, out, stripe_, scratch_);
  }

 private:
  int stripe_;
  SimdScratch scratch_;
};

struct Avx2Ops8x32 {
  static constexpr int kLanes = 8;
  using Elem = Score;
  static constexpr bool kSaturating = false;
  using Vec = __m256i;
  static Vec zero() { return _mm256_setzero_si256(); }
  static Vec set1(Score x) { return _mm256_set1_epi32(x); }
  static Vec load(const Score* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(Score* p, Vec a) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static Vec max(Vec a, Vec b) { return _mm256_max_epi32(a, b); }
  static Vec adds(Vec a, Vec b) { return _mm256_add_epi32(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm256_sub_epi32(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm256_and_si256(a, b); }
};

/// 8 x i32 lanes: half the width of the i16 engine but no saturation limit.
class Avx2Engine32 final : public Engine {
 public:
  explicit Avx2Engine32(int stripe_cols)
      : stripe_(stripe_cols == 0 ? 32768 / 3 / (8 * 8) : stripe_cols) {}

  [[nodiscard]] std::string name() const override { return "simd8x32-avx2"; }
  [[nodiscard]] int lanes() const override { return 8; }
  [[nodiscard]] bool supports_checkpoints() const override { return true; }

 protected:
  void do_align(const GroupJob& job,
                std::span<const std::span<Score>> out) override {
    validate_job(job, out, lanes());
    run_simd_group<Avx2Ops8x32>(job, out, stripe_, scratch_);
  }

 private:
  int stripe_;
  SimdScratchT<Score> scratch_;
};

}  // namespace

std::unique_ptr<Engine> make_simd_avx2_engine(int stripe_cols) {
  return std::make_unique<Avx2Engine>(stripe_cols);
}

std::unique_ptr<Engine> make_simd_avx2_32_engine(int stripe_cols) {
  return std::make_unique<Avx2Engine32>(stripe_cols);
}

}  // namespace repro::align::detail
