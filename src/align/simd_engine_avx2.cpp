// AVX2 engines, compiled with -mavx2 in their own translation unit.
// Dispatch happens in make_engine() behind a runtime CPU check. Four
// engines live here: 16 x i16, 8 x i32, 32 x u8 (biased saturating), and
// the adaptive driver pairing the 32 x u8 kernel with a double-pumped
// 32-lane i16 escalation path (two YMM registers per vector).
#include <immintrin.h>

#include "align/engine.hpp"
#include "align/engine_detail.hpp"
#include "align/simd_engine_impl.hpp"
#include "align/simd_kernel.hpp"

namespace repro::align::detail {
namespace {

struct Avx2Ops16 {
  static constexpr int kLanes = 16;
  using Elem = std::int16_t;
  static constexpr bool kSaturating = true;
  using Vec = __m256i;
  static Vec zero() { return _mm256_setzero_si256(); }
  static Vec set1(std::int16_t x) { return _mm256_set1_epi16(x); }
  static Vec load(const std::int16_t* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::int16_t* p, Vec a) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static Vec max(Vec a, Vec b) { return _mm256_max_epi16(a, b); }
  static Vec adds(Vec a, Vec b) { return _mm256_adds_epi16(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm256_subs_epi16(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm256_and_si256(a, b); }
};

struct Avx2Ops8x32 {
  static constexpr int kLanes = 8;
  using Elem = Score;
  static constexpr bool kSaturating = false;
  using Vec = __m256i;
  static Vec zero() { return _mm256_setzero_si256(); }
  static Vec set1(Score x) { return _mm256_set1_epi32(x); }
  static Vec load(const Score* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(Score* p, Vec a) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static Vec max(Vec a, Vec b) { return _mm256_max_epi32(a, b); }
  static Vec adds(Vec a, Vec b) { return _mm256_add_epi32(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm256_sub_epi32(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm256_and_si256(a, b); }
};

/// Thirty-two unsigned u8 lanes in one YMM register (biased saturating
/// arithmetic; see simd_kernel.hpp for the bias/losslessness discussion).
struct Avx2Ops32x8 {
  static constexpr int kLanes = 32;
  using Elem = std::uint8_t;
  static constexpr bool kSaturating = true;
  using Vec = __m256i;
  static Vec zero() { return _mm256_setzero_si256(); }
  static Vec set1(std::uint8_t x) {
    return _mm256_set1_epi8(static_cast<char>(x));
  }
  static Vec load(const std::uint8_t* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint8_t* p, Vec a) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static Vec max(Vec a, Vec b) { return _mm256_max_epu8(a, b); }
  static Vec adds(Vec a, Vec b) { return _mm256_adds_epu8(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm256_subs_epu8(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm256_and_si256(a, b); }
};

}  // namespace

std::unique_ptr<Engine> make_simd_avx2_engine(int stripe_cols) {
  return std::make_unique<SimdEngineT<Avx2Ops16>>("simd16-avx2", stripe_cols);
}

std::unique_ptr<Engine> make_simd_avx2_32_engine(int stripe_cols) {
  return std::make_unique<SimdEngineT<Avx2Ops8x32>>("simd8x32-avx2",
                                                    stripe_cols);
}

std::unique_ptr<Engine> make_simd_avx2_u8_engine(int stripe_cols) {
  return std::make_unique<SimdEngineT<Avx2Ops32x8>>("simd32x8-avx2",
                                                    stripe_cols);
}

std::unique_ptr<Engine> make_adaptive_avx2_engine(int stripe_cols) {
  return std::make_unique<
      AdaptiveEngineT<Avx2Ops32x8, DoublePumpOps<Avx2Ops16>>>("auto-avx2",
                                                              stripe_cols);
}

}  // namespace repro::align::detail
