// Internal helpers shared by engine implementations. Not part of the API.
#pragma once

#include <memory>
#include <span>

#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "util/check.hpp"

namespace repro::align::detail {

/// Validates a GroupJob against the engine's lane count and output spans.
inline void validate_job(const GroupJob& job,
                         std::span<const std::span<Score>> out, int lanes) {
  const int m = static_cast<int>(job.seq.size());
  REPRO_CHECK_MSG(m >= 2, "sequence too short to split");
  REPRO_CHECK(job.scoring != nullptr);
  REPRO_CHECK_MSG(job.count >= 1 && job.count <= lanes,
                  "group count " << job.count << " not in [1, " << lanes << "]");
  REPRO_CHECK_MSG(job.r0 >= 1 && job.r0 + job.count - 1 <= m - 1,
                  "splits [" << job.r0 << ", " << job.r0 + job.count - 1
                             << "] out of range for m=" << m);
  REPRO_CHECK(out.size() == static_cast<std::size_t>(job.count));
  for (int k = 0; k < job.count; ++k)
    REPRO_CHECK_MSG(out[static_cast<std::size_t>(k)].size() ==
                        static_cast<std::size_t>(m - (job.r0 + k)),
                    "output row " << k << " has wrong size");
  if (job.overrides != nullptr)
    REPRO_CHECK(job.overrides->sequence_length() == m);
}

/// Tests the override bit for pair (i, j) given row i's word array.
inline bool override_bit(const std::atomic<std::uint64_t>* row, int i, int j) {
  const std::int64_t b = j - i - 1;
  return ((row[b >> 6].load(std::memory_order_relaxed) >> (b & 63)) & 1) != 0;
}

// Per-kind factories (defined in their respective translation units).
std::unique_ptr<Engine> make_scalar_engine();
std::unique_ptr<Engine> make_scalar_striped_engine(int stripe_cols);
std::unique_ptr<Engine> make_general_gap_engine();
std::unique_ptr<Engine> make_simd_engine(int lanes, int stripe_cols);
std::unique_ptr<Engine> make_simd_generic_engine(int lanes, int stripe_cols);
std::unique_ptr<Engine> make_simd32_generic_engine(int lanes, int stripe_cols);
std::unique_ptr<Engine> make_simd_u8_generic_engine(int stripe_cols);
std::unique_ptr<Engine> make_adaptive_generic_engine(int stripe_cols);
#if REPRO_HAVE_SSE2
std::unique_ptr<Engine> make_simd_sse41_engine(int stripe_cols);
std::unique_ptr<Engine> make_simd_u8_engine(int stripe_cols);
std::unique_ptr<Engine> make_adaptive_sse2_engine(int stripe_cols);
#endif
#if REPRO_ENABLE_AVX2
std::unique_ptr<Engine> make_simd_avx2_engine(int stripe_cols);
std::unique_ptr<Engine> make_simd_avx2_32_engine(int stripe_cols);
std::unique_ptr<Engine> make_simd_avx2_u8_engine(int stripe_cols);
std::unique_ptr<Engine> make_adaptive_avx2_engine(int stripe_cols);
#endif

}  // namespace repro::align::detail
