// Linear-memory traceback.
//
// The paper (§2.1): "Several memory-efficient algorithms exist that do
// perform a traceback using only a linear amount of memory (at the expense
// of extra computations), but these are not covered here." This module
// covers them: the full-matrix traceback allocates rows x cols Scores —
// 1.2 GB for the largest titin rectangle — while this implementation needs
// O(rows + cols):
//
//   1. a forward score-only pass finds the best valid end cell exactly as
//      traceback_best does (shadow rejection included);
//   2. a reverse score-only pass from that end cell finds the local
//      alignment's start cell;
//   3. a Myers–Miller divide-and-conquer *global* alignment of the spanned
//      subrectangle reconstructs the pairs; overridden pairs are forbidden
//      with -inf exchange scores, which preserves path feasibility exactly.
//
// The reduction is sound: the optimal local alignment ending at the chosen
// cell is a global alignment of its own span, and no global path of that
// span can score higher (it would contradict the local DP value), nor can a
// co-optimal global path start or end with a gap (trimming it would beat
// the local optimum).
//
// Determinism caveat: scores, end cells, validity and override avoidance
// match traceback_best exactly; among *co-optimal paths* the
// divide-and-conquer walk may pick a different (equally valid) one, so a
// finder using this traceback is internally deterministic but not
// byte-identical to the full-matrix finder beyond the first acceptance.
#pragma once

#include "align/traceback.hpp"

namespace repro::align {

Traceback traceback_best_linear(const GroupJob& job,
                                std::span<const std::int16_t> original);
Traceback traceback_best_linear(const GroupJob& job,
                                std::span<const Score> original);
Traceback traceback_best_linear(const GroupJob& job);

}  // namespace repro::align
