// Full-matrix traceback for accepted top alignments.
//
// Score-only kernels keep one row; when a rectangle is *accepted* as a top
// alignment the finder recomputes its full matrix under the current override
// triangle and walks the best valid bottom-row cell back to reconstruct the
// aligned pairs (which then feed the override triangle). The paper notes
// this step runs sequentially and is comparatively slow; it happens once per
// top alignment.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "align/types.hpp"

namespace repro::align {

/// Best end cell of a bottom row under shadow rejection (Appendix A): a cell
/// is valid iff its realigned value equals the stored first-alignment value;
/// an empty `original` marks every cell valid. Ties break to the smallest x.
struct BestEnd {
  Score score = 0;
  int end_x = 0;  ///< 1-based bottom-row column; 0 when no valid cell exists
};

BestEnd find_best_end(std::span<const Score> row,
                      std::span<const std::int16_t> original);

/// Overload for freshly recomputed (32-bit) original rows — the Appendix-A
/// low-memory mode recomputes originals on demand instead of archiving them.
BestEnd find_best_end(std::span<const Score> row,
                      std::span<const Score> original);

/// No validity filter (every cell is a legal end).
BestEnd find_best_end(std::span<const Score> row);

/// A reconstructed local alignment of rectangle r.
struct Traceback {
  int r = 0;
  Score score = 0;
  int end_x = 0;  ///< 1-based bottom-row column the walk started from
  /// Aligned residue pairs as global positions (i, j), ascending in both
  /// components. Every cell on the path aligns exactly one pair (gaps skip
  /// positions between consecutive pairs).
  std::vector<std::pair<int, int>> pairs;
};

/// Recomputes rectangle job.r0's full matrix under job.overrides, selects
/// the best valid end cell (see find_best_end) and walks it back.
/// Deterministic move preference at equal score: diagonal, then the shortest
/// horizontal gap, then the shortest vertical gap.
/// Requires job.count == 1 and a positive best valid score.
Traceback traceback_best(const GroupJob& job,
                         std::span<const std::int16_t> original);

/// Overload for recomputed 32-bit original rows (low-memory mode).
Traceback traceback_best(const GroupJob& job, std::span<const Score> original);

/// No validity filter.
Traceback traceback_best(const GroupJob& job);

}  // namespace repro::align
