// SIMD engines (SSE2 8-lane and 4-lane, plus portable generic lanes) and the
// engine factory / dispatch.
//
// The 4-lane engine models the paper's Pentium III SSE configuration (4 x
// i16), the 8-lane engine its Pentium 4 SSE2 configuration (8 x i16); the
// AVX2 16-lane engine (separate TU) is the natural successor. Generic-lane
// engines run the identical kernel without intrinsics, both as a portable
// fallback and as a cross-check in tests.
#include "align/engine.hpp"

#include <limits>
#include <utility>

#include "align/engine_detail.hpp"
#include "align/simd_engine_impl.hpp"
#include "align/simd_kernel.hpp"
#include "obs/metrics.hpp"

#if REPRO_HAVE_SSE2
#include <emmintrin.h>
#endif

namespace repro::align {
namespace detail {
namespace {

#if REPRO_HAVE_SSE2

struct SseOps8 {
  static constexpr int kLanes = 8;
  using Elem = std::int16_t;
  static constexpr bool kSaturating = true;
  using Vec = __m128i;
  static Vec zero() { return _mm_setzero_si128(); }
  static Vec set1(std::int16_t x) { return _mm_set1_epi16(x); }
  static Vec load(const std::int16_t* p) {
    return _mm_load_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(std::int16_t* p, Vec a) {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), a);
  }
  static Vec max(Vec a, Vec b) { return _mm_max_epi16(a, b); }
  static Vec adds(Vec a, Vec b) { return _mm_adds_epi16(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm_subs_epi16(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm_and_si128(a, b); }
};

/// Four i16 lanes in the low half of an XMM register — the paper's SSE
/// (Pentium III) width. Loads zero the upper half; stores write 8 bytes.
struct SseOps4 {
  static constexpr int kLanes = 4;
  using Elem = std::int16_t;
  static constexpr bool kSaturating = true;
  using Vec = __m128i;
  static Vec zero() { return _mm_setzero_si128(); }
  static Vec set1(std::int16_t x) { return _mm_set1_epi16(x); }
  static Vec load(const std::int16_t* p) {
    return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  }
  static void store(std::int16_t* p, Vec a) {
    _mm_storel_epi64(reinterpret_cast<__m128i*>(p), a);
  }
  static Vec max(Vec a, Vec b) { return _mm_max_epi16(a, b); }
  static Vec adds(Vec a, Vec b) { return _mm_adds_epi16(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm_subs_epi16(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm_and_si128(a, b); }
};

/// Sixteen unsigned u8 lanes in one XMM register (biased saturating
/// arithmetic; see simd_kernel.hpp for the bias/losslessness discussion).
struct SseOps16x8 {
  static constexpr int kLanes = 16;
  using Elem = std::uint8_t;
  static constexpr bool kSaturating = true;
  using Vec = __m128i;
  static Vec zero() { return _mm_setzero_si128(); }
  static Vec set1(std::uint8_t x) {
    return _mm_set1_epi8(static_cast<char>(x));
  }
  static Vec load(const std::uint8_t* p) {
    return _mm_load_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(std::uint8_t* p, Vec a) {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), a);
  }
  static Vec max(Vec a, Vec b) { return _mm_max_epu8(a, b); }
  static Vec adds(Vec a, Vec b) { return _mm_adds_epu8(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm_subs_epu8(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm_and_si128(a, b); }
};

#endif  // REPRO_HAVE_SSE2

}  // namespace

std::unique_ptr<Engine> make_simd_engine(int lanes, int stripe_cols) {
#if REPRO_HAVE_SSE2
  if (lanes == 4)
    return std::make_unique<SimdEngineT<SseOps4>>("simd4-sse2", stripe_cols);
  if (lanes == 8)
    return std::make_unique<SimdEngineT<SseOps8>>("simd8-sse2", stripe_cols);
  REPRO_CHECK_MSG(false, "unsupported SSE2 lane count " << lanes);
#else
  (void)stripe_cols;
  REPRO_CHECK_MSG(false, "SSE2 not available in this build (lanes=" << lanes
                                                                    << ")");
#endif
  return nullptr;  // unreachable
}

std::unique_ptr<Engine> make_simd_generic_engine(int lanes, int stripe_cols) {
  if (lanes == 4)
    return std::make_unique<SimdEngineT<GenericOps<4>>>("simd4-generic",
                                                        stripe_cols);
  if (lanes == 8)
    return std::make_unique<SimdEngineT<GenericOps<8>>>("simd8-generic",
                                                        stripe_cols);
  REPRO_CHECK_MSG(false, "unsupported generic lane count " << lanes);
  return nullptr;  // unreachable
}

std::unique_ptr<Engine> make_simd32_generic_engine(int lanes, int stripe_cols) {
  if (lanes == 4)
    return std::make_unique<SimdEngineT<GenericOps32<4>>>("simd4x32-generic",
                                                          stripe_cols);
  REPRO_CHECK_MSG(false, "unsupported generic i32 lane count " << lanes);
  return nullptr;  // unreachable
}

std::unique_ptr<Engine> make_simd_u8_generic_engine(int stripe_cols) {
  return std::make_unique<SimdEngineT<GenericOps8<8>>>("simd8x8-generic",
                                                       stripe_cols);
}

std::unique_ptr<Engine> make_adaptive_generic_engine(int stripe_cols) {
  return std::make_unique<AdaptiveEngineT<GenericOps8<8>, GenericOps<8>>>(
      "auto-generic", stripe_cols);
}

#if REPRO_HAVE_SSE2
std::unique_ptr<Engine> make_simd_u8_engine(int stripe_cols) {
  return std::make_unique<SimdEngineT<SseOps16x8>>("simd16x8-sse2",
                                                   stripe_cols);
}

std::unique_ptr<Engine> make_adaptive_sse2_engine(int stripe_cols) {
  return std::make_unique<AdaptiveEngineT<SseOps16x8, DoublePumpOps<SseOps8>>>(
      "auto-sse2", stripe_cols);
}
#endif  // REPRO_HAVE_SSE2

}  // namespace detail

void Engine::align(const GroupJob& job, std::span<const std::span<Score>> out) {
  do_align(job, out);
  const auto m = static_cast<std::uint64_t>(job.seq.size());
  const std::uint64_t width = m - static_cast<std::uint64_t>(job.r0);
  // Rows restored from a checkpoint are never computed; count them apart so
  // cells/sec stays an honest throughput number.
  const std::uint64_t resumed_rows =
      (job.resume != nullptr && supports_checkpoints())
          ? static_cast<std::uint64_t>(job.resume->row)
          : 0;
  const std::uint64_t group_cells =
      (static_cast<std::uint64_t>(job.r0 + job.count - 1) - resumed_rows) *
      width * static_cast<std::uint64_t>(lanes());
  const std::uint64_t skipped_cells =
      resumed_rows * width * static_cast<std::uint64_t>(lanes());
  cells_ += group_cells;
  cells_skipped_ += skipped_cells;
  aligns_ += 1;
  if constexpr (obs::kEnabled) {
    // Slots fetched once per process; per group alignment this is two
    // relaxed adds, and with REPRO_OBS=OFF the whole block vanishes.
    static obs::Counter& lane_cells =
        obs::Registry::global().counter("align.lane_cells");
    static obs::Counter& group_alignments =
        obs::Registry::global().counter("align.group_alignments");
    lane_cells.add(group_cells);
    group_alignments.add(1);
    if (skipped_cells > 0) {
      static obs::Counter& lane_cells_skipped =
          obs::Registry::global().counter("align.lane_cells_skipped");
      lane_cells_skipped.add(skipped_cells);
    }
  }
}

std::vector<Score> Engine::align_one(const GroupJob& job) {
  REPRO_CHECK(job.count == 1);
  const int m = static_cast<int>(job.seq.size());
  std::vector<Score> row(static_cast<std::size_t>(m - job.r0));
  std::span<Score> row_span(row);
  align(job, std::span<const std::span<Score>>(&row_span, 1));
  return row;
}

bool avx2_available() {
#if REPRO_ENABLE_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool sse41_available() {
#if REPRO_HAVE_SSE2
  return __builtin_cpu_supports("sse4.1") != 0;
#else
  return false;
#endif
}

std::unique_ptr<Engine> make_engine(EngineKind kind, int stripe_cols) {
  switch (kind) {
    case EngineKind::kScalar:
      return detail::make_scalar_engine();
    case EngineKind::kScalarStriped:
      return detail::make_scalar_striped_engine(stripe_cols);
    case EngineKind::kGeneralGap:
      return detail::make_general_gap_engine();
    case EngineKind::kSimd4:
      return detail::make_simd_engine(4, stripe_cols);
    case EngineKind::kSimd8:
      return detail::make_simd_engine(8, stripe_cols);
    case EngineKind::kSimd16:
#if REPRO_ENABLE_AVX2
      REPRO_CHECK_MSG(avx2_available(), "AVX2 not supported by this CPU");
      return detail::make_simd_avx2_engine(stripe_cols);
#else
      REPRO_CHECK_MSG(false, "AVX2 engine not built (REPRO_ENABLE_AVX2=OFF)");
      return nullptr;
#endif
    case EngineKind::kSimd4Generic:
      return detail::make_simd_generic_engine(4, stripe_cols);
    case EngineKind::kSimd8Generic:
      return detail::make_simd_generic_engine(8, stripe_cols);
    case EngineKind::kSimd4x32:
#if REPRO_HAVE_SSE2
      REPRO_CHECK_MSG(sse41_available(), "SSE4.1 not supported by this CPU");
      return detail::make_simd_sse41_engine(stripe_cols);
#else
      REPRO_CHECK_MSG(false, "SSE4.1 engine not built");
      return nullptr;
#endif
    case EngineKind::kSimd8x32:
#if REPRO_ENABLE_AVX2
      REPRO_CHECK_MSG(avx2_available(), "AVX2 not supported by this CPU");
      return detail::make_simd_avx2_32_engine(stripe_cols);
#else
      REPRO_CHECK_MSG(false, "AVX2 engine not built");
      return nullptr;
#endif
    case EngineKind::kSimd4x32Generic:
      return detail::make_simd32_generic_engine(4, stripe_cols);
    case EngineKind::kSimd16x8:
#if REPRO_HAVE_SSE2
      return detail::make_simd_u8_engine(stripe_cols);
#else
      REPRO_CHECK_MSG(false, "SSE2 not available in this build");
      return nullptr;
#endif
    case EngineKind::kSimd32x8:
#if REPRO_ENABLE_AVX2
      REPRO_CHECK_MSG(avx2_available(), "AVX2 not supported by this CPU");
      return detail::make_simd_avx2_u8_engine(stripe_cols);
#else
      REPRO_CHECK_MSG(false, "AVX2 engine not built");
      return nullptr;
#endif
    case EngineKind::kSimd8x8Generic:
      return detail::make_simd_u8_generic_engine(stripe_cols);
    case EngineKind::kSimdAuto:
#if REPRO_ENABLE_AVX2
      if (avx2_available()) return detail::make_adaptive_avx2_engine(stripe_cols);
#endif
#if REPRO_HAVE_SSE2
      return detail::make_adaptive_sse2_engine(stripe_cols);
#else
      return detail::make_adaptive_generic_engine(stripe_cols);
#endif
    case EngineKind::kSimdAutoGeneric:
      return detail::make_adaptive_generic_engine(stripe_cols);
  }
  REPRO_CHECK_MSG(false, "unknown engine kind");
  return nullptr;  // unreachable
}

bool engine_uses_i16(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSimd4:
    case EngineKind::kSimd8:
    case EngineKind::kSimd16:
    case EngineKind::kSimd4Generic:
    case EngineKind::kSimd8Generic:
      return true;
    default:
      return false;
  }
}

Precision engine_precision(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSimd4:
    case EngineKind::kSimd8:
    case EngineKind::kSimd16:
    case EngineKind::kSimd4Generic:
    case EngineKind::kSimd8Generic:
      return Precision::kI16;
    case EngineKind::kSimd16x8:
    case EngineKind::kSimd32x8:
    case EngineKind::kSimd8x8Generic:
      return Precision::kI8;
    case EngineKind::kSimdAuto:
    case EngineKind::kSimdAutoGeneric:
      return Precision::kAdaptive;
    default:
      return Precision::kI32;
  }
}

bool precision_fits(Precision precision, int m, const seq::Scoring& scoring) {
  if (precision == Precision::kI32 || precision == Precision::kAdaptive)
    return true;
  // Largest rectangle: min(r, m-r) residue pairs, maximized at r = m/2;
  // gaps only subtract, so this bounds every reachable score.
  const std::int64_t bound =
      static_cast<std::int64_t>(m / 2) * scoring.matrix.max_score();
  if (precision == Precision::kI16) {
    // 32766, not 32767: a peak of exactly INT16_MAX is indistinguishable
    // from a clamped add, so the kernels report it as saturated.
    return bound <= std::numeric_limits<std::int16_t>::max() - 1;
  }
  // kI8: the biased profile entries and the (cast) gap penalties must fit a
  // byte, and the score bound must leave one biased add of headroom below
  // the u8 ceiling (the kernel's certification limit).
  const int bias = std::max(0, -scoring.matrix.min_score());
  const int max_entry = scoring.matrix.max_score();
  if (bias + max_entry > 255 || scoring.gap.open > 255 ||
      scoring.gap.extend > 255)
    return false;
  return bound <= 255 - bias - max_entry;
}

void check_headroom(EngineKind kind, int m, const seq::Scoring& scoring) {
  const Precision p = engine_precision(kind);
  if (p == Precision::kI32 || p == Precision::kAdaptive) return;
  if (precision_fits(p, m, scoring)) return;
  const std::int64_t bound =
      static_cast<std::int64_t>(m / 2) * scoring.matrix.max_score();
  REPRO_CHECK_MSG(
      false, "sequence of length "
                 << m << " can reach score " << bound
                 << ", beyond the selected "
                 << (p == Precision::kI8 ? "u8" : "i16")
                 << " engine's saturation headroom — use the adaptive "
                    "engine (auto) or a wider one (simd4x32, simd8x32, or "
                    "scalar)");
}

EngineFactory engine_factory(EngineKind kind, int stripe_cols) {
  return [kind, stripe_cols] { return make_engine(kind, stripe_cols); };
}

std::unique_ptr<Engine> make_best_engine() {
  // The adaptive engine picks the widest ISA itself and runs u8 lanes with
  // lossless i16 escalation, so it dominates every fixed-precision choice.
  return make_engine(EngineKind::kSimdAuto);
}

}  // namespace repro::align
