// Cache-aware scalar kernel (§4.1 of the paper): the matrix is computed in
// vertical stripes whose row-state (previous row + MaxY) fits in L1, at the
// cost of carrying per-row (H, MaxX) values across stripe boundaries.
//
// Checkpoints use the same layout as the plain scalar engine (lanes = 1,
// elem = Score, full-width row state): the row state is striping-invariant,
// each stripe simply restores/emits its own slice. Stripe carries are never
// checkpointed — during a resumed sweep every carry of a computed row is
// written by an earlier stripe before a later stripe reads it; only each
// stripe's entry diagonal comes from the checkpoint.
#include <algorithm>
#include <cstring>
#include <vector>

#include "align/engine_detail.hpp"
#include "align/override_triangle.hpp"

namespace repro::align {
namespace {

// Default stripe width: a third of a typical 32 KiB L1D for row state
// (H + MaxY, 8 bytes per column), mirroring the paper's "a third for the row
// section, a third for MaxY, a third for miscellaneous".
constexpr int kDefaultStripeCols = 1344;

class ScalarStripedEngine final : public Engine {
 public:
  explicit ScalarStripedEngine(int stripe_cols)
      : stripe_cols_(stripe_cols == 0 ? kDefaultStripeCols : stripe_cols) {
    REPRO_CHECK_MSG(stripe_cols_ > 0 || stripe_cols_ == -1,
                    "invalid stripe width " << stripe_cols_);
  }

  [[nodiscard]] std::string name() const override { return "scalar-striped"; }
  [[nodiscard]] int lanes() const override { return 1; }
  [[nodiscard]] bool supports_checkpoints() const override { return true; }

 protected:
  void do_align(const GroupJob& job,
                std::span<const std::span<Score>> out) override {
    detail::validate_job(job, out, lanes());
    const auto& seq = job.seq;
    const int m = static_cast<int>(seq.size());
    const int r = job.r0;
    const int rows = r;
    const int cols = m - r;
    const seq::ScoreMatrix& ex = job.scoring->matrix;
    const Score open = job.scoring->gap.open;
    const Score ext = job.scoring->gap.extend;
    const int stripe = stripe_cols_ == -1 ? cols : stripe_cols_;
    const std::size_t state_bytes =
        static_cast<std::size_t>(cols) * sizeof(Score);

    int y_begin = 1;
    const Score* ck_h = nullptr;
    const Score* ck_my = nullptr;
    if (job.resume != nullptr) {
      const CheckpointView& ck = *job.resume;
      REPRO_CHECK_MSG(ck.lanes == 1 &&
                          ck.elem_size == static_cast<int>(sizeof(Score)) &&
                          ck.bytes == state_bytes && ck.row >= 1 && ck.row < r,
                      "checkpoint state does not match the striped scalar "
                      "kernel (r=" << r << ")");
      ck_h = reinterpret_cast<const Score*>(ck.h);
      ck_my = reinterpret_cast<const Score*>(ck.max_y);
      y_begin = ck.row + 1;
    }
    const bool resumed = y_begin > 1;

    CheckpointSink* sink = job.sink;
    if (sink != nullptr) {
      REPRO_CHECK(sink->stride >= 1);
      sink->lanes = 1;
      sink->elem_size = static_cast<int>(sizeof(Score));
      sink->prepare(y_begin, std::min(sink->top_row, r - 1), state_bytes);
    }

    // Carries across stripe boundaries, indexed by row: H at the stripe's
    // last column and the running MaxX leaving the stripe. Grow-only: every
    // carry of a computed row is written by an earlier stripe before a later
    // stripe reads it (the stripe-0 carry_h read feeds a diagonal only used
    // by later stripes).
    if (carry_h_.size() < static_cast<std::size_t>(rows) + 1) {
      carry_h_.resize(static_cast<std::size_t>(rows) + 1);
      carry_mx_.resize(static_cast<std::size_t>(rows) + 1);
    }

    h_.resize(static_cast<std::size_t>(stripe) + 1);
    max_y_.resize(static_cast<std::size_t>(stripe) + 1);

    for (int x0 = 1; x0 <= cols; x0 += stripe) {
      const int x1 = std::min(cols, x0 + stripe - 1);
      Score old_carry_above;
      if (resumed) {
        // Stripe-local state of row y_begin-1, straight from the checkpoint
        // (buffer index x-1 holds column x).
        std::memcpy(h_.data() + 1, ck_h + (x0 - 1),
                    static_cast<std::size_t>(x1 - x0 + 1) * sizeof(Score));
        std::memcpy(max_y_.data() + 1, ck_my + (x0 - 1),
                    static_cast<std::size_t>(x1 - x0 + 1) * sizeof(Score));
        old_carry_above = x0 == 1 ? 0 : ck_h[x0 - 2];
      } else {
        std::fill(h_.begin(), h_.end(), 0);
        std::fill(max_y_.begin(), max_y_.end(), kNegInf);
        // carry of the boundary row y=0 is all-zero H, -inf MaxX.
        old_carry_above = 0;
      }
      int emit_idx = 0;
      for (int y = y_begin; y <= rows; ++y) {
        const int i = y - 1;
        const std::int16_t* erow = ex.row(seq[static_cast<std::size_t>(i)]);
        const std::atomic<std::uint64_t>* obits =
            (job.overrides != nullptr && !job.overrides->row_empty(i))
                ? job.overrides->row_bits(i)
                : nullptr;
        // Entering this stripe: diag = M[y-1][x0-1], MaxX as it left the
        // previous stripe on *this* row.
        Score diag = x0 == 1 ? 0 : old_carry_above;
        Score max_x = x0 == 1 ? kNegInf
                              : carry_mx_[static_cast<std::size_t>(y)];
        for (int x = x0; x <= x1; ++x) {
          const int xi = x - x0 + 1;  // stripe-local column
          const int j = r + x - 1;
          const Score up = h_[static_cast<std::size_t>(xi)];
          const Score old_my = max_y_[static_cast<std::size_t>(xi)];
          const Score inner = std::max({max_x, old_my, diag});
          Score h = std::max(Score{0},
                             erow[seq[static_cast<std::size_t>(j)]] + inner);
          if (obits != nullptr && detail::override_bit(obits, i, j)) h = 0;
          h_[static_cast<std::size_t>(xi)] = h;
          const Score next_mx = std::max(diag - open, max_x) - ext;
          const Score next_my = std::max(diag - open, old_my) - ext;
          if constexpr (check::kContractsEnabled) {
            // Same kernel cell contracts as the plain scalar engine; the
            // striping (carries included) must not change any cell value.
            REPRO_DCHECK_MSG(h >= 0, "negative H at (y=" << y << ", x=" << x
                                                         << "), r=" << r);
            REPRO_DCHECK(next_mx + ext >= max_x);
            REPRO_DCHECK(next_my + ext >= old_my);
          }
          max_x = next_mx;
          max_y_[static_cast<std::size_t>(xi)] = next_my;
          diag = up;
          if (y == rows) out[0][static_cast<std::size_t>(x - 1)] = h;
        }
        old_carry_above = carry_h_[static_cast<std::size_t>(y)];
        carry_h_[static_cast<std::size_t>(y)] =
            h_[static_cast<std::size_t>(x1 - x0 + 1)];
        carry_mx_[static_cast<std::size_t>(y)] = max_x;
        if (sink != nullptr && emit_idx < sink->count &&
            y == sink->rows[static_cast<std::size_t>(emit_idx)].row) {
          CheckpointRow& cr = sink->rows[static_cast<std::size_t>(emit_idx)];
          const std::size_t off =
              static_cast<std::size_t>(x0 - 1) * sizeof(Score);
          const std::size_t len =
              static_cast<std::size_t>(x1 - x0 + 1) * sizeof(Score);
          std::memcpy(cr.h.data() + off, h_.data() + 1, len);
          std::memcpy(cr.max_y.data() + off, max_y_.data() + 1, len);
          ++emit_idx;
        }
      }
    }
  }

 private:
  int stripe_cols_;
  std::vector<Score> h_;
  std::vector<Score> max_y_;
  std::vector<Score> carry_h_;
  std::vector<Score> carry_mx_;
};

}  // namespace

namespace detail {
std::unique_ptr<Engine> make_scalar_striped_engine(int stripe_cols) {
  return std::make_unique<ScalarStripedEngine>(stripe_cols);
}
}  // namespace detail

}  // namespace repro::align
