// SSE4.1 engine: 4 x i32 lanes — the 32-bit variant of the coarse-grained
// SIMD kernel, free of the i16 saturation limit (the paper notes the
// byte-width limit of earlier SIMD aligners "is too restrictive"; i16 moves
// the ceiling to 32767 and this engine removes it entirely).
// Compiled with -msse4.1 (for _mm_max_epi32) behind a runtime CPU check.
#include <smmintrin.h>

#include "align/engine.hpp"
#include "align/engine_detail.hpp"
#include "align/simd_engine_impl.hpp"
#include "align/simd_kernel.hpp"

namespace repro::align::detail {
namespace {

struct Sse41Ops4x32 {
  static constexpr int kLanes = 4;
  using Elem = Score;
  static constexpr bool kSaturating = false;
  using Vec = __m128i;
  static Vec zero() { return _mm_setzero_si128(); }
  static Vec set1(Score x) { return _mm_set1_epi32(x); }
  static Vec load(const Score* p) {
    return _mm_load_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(Score* p, Vec a) {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), a);
  }
  static Vec max(Vec a, Vec b) { return _mm_max_epi32(a, b); }
  static Vec adds(Vec a, Vec b) { return _mm_add_epi32(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm_sub_epi32(a, b); }
  static Vec and_(Vec a, Vec b) { return _mm_and_si128(a, b); }
};

}  // namespace

std::unique_ptr<Engine> make_simd_sse41_engine(int stripe_cols) {
  return std::make_unique<SimdEngineT<Sse41Ops4x32>>("simd4x32-sse41",
                                                     stripe_cols);
}

}  // namespace repro::align::detail
