#include "align/checkpoint_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace repro::align {

PairDirtyIndex::PairDirtyIndex(std::span<const std::pair<int, int>> pairs) {
  // Accepted pair lists are ascending in both components, but the index is
  // built robustly against any list: sort by j, then a suffix minimum of i.
  std::vector<std::pair<int, int>> by_j(pairs.begin(), pairs.end());
  std::sort(by_j.begin(), by_j.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  j_.resize(by_j.size());
  suffix_min_i_.resize(by_j.size());
  int running = kNoDirtyRow;
  for (std::size_t t = by_j.size(); t-- > 0;) {
    j_[t] = by_j[t].second;
    running = std::min(running, by_j[t].first);
    suffix_min_i_[t] = running;
  }
}

int PairDirtyIndex::min_dirty_row(int r0) const {
  const auto it = std::lower_bound(j_.begin(), j_.end(), r0);
  if (it == j_.end()) return kNoDirtyRow;
  const auto t = static_cast<std::size_t>(it - j_.begin());
  return suffix_min_i_[t] + 1;  // pair (i, j) dirties DP rows >= i+1
}

std::optional<CheckpointView> CheckpointCache::find(int r0, bool plain_sweep,
                                                    int plain_valid_limit) {
  const CheckpointRow* best = nullptr;
  const Entry* best_entry = nullptr;
  const auto consider = [&](const Entry& e, int row_limit) {
    // Rows are ascending; take the deepest one within the limit.
    for (auto it = e.rows.rbegin(); it != e.rows.rend(); ++it) {
      if (it->row > row_limit) continue;
      if (best == nullptr || it->row > best->row) {
        best = &*it;
        best_entry = &e;
      }
      break;
    }
  };
  if (const auto pit = entries_.find(Key{r0, true}); pit != entries_.end())
    consider(pit->second,
             plain_sweep ? std::numeric_limits<int>::max() : plain_valid_limit);
  if (!plain_sweep) {
    if (const auto oit = entries_.find(Key{r0, false}); oit != entries_.end())
      consider(oit->second, std::numeric_limits<int>::max());
  }
  if (best == nullptr) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  CheckpointView view;
  view.row = best->row;
  view.lanes = best_entry->lanes;
  view.elem_size = best_entry->elem_size;
  view.h = best->h.data();
  view.max_y = best->max_y.data();
  view.bytes = best->h.size();
  // Checkpoint-resume consistency: a usable view names a real DP row with
  // a stamped layout and equal-size H/MaxY buffers.
  REPRO_DCHECK(view.row >= 1 && view.lanes >= 1 && view.elem_size >= 1);
  REPRO_DCHECK(best->h.size() == best->max_y.size());
  return view;
}

void CheckpointCache::store(int r0, bool plain_class, Score priority,
                            CheckpointSink& sink) {
  const Key key{r0, plain_class};
  const auto it = entries_.find(key);
  if (sink.count == 0) {
    if (it != entries_.end()) it->second.priority = priority;
    return;
  }
  Entry& e = it != entries_.end() ? it->second : entries_[key];
  if (e.rows.empty()) {
    e.lanes = sink.lanes;
    e.elem_size = sink.elem_size;
  } else {
    REPRO_CHECK_MSG(e.lanes == sink.lanes && e.elem_size == sink.elem_size,
                    "checkpoint layout changed mid-run for group r0=" << r0);
  }
  e.priority = priority;
  for (int idx = 0; idx < sink.count; ++idx) {
    CheckpointRow& src = sink.rows[static_cast<std::size_t>(idx)];
    const auto pos = std::lower_bound(
        e.rows.begin(), e.rows.end(), src.row,
        [](const CheckpointRow& cr, int row) { return cr.row < row; });
    if (pos != e.rows.end() && pos->row == src.row) {
      // Same grid row re-emitted: swap buffers so the sink gets the old
      // (equal-capacity) storage back for its next sweep.
      bytes_ -= pos->bytes();
      std::swap(pos->h, src.h);
      std::swap(pos->max_y, src.max_y);
      bytes_ += pos->bytes();
      e.bytes += pos->bytes();
      e.bytes -= src.bytes();
    } else {
      CheckpointRow fresh;
      fresh.row = src.row;
      fresh.h = std::move(src.h);
      fresh.max_y = std::move(src.max_y);
      bytes_ += fresh.bytes();
      e.bytes += fresh.bytes();
      e.rows.insert(pos, std::move(fresh));
    }
  }
  if constexpr (check::kContractsEnabled) {
    // The merge must keep the entry's rows strictly ascending — find()'s
    // deepest-usable-row scan walks them back to front relying on it.
    for (std::size_t t = 1; t < e.rows.size(); ++t)
      REPRO_DCHECK_MSG(e.rows[t - 1].row < e.rows[t].row,
                       "checkpoint rows out of order for group r0=" << r0);
  }
  evict_over_budget(key);
}

void CheckpointCache::invalidate(const PairDirtyIndex& dirty) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto& [key, e] = *it;
    if (key.second) {  // plain entries stay; find() clamps their validity
      ++it;
      continue;
    }
    const int md = dirty.min_dirty_row(key.first);
    auto& rows = e.rows;
    const auto first_dirty = std::lower_bound(
        rows.begin(), rows.end(), md,
        [](const CheckpointRow& cr, int row) { return cr.row < row; });
    for (auto rit = first_dirty; rit != rows.end(); ++rit) {
      bytes_ -= rit->bytes();
      e.bytes -= rit->bytes();
      ++stats_.invalidated_rows;
    }
    rows.erase(first_dirty, rows.end());
    if constexpr (check::kContractsEnabled) {
      // Every surviving overridden row must sit strictly below the
      // alignment's first dirty row; anything deeper could reflect override
      // bits added after the emitting sweep.
      for (const CheckpointRow& cr : rows)
        REPRO_DCHECK_MSG(cr.row < md, "invalidation left a dirty checkpoint "
                                      "row " << cr.row << " (min dirty " << md
                                             << ") for group r0="
                                             << key.first);
    }
    if (rows.empty()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void CheckpointCache::evict_over_budget(const Key& keep_last) {
  while (bytes_ > budget_ && !entries_.empty()) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (entries_.size() > 1 && it->first == keep_last) continue;
      if (victim == entries_.end() ||
          it->second.priority < victim->second.priority)
        victim = it;
    }
    REPRO_CHECK(victim != entries_.end());
    bytes_ -= victim->second.bytes;
    ++stats_.evictions;
    entries_.erase(victim);
  }
}

}  // namespace repro::align
