// Shared types and indexing conventions of the alignment layer.
//
// Top-alignment geometry (paper §2.2 / §3), in 0-based terms used throughout
// this codebase:
//
//   * A sequence S of length m has m-1 split points r in [1, m-1].
//   * Rectangle r locally aligns prefix S[0..r) (vertical, rows y = 1..r)
//     against suffix S[r..m) (horizontal, columns x = 1..m-r).
//   * Cell (y, x) aligns the residue pair with global positions
//     (i, j) = (y-1, r+x-1); i < j always holds, so pair bookkeeping (the
//     override triangle) is a strict upper triangle over global positions.
//   * Local alignments of rectangle r always end in its bottom row y = r
//     (Appendix A), so score-only kernels output exactly that row.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "seq/scoring.hpp"

namespace repro::align {

/// Alignment scores. Kernels may compute in saturating i16 lanes (like the
/// paper's SSE/SSE2 code); results are widened to Score at the API boundary.
using Score = std::int32_t;

/// "Minus infinity" for running gap maxima; chosen so that subtracting any
/// realistic penalty chain cannot underflow i32.
inline constexpr Score kNegInf = -(1 << 28);

/// Saturating-i16 lanes use this floor; subs_epi16 keeps values >= -32768.
inline constexpr std::int16_t kNegInf16 = -30000;

class OverrideTriangle;

/// Non-owning view of a saved kernel row state for checkpoint-resume
/// realignment: the interleaved (H, MaxY) column state exactly as the kernel
/// leaves it after sweeping DP rows 1..row. Restoring it and re-entering the
/// sweep at row+1 is bit-identical to a from-scratch sweep, because the only
/// other carries (per-row stripe carries, the running MaxX) are recomputed
/// from it before they are read. The byte layout is engine-specific — lanes
/// interleaved at c*lanes+k, `elem_size` bytes per element — and guarded by
/// the stamp fields; kernels reject mismatching layouts.
struct CheckpointView {
  int row = 0;        ///< deepest DP row covered by this state (>= 1)
  int lanes = 0;      ///< interleave factor L of the producing kernel
  int elem_size = 0;  ///< bytes per lane element (2 = i16, 4 = i32)
  const std::byte* h = nullptr;      ///< width x lanes elements of H
  const std::byte* max_y = nullptr;  ///< width x lanes elements of MaxY
  std::size_t bytes = 0;             ///< size of each buffer in bytes
};

/// One emitted checkpoint row (the owning counterpart of CheckpointView).
struct CheckpointRow {
  int row = 0;
  std::vector<std::byte> h;
  std::vector<std::byte> max_y;
  [[nodiscard]] std::size_t bytes() const { return h.size() + max_y.size(); }
};

/// Staging area a kernel fills with checkpoint rows while it sweeps. The
/// caller sets the emission grid (`stride`, `top_row`); the kernel stamps the
/// layout and writes `count` rows into `rows`. Buffers are recycled across
/// sweeps (`rows` never shrinks; `count` is the live prefix), so a warm sink
/// allocates nothing.
struct CheckpointSink {
  int stride = 1;    ///< emit rows at multiples of this (>= 1)
  int top_row = 0;   ///< also emit this row (kernels clamp it to r0 - 1)
  int lanes = 0;     ///< stamped by the kernel
  int elem_size = 0; ///< stamped by the kernel
  int count = 0;     ///< live rows in `rows` after the sweep
  std::vector<CheckpointRow> rows;  ///< ascending by row within the prefix

  /// Rebuilds the live prefix for every emission row in [y_begin, max_row]:
  /// multiples of `stride`, plus `max_row` itself.
  void prepare(int y_begin, int max_row, std::size_t buf_bytes) {
    count = 0;
    const auto add = [&](int y) {
      if (static_cast<std::size_t>(count) == rows.size()) rows.emplace_back();
      CheckpointRow& cr = rows[static_cast<std::size_t>(count)];
      cr.row = y;
      cr.h.resize(buf_bytes);
      cr.max_y.resize(buf_bytes);
      ++count;
    };
    if (max_row < y_begin) return;
    const int first = ((y_begin + stride - 1) / stride) * stride;
    for (int y = first; y <= max_row; y += stride) add(y);
    if (count == 0 || rows[static_cast<std::size_t>(count - 1)].row != max_row)
      add(max_row);
  }

  /// Drops staged rows >= `min_dirty_row`: row y's state depends on override
  /// bits of pairs with i <= y-1, so rows at or past the first dirty row may
  /// have been computed from bits added after the sweep started.
  void drop_from(int min_dirty_row) {
    int keep = 0;
    while (keep < count && rows[static_cast<std::size_t>(keep)].row < min_dirty_row)
      ++keep;
    count = keep;
  }
};

/// One group of consecutive rectangles to align score-only. Engines with L
/// lanes accept count in [1, L]; scalar engines accept count == 1.
struct GroupJob {
  std::span<const std::uint8_t> seq;     ///< full sequence codes (length m)
  const seq::Scoring* scoring = nullptr; ///< exchange matrix + gap penalties
  const OverrideTriangle* overrides = nullptr;  ///< nullptr = empty triangle
  int r0 = 1;     ///< first split of the group
  int count = 1;  ///< number of consecutive splits r0, r0+1, ...
  /// When set (and the engine supports checkpoints), the sweep starts at
  /// DP row resume->row + 1 from the saved state instead of row 1.
  const CheckpointView* resume = nullptr;
  /// When set (and the engine supports checkpoints), the kernel emits
  /// checkpoint rows on the sink's grid for rows >= the resume point.
  CheckpointSink* sink = nullptr;
};

}  // namespace repro::align
