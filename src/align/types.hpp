// Shared types and indexing conventions of the alignment layer.
//
// Top-alignment geometry (paper §2.2 / §3), in 0-based terms used throughout
// this codebase:
//
//   * A sequence S of length m has m-1 split points r in [1, m-1].
//   * Rectangle r locally aligns prefix S[0..r) (vertical, rows y = 1..r)
//     against suffix S[r..m) (horizontal, columns x = 1..m-r).
//   * Cell (y, x) aligns the residue pair with global positions
//     (i, j) = (y-1, r+x-1); i < j always holds, so pair bookkeeping (the
//     override triangle) is a strict upper triangle over global positions.
//   * Local alignments of rectangle r always end in its bottom row y = r
//     (Appendix A), so score-only kernels output exactly that row.
#pragma once

#include <cstdint>
#include <span>

#include "seq/scoring.hpp"

namespace repro::align {

/// Alignment scores. Kernels may compute in saturating i16 lanes (like the
/// paper's SSE/SSE2 code); results are widened to Score at the API boundary.
using Score = std::int32_t;

/// "Minus infinity" for running gap maxima; chosen so that subtracting any
/// realistic penalty chain cannot underflow i32.
inline constexpr Score kNegInf = -(1 << 28);

/// Saturating-i16 lanes use this floor; subs_epi16 keeps values >= -32768.
inline constexpr std::int16_t kNegInf16 = -30000;

class OverrideTriangle;

/// One group of consecutive rectangles to align score-only. Engines with L
/// lanes accept count in [1, L]; scalar engines accept count == 1.
struct GroupJob {
  std::span<const std::uint8_t> seq;     ///< full sequence codes (length m)
  const seq::Scoring* scoring = nullptr; ///< exchange matrix + gap penalties
  const OverrideTriangle* overrides = nullptr;  ///< nullptr = empty triangle
  int r0 = 1;     ///< first split of the group
  int count = 1;  ///< number of consecutive splits r0, r0+1, ...
};

}  // namespace repro::align
