#include "align/bottom_row_store.hpp"

#include <limits>

#include "util/check.hpp"

namespace repro::align {

BottomRowStore::BottomRowStore(int m) : m_(m) {
  REPRO_CHECK(m >= 2);
  const auto mm = static_cast<std::size_t>(m);
  data_.assign(mm * (mm - 1) / 2, 0);
  computed_.assign(mm, false);
}

void BottomRowStore::store(int r, std::span<const Score> row) {
  REPRO_CHECK(r >= 1 && r < m_);
  REPRO_CHECK_MSG(computed_[static_cast<std::size_t>(r)] == 0,
                  "bottom row " << r << " stored twice");
  REPRO_CHECK(row.size() == static_cast<std::size_t>(m_ - r));
  std::int16_t* dst = data_.data() + offset(r);
  for (std::size_t x = 0; x < row.size(); ++x) {
    REPRO_CHECK_MSG(row[x] >= std::numeric_limits<std::int16_t>::min() &&
                        row[x] <= std::numeric_limits<std::int16_t>::max(),
                    "score " << row[x] << " overflows the i16 bottom-row store");
    dst[x] = static_cast<std::int16_t>(row[x]);
  }
  computed_[static_cast<std::size_t>(r)] = 1;
}

std::span<const std::int16_t> BottomRowStore::row(int r) const {
  REPRO_CHECK(r >= 1 && r < m_);
  REPRO_CHECK_MSG(computed_[static_cast<std::size_t>(r)] != 0,
                  "bottom row " << r << " requested before first alignment");
  return {data_.data() + offset(r), static_cast<std::size_t>(m_ - r)};
}

}  // namespace repro::align
