// Compressed override-pair storage (paper §3: "Since the triangle is
// sparse, it can be compressed if memory usage is an issue").
//
// The dense OverrideTriangle spends m(m-1)/2 bits regardless of content;
// after T top alignments only O(T · alignment_length) pairs are set —
// typically a vanishing fraction. SparseOverrideSet stores exactly the set
// pairs (8 bytes each, sorted, binary-searched), which wins below a set
// density of ~1/64 — always the case in practice. The alignment kernels
// keep using the dense triangle (O(1) word probes in the hot loop); the
// sparse form serves the memory-constrained sides the paper discusses:
// checkpointing, shipping triangle state between ranks, and regimes where
// the dense bits no longer fit (m ~ 10^5: 625 MB dense vs a few MB sparse).
#pragma once

#include <cstdint>
#include <vector>

#include "align/override_triangle.hpp"

namespace repro::align {

class SparseOverrideSet {
 public:
  explicit SparseOverrideSet(int m);

  [[nodiscard]] int sequence_length() const { return m_; }
  [[nodiscard]] std::int64_t count() const {
    // set() never adds a key twice, so the tail holds only new pairs.
    return static_cast<std::int64_t>(pairs_.size() + tail_.size());
  }

  /// Marks pair (i, j); idempotent. Amortised O(log n) via a sorted main
  /// array plus a small unsorted tail that is merged when it grows.
  void set(int i, int j);

  [[nodiscard]] bool contains(int i, int j) const;

  /// Bulk import/export with the dense representation.
  void add_all(const OverrideTriangle& dense);
  void expand_into(OverrideTriangle& dense) const;

  /// All pairs, sorted by (i, j).
  [[nodiscard]] std::vector<std::pair<int, int>> pairs() const;

  /// Bytes held — compare with the dense triangle's m(m-1)/16.
  [[nodiscard]] std::size_t bytes() const {
    return (pairs_.capacity() + tail_.capacity()) * sizeof(std::uint64_t);
  }

  [[nodiscard]] static std::size_t dense_bytes(int m) {
    return static_cast<std::size_t>(m) * (static_cast<std::size_t>(m) - 1) / 16;
  }

 private:
  [[nodiscard]] std::uint64_t pack(int i, int j) const;
  void merge_tail() const;

  int m_;
  // Sorted unique packed pairs + unsorted recent tail (mutable: contains()
  // merges lazily; logical state is unaffected).
  mutable std::vector<std::uint64_t> pairs_;
  mutable std::vector<std::uint64_t> tail_;
};

}  // namespace repro::align
