// Archive of first-alignment bottom rows (paper Appendix A).
//
// After a rectangle is aligned for the first time (empty override triangle),
// its bottom row is stored. Realigned bottom-row entries are compared against
// the stored originals: an entry is a *valid* alignment end only if the two
// values are equal; unequal values signify shadow alignments that were
// artificially rerouted around overridden entries.
//
// Storage is the dominant data structure: m(m-1)/2 entries. Entries are i16
// (as in the paper, which reports 1.5 GB at m = 40000 — 2 bytes each);
// writes check for overflow.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/types.hpp"

namespace repro::align {

class BottomRowStore {
 public:
  /// Store for a sequence of length m (rows for splits r in [1, m-1]).
  explicit BottomRowStore(int m);

  [[nodiscard]] int sequence_length() const { return m_; }

  [[nodiscard]] bool computed(int r) const {
    return computed_[static_cast<std::size_t>(r)] != 0;
  }

  /// Stores the first-alignment bottom row of rectangle r (m - r scores).
  /// Throws if the row was already stored or a score exceeds i16 range.
  void store(int r, std::span<const Score> row);

  /// Read-only view of the stored row; `computed(r)` must hold.
  [[nodiscard]] std::span<const std::int16_t> row(int r) const;

  /// Total bytes held (reported by benches; the paper discusses this limit).
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(std::int16_t);
  }

 private:
  [[nodiscard]] std::size_t offset(int r) const {
    // Rows are laid out consecutively: row r has m - r entries starting at
    // sum_{k=1}^{r-1} (m - k).
    const auto rr = static_cast<std::size_t>(r);
    const auto mm = static_cast<std::size_t>(m_);
    return (rr - 1) * mm - (rr - 1) * rr / 2;
  }

  int m_;
  std::vector<std::int16_t> data_;
  // One byte per row, not vector<bool>: concurrent first-alignments of
  // *different* rows may store in parallel (distinct memory locations).
  std::vector<std::uint8_t> computed_;
};

}  // namespace repro::align
