// The Eq.-1 kernel evaluated literally: each cell takes the maximum over the
// entire row to its left and the entire column above it, with a
// length-dependent gap penalty — O(n) work per cell and O(n^2) state.
//
// This is the per-cell cost model of the *old* (1993) Repro algorithm and
// the source of its O(n^4) total runtime (the paper, footnote 2 and §3); the
// new algorithm's affine running maxima (Fig. 3) reduce it to O(1) per cell.
// With affine penalties both kernels produce identical matrices, which is
// how the old/new equivalence tests work.
#include <algorithm>
#include <vector>

#include "align/engine_detail.hpp"
#include "align/override_triangle.hpp"

namespace repro::align {
namespace {

class GeneralGapEngine final : public Engine {
 public:
  [[nodiscard]] std::string name() const override { return "general-gap"; }
  [[nodiscard]] int lanes() const override { return 1; }

 protected:
  void do_align(const GroupJob& job,
                std::span<const std::span<Score>> out) override {
    detail::validate_job(job, out, lanes());
    const auto& seq = job.seq;
    const int m = static_cast<int>(seq.size());
    const int r = job.r0;
    const int rows = r;
    const int cols = m - r;
    const seq::ScoreMatrix& ex = job.scoring->matrix;
    const seq::GapPenalty& gap = job.scoring->gap;

    const std::size_t w = static_cast<std::size_t>(cols) + 1;
    matrix_.assign((static_cast<std::size_t>(rows) + 1) * w, 0);

    for (int y = 1; y <= rows; ++y) {
      const int i = y - 1;
      const std::int16_t* erow = ex.row(seq[static_cast<std::size_t>(i)]);
      const std::atomic<std::uint64_t>* obits =
          (job.overrides != nullptr && !job.overrides->row_empty(i))
              ? job.overrides->row_bits(i)
              : nullptr;
      Score* cur = matrix_.data() + static_cast<std::size_t>(y) * w;
      const Score* prev = cur - w;
      for (int x = 1; x <= cols; ++x) {
        const int j = r + x - 1;
        // Eq. 1: best of the no-gap diagonal, every horizontal gap, and
        // every vertical gap, each charged its length-dependent penalty.
        Score inner = prev[x - 1];
        for (int g = 1; g <= x - 1; ++g)
          inner = std::max(inner, prev[x - 1 - g] - gap.cost(g));
        for (int g = 1; g <= y - 1; ++g)
          inner = std::max(
              inner,
              matrix_[static_cast<std::size_t>(y - 1 - g) * w +
                      static_cast<std::size_t>(x - 1)] -
                  gap.cost(g));
        Score h =
            std::max(Score{0}, erow[seq[static_cast<std::size_t>(j)]] + inner);
        if (obits != nullptr && detail::override_bit(obits, i, j)) h = 0;
        cur[x] = h;
      }
    }

    const Score* bottom = matrix_.data() + static_cast<std::size_t>(rows) * w;
    std::copy(bottom + 1, bottom + 1 + cols, out[0].begin());
  }

 private:
  std::vector<Score> matrix_;
};

}  // namespace

namespace detail {
std::unique_ptr<Engine> make_general_gap_engine() {
  return std::make_unique<GeneralGapEngine>();
}
}  // namespace detail

}  // namespace repro::align
