#include "align/sparse_override.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace repro::align {

namespace {
constexpr std::size_t kTailLimit = 1024;
}

SparseOverrideSet::SparseOverrideSet(int m) : m_(m) {
  REPRO_CHECK(m >= 2);
}

std::uint64_t SparseOverrideSet::pack(int i, int j) const {
  REPRO_CHECK(0 <= i && i < j && j < m_);
  return (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint32_t>(j);
}

void SparseOverrideSet::merge_tail() const {
  if (tail_.empty()) return;
  std::sort(tail_.begin(), tail_.end());
  std::vector<std::uint64_t> merged;
  merged.reserve(pairs_.size() + tail_.size());
  std::merge(pairs_.begin(), pairs_.end(), tail_.begin(), tail_.end(),
             std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  pairs_ = std::move(merged);
  tail_.clear();
}

void SparseOverrideSet::set(int i, int j) {
  const std::uint64_t key = pack(i, j);
  if (contains(i, j)) return;
  tail_.push_back(key);
  if (tail_.size() >= kTailLimit) merge_tail();
}

bool SparseOverrideSet::contains(int i, int j) const {
  const std::uint64_t key = pack(i, j);
  if (std::binary_search(pairs_.begin(), pairs_.end(), key)) return true;
  return std::find(tail_.begin(), tail_.end(), key) != tail_.end();
}

void SparseOverrideSet::add_all(const OverrideTriangle& dense) {
  REPRO_CHECK(dense.sequence_length() == m_);
  merge_tail();
  for (int i = 0; i < m_ - 1; ++i) {
    if (dense.row_empty(i)) continue;
    for (int j = i + 1; j < m_; ++j)
      if (dense.contains(i, j)) set(i, j);
  }
  merge_tail();
}

void SparseOverrideSet::expand_into(OverrideTriangle& dense) const {
  REPRO_CHECK(dense.sequence_length() == m_);
  merge_tail();
  for (const std::uint64_t key : pairs_)
    dense.set(static_cast<int>(key >> 32),
              static_cast<int>(key & 0xffffffffu));
}

std::vector<std::pair<int, int>> SparseOverrideSet::pairs() const {
  merge_tail();
  std::vector<std::pair<int, int>> out;
  out.reserve(pairs_.size());
  for (const std::uint64_t key : pairs_)
    out.emplace_back(static_cast<int>(key >> 32),
                     static_cast<int>(key & 0xffffffffu));
  return out;
}

}  // namespace repro::align
