// Shared SIMD engine implementations. Not part of the API.
//
// Every SIMD translation unit (SSE2, SSE4.1, AVX2, generic) instantiates the
// same two class templates over its Ops policies:
//
//   * SimdEngineT<Ops> — fixed-precision engine: one scratch, one cached
//     query profile, one kernel instantiation. Saturation throws (the
//     upfront check_headroom guard exists so explicit selections fail fast
//     instead).
//   * AdaptiveEngineT<Ops8, Ops16> — the adaptive driver: runs each group in
//     u8 lanes, and when the sweep's saturation guard fires re-runs exactly
//     that group in i16 lanes *at the same lane count* (DoublePumpOps splits
//     each u8 vector across two i16 registers), so group geometry, outputs,
//     and checkpoint layouts stay native in both precisions. Escalation is
//     sticky per split: override growth only ever zeroes cells, so DP values
//     are monotonically nonincreasing across realignment rounds — a group
//     that saturated once is swept at i16 from then on (and, conversely, a
//     group certified clean can never saturate in a later round, which keeps
//     each checkpoint-cache entry's layout stable for the whole run).
#pragma once

#include <set>
#include <string>
#include <type_traits>
#include <utility>

#include "align/engine.hpp"
#include "align/engine_detail.hpp"
#include "align/query_profile.hpp"
#include "align/simd_kernel.hpp"
#include "obs/metrics.hpp"

namespace repro::align::detail {

// Stripe default: row state is H + MaxY, and the paper dedicates a third of
// L1D (32 KiB typical) to the row section.
inline int default_stripe(int lanes, int elem_bytes) {
  return 32768 / 3 / (2 * elem_bytes * lanes);
}

// Precision counters: engines bump their PrecisionStats struct and mirror
// into the global registry (one relaxed add per group sweep; the whole
// mirror vanishes with REPRO_OBS=OFF).
inline void note_sweep_obs(bool i8) {
  if constexpr (obs::kEnabled) {
    static obs::Counter& i8_sweeps =
        obs::Registry::global().counter("align.precision.i8_sweeps");
    static obs::Counter& i16_sweeps =
        obs::Registry::global().counter("align.precision.i16_sweeps");
    (i8 ? i8_sweeps : i16_sweeps).add(1);
  } else {
    (void)i8;
  }
}

inline void note_escalation_obs() {
  if constexpr (obs::kEnabled) {
    static obs::Counter& escalations =
        obs::Registry::global().counter("align.precision.escalations");
    escalations.add(1);
  }
}

inline void note_profile_obs(bool rebuilt) {
  if constexpr (obs::kEnabled) {
    static obs::Counter& hits =
        obs::Registry::global().counter("align.precision.profile_hits");
    static obs::Counter& builds =
        obs::Registry::global().counter("align.precision.profile_builds");
    (rebuilt ? builds : hits).add(1);
  } else {
    (void)rebuilt;
  }
}

/// Bumps the sweep counter matching Elem's precision (i32 sweeps are not
/// tracked — they have no narrower precision to compare against).
template <typename Elem>
inline void note_sweep(PrecisionStats& stats) {
  if constexpr (sizeof(Elem) == 1) {
    ++stats.i8_sweeps;
    note_sweep_obs(true);
  } else if constexpr (sizeof(Elem) == 2) {
    ++stats.i16_sweeps;
    note_sweep_obs(false);
  }
}

template <class Ops>
class SimdEngineT final : public Engine {
 public:
  SimdEngineT(std::string name, int stripe_cols)
      : name_(std::move(name)),
        stripe_(stripe_cols == 0
                    ? default_stripe(Ops::kLanes, sizeof(typename Ops::Elem))
                    : stripe_cols) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] int lanes() const override { return Ops::kLanes; }
  [[nodiscard]] bool supports_checkpoints() const override { return true; }
  [[nodiscard]] PrecisionStats precision_stats() const override {
    return stats_;
  }

 protected:
  void do_align(const GroupJob& job,
                std::span<const std::span<Score>> out) override {
    validate_job(job, out, lanes());
    note_profile_obs(profile_.ensure(job.seq, *job.scoring, stats_));
    if constexpr (!std::is_signed_v<typename Ops::Elem>) {
      REPRO_CHECK_MSG(profile_.feasible(),
                      "scoring exceeds the u8 biased-profile range; use an "
                      "adaptive (auto) or wider engine");
    }
    run_simd_group<Ops>(job, out, stripe_, scratch_, &profile_);
    note_sweep<typename Ops::Elem>(stats_);
  }

 private:
  std::string name_;
  int stripe_;
  SimdScratchT<typename Ops::Elem> scratch_;
  QueryProfileT<typename Ops::Elem> profile_;
  PrecisionStats stats_;
};

/// Runs Base's i16 ops pairwise over two registers, presenting twice the
/// lanes: element p of the pumped vector lives in register p / Base::kLanes.
/// This gives the adaptive driver an i16 kernel with the *same* lane count
/// and interleaved layout as its u8 kernel, so escalation changes only the
/// element width — never the group geometry or checkpoint shape.
template <class Base>
struct DoublePumpOps {
  static constexpr int kLanes = 2 * Base::kLanes;
  using Elem = typename Base::Elem;
  static constexpr bool kSaturating = Base::kSaturating;
  struct Vec {
    typename Base::Vec lo, hi;
  };

  static Vec zero() { return {Base::zero(), Base::zero()}; }
  static Vec set1(Elem x) { return {Base::set1(x), Base::set1(x)}; }
  static Vec load(const Elem* p) {
    return {Base::load(p), Base::load(p + Base::kLanes)};
  }
  static void store(Elem* p, Vec a) {
    Base::store(p, a.lo);
    Base::store(p + Base::kLanes, a.hi);
  }
  static Vec max(Vec a, Vec b) {
    return {Base::max(a.lo, b.lo), Base::max(a.hi, b.hi)};
  }
  static Vec adds(Vec a, Vec b) {
    return {Base::adds(a.lo, b.lo), Base::adds(a.hi, b.hi)};
  }
  static Vec subs(Vec a, Vec b) {
    return {Base::subs(a.lo, b.lo), Base::subs(a.hi, b.hi)};
  }
  static Vec and_(Vec a, Vec b) {
    return {Base::and_(a.lo, b.lo), Base::and_(a.hi, b.hi)};
  }
};

template <class Ops8, class Ops16>
class AdaptiveEngineT final : public Engine {
  static_assert(Ops8::kLanes == Ops16::kLanes,
                "adaptive precisions must share one lane count");
  static_assert(std::is_same_v<typename Ops8::Elem, std::uint8_t> &&
                    std::is_same_v<typename Ops16::Elem, std::int16_t>,
                "adaptive driver escalates u8 -> i16");

 public:
  AdaptiveEngineT(std::string name, int stripe_cols)
      : name_(std::move(name)),
        stripe8_(stripe_cols == 0 ? default_stripe(Ops8::kLanes, 1)
                                  : stripe_cols),
        stripe16_(stripe_cols == 0 ? default_stripe(Ops16::kLanes, 2)
                                   : stripe_cols) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] int lanes() const override { return Ops8::kLanes; }
  [[nodiscard]] bool supports_checkpoints() const override { return true; }
  [[nodiscard]] PrecisionStats precision_stats() const override {
    return stats_;
  }

 protected:
  void do_align(const GroupJob& job,
                std::span<const std::span<Score>> out) override {
    validate_job(job, out, lanes());
    if (profile8_.ensure(job.seq, *job.scoring, stats_)) {
      // New workload: prior escalation decisions no longer apply.
      note_profile_obs(true);
      escalated_.clear();
    } else {
      note_profile_obs(false);
    }
    if (profile8_.feasible() && escalated_.count(job.r0) == 0) {
      GroupJob j8 = job;
      // A checkpoint from the other precision's layout cannot seed this
      // sweep; drop it and sweep from row 1 (correct, just undiscounted).
      if (j8.resume != nullptr && j8.resume->elem_size != 1)
        j8.resume = nullptr;
      bool sat = false;
      run_simd_group<Ops8>(j8, out, stripe8_, scratch8_, &profile8_, &sat);
      note_sweep<std::uint8_t>(stats_);
      if (!sat) return;
      // Escalate: outputs and staged checkpoints from the u8 attempt are
      // uncertified; the i16 sweep below re-prepares the same sink, so the
      // group's cache entry holds i16 rows from its very first store.
      ++stats_.escalations;
      note_escalation_obs();
      escalated_.insert(job.r0);
    }
    note_profile_obs(profile16_.ensure(job.seq, *job.scoring, stats_));
    GroupJob j16 = job;
    if (j16.resume != nullptr && j16.resume->elem_size != 2)
      j16.resume = nullptr;
    run_simd_group<Ops16>(j16, out, stripe16_, scratch16_, &profile16_);
    note_sweep<std::int16_t>(stats_);
  }

 private:
  std::string name_;
  int stripe8_;
  int stripe16_;
  SimdScratchT<std::uint8_t> scratch8_;
  SimdScratchT<std::int16_t> scratch16_;
  QueryProfileT<std::uint8_t> profile8_;
  QueryProfileT<std::int16_t> profile16_;
  PrecisionStats stats_;
  std::set<int> escalated_;  ///< splits r0 pinned to the i16 path
};

}  // namespace repro::align::detail
