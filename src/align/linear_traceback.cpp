#include "align/linear_traceback.hpp"

#include <algorithm>
#include <vector>

#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "util/check.hpp"

namespace repro::align {
namespace {

// 64-bit working scores: deep floors survive long subtraction chains.
using Wide = std::int64_t;
constexpr Wide kWideNegInf = -(Wide{1} << 50);

/// Divide-and-conquer reconstruction of a pair-path between two known
/// anchor pairs with a known total score, in O(cols) memory.
///
/// Unlike textbook Hirschberg/Myers–Miller — which reconstruct a *general*
/// global alignment and may legally produce adjacent insertion+deletion
/// "double gaps" — this walks the paper's own Eq.-1 path model (every step
/// consumes one residue pair plus at most one single-direction gap), so the
/// result is always expressible as a top-alignment pair list and always
/// reproduces the local DP score exactly.
///
/// Scheme: anchored forward DP from the start pair and anchored backward DP
/// from the end pair meet at a middle row; the optimal path crosses that row
/// either at a pair (F + A - E == S there) or inside a vertical gap (the
/// per-column gap-reach maxima locate its two flanking pairs). Recurse on
/// both halves.
class PairPathReconstructor {
 public:
  PairPathReconstructor(std::span<const std::uint8_t> seq,
                        const seq::Scoring& scoring,
                        const OverrideTriangle* overrides)
      : seq_(seq),
        scoring_(scoring),
        overrides_(overrides),
        open_(scoring.gap.open),
        ext_(scoring.gap.extend) {}

  /// Emits every pair strictly between the anchors, in order. `total` is
  /// the full path score including both anchor exchange values.
  void solve(std::pair<int, int> pa, std::pair<int, int> pb, Wide total,
             std::vector<std::pair<int, int>>& out) {
    out_ = &out;
    recurse(pa, pb, total);
  }

  [[nodiscard]] Wide exchange(int i, int j) const {
    if (overrides_ != nullptr && overrides_->contains(i, j)) return kWideNegInf;
    return scoring_.matrix.score(seq_[static_cast<std::size_t>(i)],
                                 seq_[static_cast<std::size_t>(j)]);
  }

 private:
  [[nodiscard]] Wide gap_cost(int len) const {
    return len == 0 ? 0 : Wide{open_} + Wide{len} * ext_;
  }

  /// One step pa -> pb with no interior pairs: diagonal plus at most one gap.
  [[nodiscard]] Wide step_score(std::pair<int, int> pa,
                                std::pair<int, int> pb) const {
    const int di = pb.first - pa.first;
    const int dj = pb.second - pa.second;
    REPRO_DCHECK(di >= 1 && dj >= 1 && (di == 1 || dj == 1));
    return exchange(pa.first, pa.second) + exchange(pb.first, pb.second) -
           (di > 1 ? gap_cost(di - 1) : 0) - (dj > 1 ? gap_cost(dj - 1) : 0);
  }

  /// Join-time snapshot of an anchored DP at the middle row.
  struct Snapshot {
    std::vector<Wide> pair_row;  ///< F/A value of a pair at (i_mid, j)
    std::vector<Wide> reach;     ///< vertical-gap reach: max F(i,j) +- i*ext
    std::vector<int> reach_arg;  ///< row attaining `reach`
  };

  /// Anchored forward DP from pa over rows (pa.i, i_mid], interior columns
  /// (pa.j, pb.j). reach[x] = max over i in [pa.i, i_mid) of F(i,j) + i*ext.
  Snapshot forward(std::pair<int, int> pa, std::pair<int, int> pb, int i_mid) {
    const int cols = pb.second - pa.second - 1;  // interior columns
    Snapshot snap;
    snap.pair_row.assign(static_cast<std::size_t>(cols) + 1, kWideNegInf);
    snap.reach.assign(static_cast<std::size_t>(cols) + 1, kWideNegInf);
    snap.reach_arg.assign(static_cast<std::size_t>(cols) + 1, -1);

    // row[x]: F of the previous row; x = j - pa.j (0 = anchor column).
    std::vector<Wide> row(static_cast<std::size_t>(cols) + 1, kWideNegInf);
    std::vector<Wide> max_y(static_cast<std::size_t>(cols) + 1, kWideNegInf);
    row[0] = exchange(pa.first, pa.second);
    snap.reach[0] = row[0] + Wide{pa.first} * ext_;
    snap.reach_arg[0] = pa.first;

    for (int i = pa.first + 1; i <= i_mid; ++i) {
      Wide diag = row[0];
      row[0] = kWideNegInf;  // the anchor lives on row pa.i only
      Wide max_x = kWideNegInf;
      for (int x = 1; x <= cols; ++x) {
        const int j = pa.second + x;
        const Wide up = row[static_cast<std::size_t>(x)];
        const Wide inner =
            std::max({max_x, max_y[static_cast<std::size_t>(x)], diag});
        const Wide f =
            inner <= kWideNegInf / 2 ? kWideNegInf : exchange(i, j) + inner;
        row[static_cast<std::size_t>(x)] = f;
        if (i < i_mid && f > kWideNegInf / 2 &&
            f + Wide{i} * ext_ > snap.reach[static_cast<std::size_t>(x)]) {
          snap.reach[static_cast<std::size_t>(x)] = f + Wide{i} * ext_;
          snap.reach_arg[static_cast<std::size_t>(x)] = i;
        }
        max_x = std::max(diag - open_, max_x) - ext_;
        max_y[static_cast<std::size_t>(x)] =
            std::max(diag - open_, max_y[static_cast<std::size_t>(x)]) - ext_;
        diag = up;
      }
    }
    snap.pair_row = row;
    return snap;
  }

  /// Mirror: anchored backward DP from pb down to i_mid.
  /// reach[x] = max over i in (i_mid, pb.i] of A(i,j) - i*ext.
  Snapshot backward(std::pair<int, int> pa, std::pair<int, int> pb, int i_mid) {
    const int cols = pb.second - pa.second - 1;
    Snapshot snap;
    snap.pair_row.assign(static_cast<std::size_t>(cols) + 1, kWideNegInf);
    snap.reach.assign(static_cast<std::size_t>(cols) + 1, kWideNegInf);
    snap.reach_arg.assign(static_cast<std::size_t>(cols) + 1, -1);

    // x = pb.j - j this time (0 = anchor column), rows descend from pb.i.
    std::vector<Wide> row(static_cast<std::size_t>(cols) + 1, kWideNegInf);
    std::vector<Wide> max_y(static_cast<std::size_t>(cols) + 1, kWideNegInf);
    row[0] = exchange(pb.first, pb.second);
    snap.reach[0] = row[0] - Wide{pb.first} * ext_;
    snap.reach_arg[0] = pb.first;

    for (int i = pb.first - 1; i >= i_mid; --i) {
      Wide diag = row[0];
      row[0] = kWideNegInf;
      Wide max_x = kWideNegInf;
      for (int x = 1; x <= cols; ++x) {
        const int j = pb.second - x;
        const Wide up = row[static_cast<std::size_t>(x)];
        const Wide inner =
            std::max({max_x, max_y[static_cast<std::size_t>(x)], diag});
        const Wide a =
            inner <= kWideNegInf / 2 ? kWideNegInf : exchange(i, j) + inner;
        row[static_cast<std::size_t>(x)] = a;
        if (i > i_mid && a > kWideNegInf / 2 &&
            a - Wide{i} * ext_ > snap.reach[static_cast<std::size_t>(x)]) {
          snap.reach[static_cast<std::size_t>(x)] = a - Wide{i} * ext_;
          snap.reach_arg[static_cast<std::size_t>(x)] = i;
        }
        max_x = std::max(diag - open_, max_x) - ext_;
        max_y[static_cast<std::size_t>(x)] =
            std::max(diag - open_, max_y[static_cast<std::size_t>(x)]) - ext_;
        diag = up;
      }
    }
    snap.pair_row = row;
    return snap;
  }

  // NOLINTNEXTLINE(misc-no-recursion): divide-and-conquer halves rows per level
  void recurse(std::pair<int, int> pa, std::pair<int, int> pb, Wide total) {
    const int interior_rows = pb.first - pa.first - 1;
    const int interior_cols = pb.second - pa.second - 1;
    if (interior_rows <= 0 || interior_cols <= 0) {
      // No interior pairs are possible: pa -> pb is a single step.
      REPRO_CHECK_MSG(step_score(pa, pb) == total,
                      "pair-path reconstruction: leaf score mismatch");
      return;
    }

    const int i_mid = pa.first + 1 + interior_rows / 2;
    const Snapshot fwd = forward(pa, pb, i_mid);
    const Snapshot bwd = backward(pa, pb, i_mid);
    const int cols = interior_cols;

    // Type 1: the path has a pair at (i_mid, j). F and A both include that
    // pair's exchange value, so the sum double-counts it once.
    for (int x = 1; x <= cols; ++x) {
      const int j = pa.second + x;
      const Wide f = fwd.pair_row[static_cast<std::size_t>(x)];
      const Wide a = bwd.pair_row[static_cast<std::size_t>(cols + 1 - x)];
      if (f <= kWideNegInf / 2 || a <= kWideNegInf / 2) continue;
      if (f + a - exchange(i_mid, j) == total) {
        const std::pair<int, int> mid{i_mid, j};
        recurse(pa, mid, f);
        out_->push_back(mid);
        recurse(mid, pb, a);
        return;
      }
    }

    // Type 2: a vertical gap spans row i_mid, from pair (i1, j) to pair
    // (i2, j+1): F(i1,j) - (open + (i2-i1-1)*ext) + A(i2,j+1)
    //         = [F + i1*ext] + [A - i2*ext] - open + ext.
    for (int x = 0; x <= cols; ++x) {
      const Wide p = fwd.reach[static_cast<std::size_t>(x)];
      // backward column for j+1: x_b = pb.j - (j+1) = cols - x.
      const Wide q = bwd.reach[static_cast<std::size_t>(cols - x)];
      if (p <= kWideNegInf / 2 || q <= kWideNegInf / 2) continue;
      if (p + q - open_ + ext_ == total) {
        const int i1 = fwd.reach_arg[static_cast<std::size_t>(x)];
        const int i2 = bwd.reach_arg[static_cast<std::size_t>(cols - x)];
        const std::pair<int, int> p1{i1, pa.second + x};
        const std::pair<int, int> p2{i2, pa.second + x + 1};
        const Wide s1 = p - Wide{i1} * ext_;
        const Wide s2 = q + Wide{i2} * ext_;
        if (p1 != pa) {
          recurse(pa, p1, s1);
          out_->push_back(p1);
        } else {
          REPRO_CHECK(s1 == exchange(pa.first, pa.second));
        }
        if (p2 != pb) {
          out_->push_back(p2);
          recurse(p2, pb, s2);
        } else {
          REPRO_CHECK(s2 == exchange(pb.first, pb.second));
        }
        return;
      }
    }
    REPRO_CHECK_MSG(false, "pair-path reconstruction found no crossing at row "
                               << i_mid << " for score " << total);
  }

  std::span<const std::uint8_t> seq_;
  const seq::Scoring& scoring_;
  const OverrideTriangle* overrides_;
  int open_;
  int ext_;
  std::vector<std::pair<int, int>>* out_ = nullptr;
};

/// Anchored reverse pass: A(i, j) = the best score of any pair-path
/// *starting* at (i, j) and ending exactly at (i_end, j_end). A <= S
/// everywhere and A == S exactly at valid optimal start cells; the first
/// one in scan order is chosen. O(cols) memory.
std::pair<int, int> find_start_cell(const GroupJob& job, int i_end, int j_end,
                                    Score target) {
  const auto& seq = job.seq;
  const seq::ScoreMatrix& ex = job.scoring->matrix;
  const Score open = job.scoring->gap.open;
  const Score ext = job.scoring->gap.extend;
  const int rows = i_end + 1;           // reversed vertical: i = i_end - (y-1)
  const int cols = j_end - job.r0 + 1;  // reversed horizontal: j = j_end - (x-1)

  std::vector<Score> h(static_cast<std::size_t>(cols) + 1, kNegInf);
  std::vector<Score> max_y(static_cast<std::size_t>(cols) + 1, kNegInf);
  h[0] = 0;  // the single anchor: every path must begin with the end pair

  for (int y = 1; y <= rows; ++y) {
    const int i = i_end - (y - 1);
    const std::int16_t* erow = ex.row(seq[static_cast<std::size_t>(i)]);
    Score diag = h[0];
    h[0] = kNegInf;  // the anchor exists only for cell (1, 1)
    Score max_x = kNegInf;
    for (int x = 1; x <= cols; ++x) {
      const int j = j_end - (x - 1);
      const Score up = h[static_cast<std::size_t>(x)];
      const Score inner =
          std::max({max_x, max_y[static_cast<std::size_t>(x)], diag});
      Score a = kNegInf;
      const bool forbidden =
          job.overrides != nullptr && job.overrides->contains(i, j);
      if (!forbidden && inner > kNegInf / 2)
        a = erow[seq[static_cast<std::size_t>(j)]] + inner;
      h[static_cast<std::size_t>(x)] = a;
      if (a == target) return {i, j};
      max_x = std::max(diag - open, max_x) - ext;
      max_y[static_cast<std::size_t>(x)] =
          std::max(diag - open, max_y[static_cast<std::size_t>(x)]) - ext;
      diag = up;
    }
  }
  REPRO_CHECK_MSG(false, "anchored reverse pass did not reach the target "
                         "score — inconsistent inputs");
  return {0, 0};  // unreachable
}

template <typename T>
Traceback linear_impl(const GroupJob& job, std::span<const T> original) {
  REPRO_CHECK(job.count == 1);
  const int m = static_cast<int>(job.seq.size());
  const int r = job.r0;

  // 1. Forward score-only pass: best valid end cell (shadow rejection).
  const auto engine = make_engine(EngineKind::kScalar);
  const std::vector<Score> bottom = engine->align_one(job);
  const BestEnd end = find_best_end(bottom, original);
  REPRO_CHECK_MSG(end.end_x != 0 && end.score > 0,
                  "linear traceback requested with no positive valid end cell "
                  "(r=" << r << ")");
  const int i_end = r - 1;
  const int j_end = r + end.end_x - 1;
  REPRO_CHECK(j_end < m);

  // 2. Anchored reverse pass: a start cell of an optimal path.
  const auto [i_start, j_start] = find_start_cell(job, i_end, j_end, end.score);

  Traceback tb;
  tb.r = r;
  tb.score = end.score;
  tb.end_x = end.end_x;
  if (i_start == i_end || j_start == j_end) {
    // Pairs strictly ascend in both components: same row or column means a
    // single-pair alignment.
    REPRO_CHECK(i_start == i_end && j_start == j_end);
    tb.pairs.emplace_back(i_end, j_end);
    return tb;
  }

  // 3. Checkpointed reconstruction between the two anchors.
  tb.pairs.emplace_back(i_start, j_start);
  PairPathReconstructor rec(job.seq, *job.scoring, job.overrides);
  rec.solve({i_start, j_start}, {i_end, j_end}, end.score, tb.pairs);
  tb.pairs.emplace_back(i_end, j_end);
  return tb;
}

}  // namespace

Traceback traceback_best_linear(const GroupJob& job,
                                std::span<const std::int16_t> original) {
  return linear_impl<std::int16_t>(job, original);
}

Traceback traceback_best_linear(const GroupJob& job,
                                std::span<const Score> original) {
  return linear_impl<Score>(job, original);
}

Traceback traceback_best_linear(const GroupJob& job) {
  return linear_impl<Score>(job, std::span<const Score>{});
}

}  // namespace repro::align
