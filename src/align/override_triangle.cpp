#include "align/override_triangle.hpp"

namespace repro::align {

OverrideTriangle::OverrideTriangle(int m) : m_(m) {
  REPRO_CHECK_MSG(m >= 2, "override triangle needs a sequence of length >= 2");
  row_offset_.resize(static_cast<std::size_t>(m_));
  std::size_t off = 0;
  for (int i = 0; i < m_; ++i) {
    row_offset_[static_cast<std::size_t>(i)] = off;
    const int row_len = m_ - 1 - i;  // number of valid j for this i
    off += static_cast<std::size_t>((row_len + 63) / 64);
  }
  words_ = off;
  bits_ = std::make_unique<std::atomic<std::uint64_t>[]>(words_);
  for (std::size_t w = 0; w < words_; ++w)
    bits_[w].store(0, std::memory_order_relaxed);
  row_dirty_ = std::vector<std::atomic<bool>>(static_cast<std::size_t>(m_));
  for (auto& d : row_dirty_) d.store(false, std::memory_order_relaxed);
}

void OverrideTriangle::set(int i, int j) {
  REPRO_CHECK(0 <= i && i < j && j < m_);
  const std::int64_t b = j - i - 1;
  std::atomic<std::uint64_t>& word = row_ptr(i)[b >> 6];
  const std::uint64_t mask = std::uint64_t{1} << (b & 63);
  const std::uint64_t old = word.fetch_or(mask, std::memory_order_relaxed);
  if ((old & mask) == 0) count_.fetch_add(1, std::memory_order_relaxed);
  row_dirty_[static_cast<std::size_t>(i)].store(true, std::memory_order_relaxed);
  // Monotone growth (§3): a set bit is visible immediately and is never
  // cleared by set(); the whole checkpoint-resume layer leans on this.
  REPRO_DCHECK(contains(i, j));
  REPRO_DCHECK(!row_empty(i));
}

void OverrideTriangle::clear() {
  for (std::size_t w = 0; w < words_; ++w)
    bits_[w].store(0, std::memory_order_relaxed);
  for (auto& d : row_dirty_) d.store(false, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

}  // namespace repro::align
