// The override triangle (paper §3).
//
// A bit per global residue pair (i, j), i < j. When a top alignment is
// accepted, the pairs on its traceback path are set; subsequent realignments
// force the corresponding matrix entries — in *every* rectangle containing
// the pair — to zero.
//
// Concurrency: the shared-memory scheduler (§4.2) lets speculative
// realignments overlap an acceptance that is growing the triangle. Bits are
// therefore stored in atomic words (relaxed; a plain load/store on x86).
// A reader racing a grow may observe a mix of old/new bits; the finder
// labels every alignment with the triangle *version* read before the kernel
// starts, and results labelled with a stale version are never accepted, so
// mixed observations cannot leak into accepted alignments.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace repro::align {

class OverrideTriangle {
 public:
  /// Triangle over a sequence of length m (pairs 0 <= i < j < m).
  explicit OverrideTriangle(int m);

  [[nodiscard]] int sequence_length() const { return m_; }

  /// Number of pairs currently overridden.
  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool contains(int i, int j) const {
    REPRO_DCHECK(0 <= i && i < j && j < m_);
    const std::int64_t b = j - i - 1;
    return (row_ptr(i)[b >> 6].load(std::memory_order_relaxed) >> (b & 63)) & 1;
  }

  /// Marks pair (i, j); idempotent.
  void set(int i, int j);

  void clear();

  /// Kernel-level access: word array of row i; bit b corresponds to j = i+1+b.
  [[nodiscard]] const std::atomic<std::uint64_t>* row_bits(int i) const {
    return row_ptr(i);
  }

  /// True when row i has no overridden pairs at all (lets kernels skip the
  /// per-cell test on untouched rows — the triangle is sparse).
  [[nodiscard]] bool row_empty(int i) const {
    return !row_dirty_[static_cast<std::size_t>(i)];
  }

 private:
  [[nodiscard]] const std::atomic<std::uint64_t>* row_ptr(int i) const {
    return bits_.get() + row_offset_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::atomic<std::uint64_t>* row_ptr(int i) {
    return bits_.get() + row_offset_[static_cast<std::size_t>(i)];
  }

  int m_;
  std::atomic<std::int64_t> count_ = 0;
  // Each row i is word-aligned: ceil((m-1-i)/64) words. Word alignment keeps
  // the hot contains() test a single shift+mask.
  std::vector<std::size_t> row_offset_;
  std::size_t words_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> bits_;
  std::vector<std::atomic<bool>> row_dirty_;
};

}  // namespace repro::align
