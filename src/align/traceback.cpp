#include "align/traceback.hpp"

#include <algorithm>
#include <vector>

#include "align/engine_detail.hpp"
#include "align/override_triangle.hpp"
#include "util/check.hpp"

namespace repro::align {
namespace {

template <typename T>
BestEnd find_best_end_impl(std::span<const Score> row, std::span<const T> original) {
  if (!original.empty())
    REPRO_CHECK_MSG(original.size() == row.size(),
                    "original bottom row size mismatch");
  BestEnd best;
  for (std::size_t x = 0; x < row.size(); ++x) {
    if (!original.empty() && row[x] != original[x]) continue;  // shadow
    if (best.end_x == 0 || row[x] > best.score) {
      best.score = row[x];
      best.end_x = static_cast<int>(x) + 1;
    }
  }
  return best;
}

template <typename T>
Traceback traceback_best_impl(const GroupJob& job, std::span<const T> original) {
  REPRO_CHECK(job.count == 1);
  const auto& seq = job.seq;
  const int m = static_cast<int>(seq.size());
  const int r = job.r0;
  const int rows = r;
  const int cols = m - r;
  const seq::ScoreMatrix& ex = job.scoring->matrix;
  const Score open = job.scoring->gap.open;
  const Score ext = job.scoring->gap.extend;

  // Full matrix, (rows+1) x (cols+1), boundary row/column zero.
  const std::size_t w = static_cast<std::size_t>(cols) + 1;
  std::vector<Score> mat((static_cast<std::size_t>(rows) + 1) * w, 0);
  auto at = [&](int y, int x) -> Score& {
    return mat[static_cast<std::size_t>(y) * w + static_cast<std::size_t>(x)];
  };

  std::vector<Score> max_y(w, kNegInf);
  for (int y = 1; y <= rows; ++y) {
    const int i = y - 1;
    const std::int16_t* erow = ex.row(seq[static_cast<std::size_t>(i)]);
    const std::atomic<std::uint64_t>* obits =
        (job.overrides != nullptr && !job.overrides->row_empty(i))
            ? job.overrides->row_bits(i)
            : nullptr;
    Score max_x = kNegInf;
    for (int x = 1; x <= cols; ++x) {
      const int j = r + x - 1;
      const Score diag = at(y - 1, x - 1);
      const Score inner = std::max({max_x, max_y[static_cast<std::size_t>(x)], diag});
      Score h = std::max(Score{0}, erow[seq[static_cast<std::size_t>(j)]] + inner);
      if (obits != nullptr && detail::override_bit(obits, i, j)) h = 0;
      at(y, x) = h;
      max_x = std::max(diag - open, max_x) - ext;
      max_y[static_cast<std::size_t>(x)] =
          std::max(diag - open, max_y[static_cast<std::size_t>(x)]) - ext;
    }
  }

  const std::span<const Score> bottom(&at(rows, 1), static_cast<std::size_t>(cols));
  const BestEnd end = find_best_end_impl<T>(bottom, original);
  REPRO_CHECK_MSG(end.end_x != 0 && end.score > 0,
                  "traceback requested with no positive valid end cell (r="
                      << r << ")");

  Traceback tb;
  tb.r = r;
  tb.score = end.score;
  tb.end_x = end.end_x;

  // Walk back. Every cell on the path aligns one pair; the predecessor is
  // found by re-deriving which inner-max candidate produced the value.
  int y = rows;
  int x = end.end_x;
  while (true) {
    const Score h = at(y, x);
    REPRO_DCHECK(h > 0);
    const int i = y - 1;
    const int j = r + x - 1;
    tb.pairs.emplace_back(i, j);
    const Score e = ex.score(seq[static_cast<std::size_t>(i)],
                             seq[static_cast<std::size_t>(j)]);
    const Score inner = h - e;
    int py = -1;
    int px = -1;
    if (at(y - 1, x - 1) == inner) {
      py = y - 1;
      px = x - 1;
    } else {
      // Shortest-gap preference, horizontal before vertical.
      for (int g = 1; g <= x - 2 && py < 0; ++g)
        if (at(y - 1, x - 1 - g) - open - g * ext == inner) {
          py = y - 1;
          px = x - 1 - g;
        }
      for (int g = 1; g <= y - 2 && py < 0; ++g)
        if (at(y - 1 - g, x - 1) - open - g * ext == inner) {
          py = y - 1 - g;
          px = x - 1;
        }
    }
    REPRO_CHECK_MSG(py >= 0, "traceback failed to find a predecessor at ("
                                 << y << "," << x << ")");
    if (at(py, px) == 0) break;  // local alignment starts here
    y = py;
    x = px;
  }

  std::reverse(tb.pairs.begin(), tb.pairs.end());
  return tb;
}

}  // namespace

BestEnd find_best_end(std::span<const Score> row,
                      std::span<const std::int16_t> original) {
  return find_best_end_impl<std::int16_t>(row, original);
}

BestEnd find_best_end(std::span<const Score> row,
                      std::span<const Score> original) {
  return find_best_end_impl<Score>(row, original);
}

Traceback traceback_best(const GroupJob& job,
                         std::span<const std::int16_t> original) {
  return traceback_best_impl<std::int16_t>(job, original);
}

Traceback traceback_best(const GroupJob& job, std::span<const Score> original) {
  return traceback_best_impl<Score>(job, original);
}

BestEnd find_best_end(std::span<const Score> row) {
  return find_best_end_impl<Score>(row, {});
}

Traceback traceback_best(const GroupJob& job) {
  return traceback_best_impl<Score>(job, {});
}

}  // namespace repro::align
