// Checkpoint-resume realignment cache.
//
// The override triangle only ever grows, so when a rectangle is realigned
// every DP row above the topmost newly-overridden pair is bit-identical to
// the previous sweep. Kernels therefore emit their interleaved (H, MaxY) row
// state on a coarse grid (CheckpointSink), this cache keeps those rows per
// group under a global byte budget, and the finder resumes subsequent sweeps
// below the deepest row that is still clean — turning an O(r x n)
// realignment into O((r - i_min) x n).
//
// Validity model (all rows are 1-based DP rows of the group's rectangles):
//   * A checkpoint taken by an *overridden* sweep reflects the triangle at
//     the time of the sweep. Row y depends only on override bits of pairs
//     (i, j) with i <= y-1 and j >= r0; invalidate() drops rows >= the
//     accepted alignment's min dirty row, so surviving overridden rows are
//     always current.
//   * A checkpoint taken by a *plain* (empty-triangle) sweep is permanently
//     valid for plain sweeps, and valid for overridden sweeps up to the
//     group's global clean limit (no accepted pair intersects rows above
//     it). find() takes that limit from the caller.
//
// The cache is single-threaded by contract (like engines); parallel workers
// each own a partition of the byte budget.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "align/types.hpp"

namespace repro::align {

/// Sorted index over one accepted alignment's (i, j) pair list, answering
/// "what is the smallest dirty DP row of the rectangle group at split r0?"
/// in O(log pairs). Shared by checkpoint invalidation and the low-memory
/// untouched-lane skip.
class PairDirtyIndex {
 public:
  static constexpr int kNoDirtyRow = std::numeric_limits<int>::max();

  PairDirtyIndex() = default;
  explicit PairDirtyIndex(std::span<const std::pair<int, int>> pairs);

  /// Smallest dirty DP row for rectangles with columns j >= r0: the minimum
  /// i+1 over pairs with j >= r0, or kNoDirtyRow when no pair reaches the
  /// group's columns. Rows y < min_dirty_row(r0) are unaffected by these
  /// pairs; lane r is untouched entirely iff min_dirty_row(r) > r.
  [[nodiscard]] int min_dirty_row(int r0) const;

  [[nodiscard]] bool empty() const { return j_.empty(); }

 private:
  std::vector<int> j_;             ///< ascending
  std::vector<int> suffix_min_i_;  ///< min i over pairs with index >= t
};

struct CheckpointCacheStats {
  std::uint64_t hits = 0;       ///< find() returned a usable checkpoint
  std::uint64_t misses = 0;     ///< find() had nothing usable
  std::uint64_t evictions = 0;  ///< group entries dropped by the byte budget
  std::uint64_t invalidated_rows = 0;  ///< rows dropped by triangle growth
};

class CheckpointCache {
 public:
  static constexpr std::size_t kDefaultBudget = std::size_t{256} << 20;

  explicit CheckpointCache(std::size_t byte_budget) : budget_(byte_budget) {}

  /// Deepest usable checkpoint for a sweep of the group at r0, or nullopt.
  /// Plain sweeps consult only plain entries (always valid); overridden
  /// sweeps take the deeper of the overridden entry (kept current by
  /// invalidate()) and plain rows with row <= `plain_valid_limit` (the
  /// caller's global clean limit for this group).
  /// The view stays valid until the next store/invalidate call.
  [[nodiscard]] std::optional<CheckpointView> find(int r0, bool plain_sweep,
                                                   int plain_valid_limit);

  /// Merges a sweep's staged rows into the (r0, plain_class) entry —
  /// replacing same-row buffers by swap, so warm stores recycle storage —
  /// sets the entry's eviction priority to the group's current best score,
  /// and evicts lowest-priority entries while over budget. Consumes the
  /// sink's live prefix.
  void store(int r0, bool plain_class, Score priority, CheckpointSink& sink);

  /// Applies one accepted alignment: every overridden entry drops its rows
  /// >= the alignment's min dirty row for that group. Plain entries are
  /// untouched (their validity is clamped at find() time instead).
  void invalidate(const PairDirtyIndex& dirty);

  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] std::size_t budget() const { return budget_; }
  [[nodiscard]] const CheckpointCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    Score priority = 0;
    int lanes = 0;
    int elem_size = 0;
    std::size_t bytes = 0;
    std::vector<CheckpointRow> rows;  ///< ascending by row
  };
  using Key = std::pair<int, bool>;  ///< (r0, plain_class)

  void evict_over_budget(const Key& keep_last);

  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::map<Key, Entry> entries_;
  CheckpointCacheStats stats_;
};

}  // namespace repro::align
