// Score-only alignment engines.
//
// Engines compute the bottom rows of one *group* of neighbouring rectangles
// (paper §4.1: SIMD engines process 4/8/16 consecutive splits in one
// interleaved sweep; scalar engines process one). The finder layers —
// sequential, shared-memory, distributed — are all written against this
// interface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "align/types.hpp"

namespace repro::align {

/// Element precision a kernel computes in. Saturating precisions (i8, i16)
/// clamp at their ceiling and detect the clamp per sweep; i32 is effectively
/// unbounded for realistic inputs. Adaptive engines start every group at i8
/// and escalate to i16 when the saturation guard fires.
enum class Precision { kI8, kI16, kI32, kAdaptive };

/// Adaptive-precision and query-profile activity since engine construction
/// (all zero for engines without SIMD profiles). Escalated groups are swept
/// twice on their first alignment (once per precision), so
/// i8_sweeps + i16_sweeps >= alignments_performed() with equality only when
/// nothing escalated.
struct PrecisionStats {
  std::uint64_t i8_sweeps = 0;        ///< group sweeps run in u8 lanes
  std::uint64_t i16_sweeps = 0;       ///< group sweeps run in i16 lanes
  std::uint64_t escalations = 0;      ///< i8 sweeps re-run at i16 (sticky)
  std::uint64_t profile_hits = 0;     ///< sweeps served by a cached profile
  std::uint64_t profile_builds = 0;   ///< query profiles (re)built
};

class Engine {
 public:
  virtual ~Engine() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Lanes per group; the finder schedules groups of exactly this many
  /// consecutive splits (the last group of a sequence may be partial).
  [[nodiscard]] virtual int lanes() const = 0;

  /// True when do_align honours GroupJob::resume / GroupJob::sink
  /// (checkpoint-resume realignment). Engines that ignore those fields are
  /// still correct — they always sweep from row 1 — but callers should not
  /// offer them resume state, and the wrapper gives them no cell discount.
  [[nodiscard]] virtual bool supports_checkpoints() const { return false; }

  /// Computes bottom rows for splits job.r0 .. job.r0+job.count-1.
  /// out[k] must have exactly m - (job.r0 + k) elements. Non-virtual: the
  /// wrapper centralizes the cell/alignment accounting (identical for every
  /// engine: lanes x rows x columns per group) and reports it to the global
  /// observability registry, so kernels never touch counters.
  void align(const GroupJob& job, std::span<const std::span<Score>> out);

  /// Convenience wrapper for single-rectangle use (tests, traceback prep).
  std::vector<Score> align_one(const GroupJob& job);

  /// Cells computed since construction (each lane-cell counts once, so SIMD
  /// engines accumulate lanes x rows x columns — the quantity behind the
  /// paper's "more than a billion matrix entries per second"). Engines are
  /// single-threaded, so these are plain integers; the obs layer's shared
  /// counters are fed once per group alignment, never per cell.
  [[nodiscard]] std::uint64_t cells_computed() const { return cells_; }

  /// Group alignments performed since construction.
  [[nodiscard]] std::uint64_t alignments_performed() const { return aligns_; }

  /// Lane-cells skipped by checkpoint resumes (rows restored instead of
  /// computed); cells_computed() already excludes them.
  [[nodiscard]] std::uint64_t cells_skipped() const { return cells_skipped_; }

  /// Adaptive-precision / query-profile counters (zeros for engines without
  /// SIMD profiles). Escalated groups are swept at both precisions, so the
  /// per-group cell accounting above slightly undercounts their first
  /// alignment; these counters make that visible.
  [[nodiscard]] virtual PrecisionStats precision_stats() const { return {}; }

  void reset_counters() {
    cells_ = 0;
    aligns_ = 0;
    cells_skipped_ = 0;
  }

 protected:
  /// Engine kernel: computes the bottom rows. Implementations validate the
  /// job themselves (validate_job) and do no accounting.
  virtual void do_align(const GroupJob& job,
                        std::span<const std::span<Score>> out) = 0;

 private:
  std::uint64_t cells_ = 0;
  std::uint64_t aligns_ = 0;
  std::uint64_t cells_skipped_ = 0;
};

enum class EngineKind {
  kScalar,         ///< Fig. 3 recurrence, row-major, O(1)/cell
  kScalarStriped,  ///< scalar + cache-aware vertical striping (§4.1)
  kGeneralGap,     ///< Eq. 1 by explicit row/column scans, O(n)/cell — the
                   ///< per-cell cost model of the old (1993) algorithm
  kSimd4,          ///< 4 x i16 lanes (paper: Pentium III SSE)
  kSimd8,          ///< 8 x i16 lanes (paper: Pentium 4 SSE2)
  kSimd16,         ///< 16 x i16 lanes (AVX2; the paper's natural successor)
  kSimd4Generic,   ///< 4 scalar lanes, no intrinsics (portable reference)
  kSimd8Generic,   ///< 8 scalar lanes, no intrinsics (portable reference)
  kSimd4x32,       ///< 4 x i32 lanes (SSE4.1) — no saturation limit
  kSimd8x32,       ///< 8 x i32 lanes (AVX2) — no saturation limit
  kSimd4x32Generic,///< 4 scalar i32 lanes (portable reference)
  kSimd16x8,       ///< 16 x u8 lanes (SSE2, biased saturating arithmetic)
  kSimd32x8,       ///< 32 x u8 lanes (AVX2, biased saturating arithmetic)
  kSimd8x8Generic, ///< 8 scalar u8 lanes (portable reference)
  kSimdAuto,       ///< adaptive u8 -> i16 on the widest ISA available
  kSimdAutoGeneric ///< adaptive u8 -> i16, portable lanes (cross-check)
};

/// Creates an engine; throws when the requested SIMD width is not supported
/// by this build/CPU. `stripe_cols` (0 = engine default, -1 = no striping)
/// controls the cache-aware striping of striped/SIMD engines.
std::unique_ptr<Engine> make_engine(EngineKind kind, int stripe_cols = 0);

/// Widest SIMD engine supported at runtime, falling back to scalar.
std::unique_ptr<Engine> make_best_engine();

/// Factory for per-thread / per-rank engines (engines are not thread-safe;
/// every parallel worker owns one).
using EngineFactory = std::function<std::unique_ptr<Engine>()>;

/// Factory producing make_engine(kind, stripe_cols) instances.
EngineFactory engine_factory(EngineKind kind, int stripe_cols = 0);

/// True when the AVX2 engine can run on this CPU and build.
bool avx2_available();

/// True when the SSE4.1 (4 x i32) engine can run on this CPU and build.
bool sse41_available();

/// True when `kind` computes in saturating i16 lanes (scores clamp at
/// INT16_MAX; the kernel throws only when saturation actually occurs).
bool engine_uses_i16(EngineKind kind);

/// Element precision `kind` computes in: kI8/kI16 for the fixed saturating
/// engines, kI32 for scalar/striped/general-gap/i32-SIMD kinds, kAdaptive
/// for the auto engines (which escalate per group at runtime).
Precision engine_precision(EngineKind kind);

/// True when a sequence of length m under `scoring` provably cannot reach
/// `precision`'s saturation certification limit: the all-match score of the
/// largest rectangle — min(r, m-r) pairs at matrix.max_score(), maximized at
/// r = m/2 — stays at or below the limit. The i16 limit is 32766 (a peak of
/// exactly 32767 is indistinguishable from a clamped add, so the kernels
/// treat it as saturated); the u8 limit is 255 - bias - max_score, with
/// bias = max(0, -matrix.min_score()) — the headroom one biased profile add
/// needs. u8 additionally requires the biased profile entries and both gap
/// penalties to fit in a byte. kI32/kAdaptive always fit.
bool precision_fits(Precision precision, int m, const seq::Scoring& scoring);

/// Upfront guard for explicit fixed-precision engine selection: throws with
/// an actionable message (naming the adaptive and 32-bit alternatives) when
/// precision_fits(engine_precision(kind), m, scoring) is false. No-op for
/// i32 and adaptive kinds, whose kernels cannot (respectively, handle their
/// own) saturation.
void check_headroom(EngineKind kind, int m, const seq::Scoring& scoring);

}  // namespace repro::align
