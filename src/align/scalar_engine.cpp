// The conventional (non-SIMD) score-only kernel: the Fig.-3 recurrence with
// running gap maxima, one row of state, O(1) work per cell.
//
// Checkpoint layout (lanes = 1, elem = Score): the h/max_y buffers hold the
// cols values for x = 1..cols at byte offset (x-1)*sizeof(Score) — exactly
// the kernel's row state minus the constant boundary column. The same layout
// is produced by the striped scalar engine (row state is striping-invariant),
// so their checkpoints are interchangeable.
#include <algorithm>
#include <cstring>
#include <vector>

#include "align/engine_detail.hpp"
#include "align/override_triangle.hpp"

namespace repro::align {
namespace {

class ScalarEngine final : public Engine {
 public:
  [[nodiscard]] std::string name() const override { return "scalar"; }
  [[nodiscard]] int lanes() const override { return 1; }
  [[nodiscard]] bool supports_checkpoints() const override { return true; }

 protected:
  void do_align(const GroupJob& job,
                std::span<const std::span<Score>> out) override {
    detail::validate_job(job, out, lanes());
    const auto& seq = job.seq;
    const int m = static_cast<int>(seq.size());
    const int r = job.r0;
    const int rows = r;       // prefix S[0..r)
    const int cols = m - r;   // suffix S[r..m)
    const seq::ScoreMatrix& ex = job.scoring->matrix;
    const Score open = job.scoring->gap.open;
    const Score ext = job.scoring->gap.extend;
    const std::size_t state_bytes =
        static_cast<std::size_t>(cols) * sizeof(Score);

    int y_begin = 1;
    if (job.resume != nullptr) {
      const CheckpointView& ck = *job.resume;
      REPRO_CHECK_MSG(ck.lanes == 1 &&
                          ck.elem_size == static_cast<int>(sizeof(Score)) &&
                          ck.bytes == state_bytes && ck.row >= 1 && ck.row < r,
                      "checkpoint state does not match the scalar kernel "
                      "(r=" << r << ")");
      h_.resize(static_cast<std::size_t>(cols) + 1);
      max_y_.resize(static_cast<std::size_t>(cols) + 1);
      h_[0] = 0;
      max_y_[0] = kNegInf;
      std::memcpy(h_.data() + 1, ck.h, state_bytes);
      std::memcpy(max_y_.data() + 1, ck.max_y, state_bytes);
      y_begin = ck.row + 1;
      if constexpr (check::kContractsEnabled) {
        // Checkpoint-resume consistency: restored H is a clamped local-
        // alignment row, so every column is nonnegative.
        for (int x = 1; x <= cols; ++x)
          REPRO_DCHECK_MSG(h_[static_cast<std::size_t>(x)] >= 0,
                           "restored checkpoint row " << ck.row
                               << " holds a negative H at column " << x);
      }
    } else {
      h_.assign(static_cast<std::size_t>(cols) + 1, 0);
      max_y_.assign(static_cast<std::size_t>(cols) + 1, kNegInf);
    }

    CheckpointSink* sink = job.sink;
    if (sink != nullptr) {
      REPRO_CHECK(sink->stride >= 1);
      sink->lanes = 1;
      sink->elem_size = static_cast<int>(sizeof(Score));
      sink->prepare(y_begin, std::min(sink->top_row, r - 1), state_bytes);
    }
    int emit_idx = 0;

    for (int y = y_begin; y <= rows; ++y) {
      const int i = y - 1;  // global prefix position
      const std::int16_t* erow = ex.row(seq[static_cast<std::size_t>(i)]);
      const std::atomic<std::uint64_t>* obits =
          (job.overrides != nullptr && !job.overrides->row_empty(i))
              ? job.overrides->row_bits(i)
              : nullptr;
      Score diag = 0;  // M[y-1][x-1]; boundary column is all zeros
      Score max_x = kNegInf;
      for (int x = 1; x <= cols; ++x) {
        const int j = r + x - 1;  // global suffix position
        const Score up = h_[static_cast<std::size_t>(x)];
        const Score old_my = max_y_[static_cast<std::size_t>(x)];
        const Score inner = std::max({max_x, old_my, diag});
        Score h = std::max(
            Score{0}, erow[seq[static_cast<std::size_t>(j)]] + inner);
        if (obits != nullptr && detail::override_bit(obits, i, j)) h = 0;
        h_[static_cast<std::size_t>(x)] = h;
        const Score next_mx = std::max(diag - open, max_x) - ext;
        const Score next_my = std::max(diag - open, old_my) - ext;
        if constexpr (check::kContractsEnabled) {
          // Kernel cell contracts: local-alignment H never goes negative,
          // and the running gap maxima decay at most `extend` per step
          // (anything faster would lose reachable gap continuations).
          REPRO_DCHECK_MSG(h >= 0, "negative H at (y=" << y << ", x=" << x
                                                       << "), r=" << r);
          REPRO_DCHECK(next_mx + ext >= max_x);
          REPRO_DCHECK(next_my + ext >= old_my);
        }
        max_x = next_mx;
        max_y_[static_cast<std::size_t>(x)] = next_my;
        diag = up;
      }
      if (sink != nullptr && emit_idx < sink->count &&
          y == sink->rows[static_cast<std::size_t>(emit_idx)].row) {
        CheckpointRow& cr = sink->rows[static_cast<std::size_t>(emit_idx)];
        std::memcpy(cr.h.data(), h_.data() + 1, state_bytes);
        std::memcpy(cr.max_y.data(), max_y_.data() + 1, state_bytes);
        ++emit_idx;
      }
    }

    std::copy(h_.begin() + 1, h_.begin() + 1 + cols, out[0].begin());
  }

 private:
  std::vector<Score> h_;
  std::vector<Score> max_y_;
};

}  // namespace

namespace detail {
std::unique_ptr<Engine> make_scalar_engine() {
  return std::make_unique<ScalarEngine>();
}
}  // namespace detail

}  // namespace repro::align
