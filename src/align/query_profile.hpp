// Cached per-residue score profiles (Farrar-style query profiles).
//
// The inner SIMD loop scores column j of row i via the exchange matrix:
// `ex.row(seq[i])[seq[j]]`. That double lookup is rebuilt implicitly on
// every sweep. A query profile flattens it once per (sequence, scoring)
// pair into `profile[a][j] = score(a, seq[j]) + bias`, so a sweep does one
// indexed load per cell and — for the unsigned u8 kernels — the bias is
// already folded in. Profiles persist inside the engine across realignment
// rounds, checkpoint resumes, and ParallelFinder worker partitions (each
// worker's engine sees the same sequence every sweep, so after the first
// build every later sweep is a profile hit).
//
// For unsigned Elem the bias is max(0, -min_score()): every biased entry is
// then in [0, bias + max_score], which must fit the element type for the
// profile to be feasible. Signed profiles use bias 0 and are always
// feasible (matrix entries are i16).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

#include "align/engine.hpp"
#include "seq/scoring.hpp"
#include "util/aligned.hpp"

namespace repro::align {

template <typename Elem>
class QueryProfileT {
 public:
  /// Makes the profile current for (seq, scoring): a content match (sequence
  /// bytes, matrix entries, gap penalties — compared by value, never by
  /// address, so a recreated Scoring at a recycled address cannot alias a
  /// stale profile) counts a hit and returns false; anything else rebuilds,
  /// counts a build, and returns true. Callers use the rebuild signal to
  /// drop state derived from the old workload (e.g. sticky escalation sets).
  bool ensure(std::span<const std::uint8_t> seq, const seq::Scoring& scoring,
              PrecisionStats& stats) {
    if (matches(seq, scoring)) {
      ++stats.profile_hits;
      return false;
    }
    ++stats.profile_builds;
    seq_copy_.assign(seq.begin(), seq.end());
    const seq::ScoreMatrix& mat = scoring.matrix;
    n_ = mat.size();
    width_ = static_cast<int>(seq.size());
    matrix_copy_.assign(mat.row(0),
                        mat.row(0) + static_cast<std::size_t>(n_) * n_);
    gap_open_ = scoring.gap.open;
    gap_extend_ = scoring.gap.extend;
    max_score_ = mat.max_score();
    if constexpr (std::is_signed_v<Elem>) {
      bias_ = 0;
      feasible_ = true;
    } else {
      bias_ = std::max(0, -mat.min_score());
      feasible_ = bias_ + max_score_ <= std::numeric_limits<Elem>::max() &&
                  gap_open_ <= std::numeric_limits<Elem>::max() &&
                  gap_extend_ <= std::numeric_limits<Elem>::max();
    }
    if (!feasible_) {
      data_.clear();
      return true;
    }
    data_.resize(static_cast<std::size_t>(n_) * width_);
    for (int a = 0; a < n_; ++a) {
      const std::int16_t* row = mat.row(static_cast<std::uint8_t>(a));
      Elem* out = data_.data() + static_cast<std::size_t>(a) * width_;
      for (int j = 0; j < width_; ++j)
        out[j] = static_cast<Elem>(row[seq_copy_[static_cast<std::size_t>(j)]] +
                                   bias_);
    }
    return true;
  }

  /// False when the biased entries (or the gap penalties a kernel casts to
  /// Elem) cannot fit — possible only for unsigned Elem. Kernels must not be
  /// handed an infeasible profile.
  [[nodiscard]] bool feasible() const { return feasible_; }

  /// Bias folded into every entry (0 for signed Elem).
  [[nodiscard]] int bias() const { return bias_; }

  /// Largest raw matrix entry; with bias(), bounds one profile add.
  [[nodiscard]] int max_score() const { return max_score_; }

  /// Profile row for residue code `a`: width() biased entries, entry j
  /// scoring `a` against sequence position j.
  [[nodiscard]] const Elem* row(std::uint8_t a) const {
    return data_.data() + static_cast<std::size_t>(a) * width_;
  }

  /// Columns per row (= sequence length the profile was built for).
  [[nodiscard]] int width() const { return width_; }

 private:
  [[nodiscard]] bool matches(std::span<const std::uint8_t> seq,
                             const seq::Scoring& scoring) const {
    if (width_ != static_cast<int>(seq.size()) ||
        n_ != scoring.matrix.size() || gap_open_ != scoring.gap.open ||
        gap_extend_ != scoring.gap.extend)
      return false;
    if (!seq_copy_.empty() &&
        std::memcmp(seq_copy_.data(), seq.data(), seq_copy_.size()) != 0)
      return false;
    return std::memcmp(matrix_copy_.data(), scoring.matrix.row(0),
                       matrix_copy_.size() * sizeof(std::int16_t)) == 0;
  }

  std::vector<std::uint8_t> seq_copy_;
  std::vector<std::int16_t> matrix_copy_;
  int gap_open_ = -1;
  int gap_extend_ = -1;
  int n_ = 0;
  int width_ = -1;
  int bias_ = 0;
  int max_score_ = 0;
  bool feasible_ = false;
  std::vector<Elem, util::AlignedAllocator<Elem>> data_;
};

}  // namespace repro::align
