#include "obs/report.hpp"

#include <fstream>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace repro::obs {

void MetricsReport::param(std::string_view key, std::string_view value) {
  params_.emplace_back(std::string(key), Value(std::string(value)));
}

void MetricsReport::param(std::string_view key, std::int64_t value) {
  params_.emplace_back(std::string(key), Value(value));
}

void MetricsReport::param(std::string_view key, double value) {
  params_.emplace_back(std::string(key), Value(value));
}

void MetricsReport::param(std::string_view key, bool value) {
  params_.emplace_back(std::string(key), Value(value));
}

void MetricsReport::metric(std::string_view key, double value) {
  metrics_.emplace_back(std::string(key), value);
}

void MetricsReport::counter(std::string_view key, std::uint64_t value) {
  counters_.emplace_back(std::string(key), value);
}

void MetricsReport::include_registry(const Registry& registry) {
  registry_ = &registry;
}

std::string MetricsReport::to_json() const {
  util::JsonWriter json;
  json.begin_object();
  json.kv("schema", "repro-metrics-v1");
  json.kv("name", name_);
  json.key("params");
  json.begin_object();
  for (const auto& [key, value] : params_) {
    json.key(key);
    std::visit([&json](const auto& v) { json.value(v); }, value);
  }
  json.end_object();
  json.key("metrics");
  json.begin_object();
  for (const auto& [key, value] : metrics_) json.kv(key, value);
  json.end_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [key, value] : counters_) json.kv(key, value);
  json.end_object();
  if (registry_ != nullptr) {
    json.key("registry");
    registry_->write_json(json);
  }
  json.end_object();
  return json.str();
}

void MetricsReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  REPRO_CHECK_MSG(out.good(), "cannot open metrics JSON file " << path);
  out << to_json() << '\n';
  REPRO_CHECK_MSG(out.good(), "write to metrics JSON file " << path
                                                            << " failed");
}

}  // namespace repro::obs
