// Machine-readable perf records (the BENCH_*.json / --metrics-json format).
//
// A MetricsReport is one self-describing JSON document:
//
//   {
//     "schema": "repro-metrics-v1",
//     "name": "<bench or tool name>",
//     "params": { ... },       // run configuration (m, tops, engine, ...)
//     "metrics": { ... },      // derived numbers (percentages, rates)
//     "counters": { ... },     // explicit monotonic counts for this run
//     "registry": { ... }      // optional obs::Registry snapshot
//   }
//
// Benches write one per invocation via --json <path>; reprofind writes one
// per `find` run via --metrics-json <path>. The schema is documented in
// README.md ("Metrics JSON") and EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace repro::obs {

class Registry;

class MetricsReport {
 public:
  explicit MetricsReport(std::string name) : name_(std::move(name)) {}

  /// Run configuration (appears under "params").
  void param(std::string_view key, std::string_view value);
  void param(std::string_view key, const char* value) {
    param(key, std::string_view(value));
  }
  void param(std::string_view key, std::int64_t value);
  void param(std::string_view key, int value) {
    param(key, static_cast<std::int64_t>(value));
  }
  void param(std::string_view key, double value);
  void param(std::string_view key, bool value);

  /// Derived numbers (appears under "metrics").
  void metric(std::string_view key, double value);

  /// Monotonic counts for this run (appears under "counters").
  void counter(std::string_view key, std::uint64_t value);

  /// Embeds a snapshot of `registry` under "registry".
  void include_registry(const Registry& registry);

  /// The finished document as a JSON string.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() + '\n' to `path`; throws on I/O failure.
  void write_file(const std::string& path) const;

 private:
  using Value = std::variant<std::string, std::int64_t, double, bool>;

  std::string name_;
  std::vector<std::pair<std::string, Value>> params_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  const Registry* registry_ = nullptr;
};

}  // namespace repro::obs
