#include "obs/metrics.hpp"

#include "util/json.hpp"

namespace repro::obs {

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

TimeAccum& Registry::timer(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = timers_.find(name);
  if (it != timers_.end()) return *it->second;
  return *timers_.emplace(std::string(name), std::make_unique<TimeAccum>())
              .first->second;
}

void Registry::set_gauge(std::string_view name, double value) {
  if constexpr (!kEnabled) return;
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void Registry::record_span(std::string_view name, double start_sec,
                           double duration_sec) {
  if constexpr (!kEnabled) return;
  std::lock_guard lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(Span{std::string(name), start_sec, duration_sec});
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_)
    snap.counters.emplace(name, counter->value());
  for (const auto& [name, timer] : timers_)
    snap.timers_sec.emplace(name, timer->seconds());
  snap.gauges = gauges_;
  snap.spans = spans_;
  snap.spans_dropped = spans_dropped_;
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, timer] : timers_) timer->reset();
  gauges_.clear();
  spans_.clear();
  spans_dropped_ = 0;
  epoch_.reset();
}

void Registry::write_json(util::JsonWriter& json) const {
  const Snapshot snap = snapshot();
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : snap.counters) json.kv(name, value);
  json.end_object();
  json.key("timers_sec");
  json.begin_object();
  for (const auto& [name, value] : snap.timers_sec) json.kv(name, value);
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : snap.gauges) json.kv(name, value);
  json.end_object();
  json.key("spans");
  json.begin_array();
  for (const auto& span : snap.spans) {
    json.begin_object();
    json.kv("name", span.name);
    json.kv("start_sec", span.start_sec);
    json.kv("duration_sec", span.duration_sec);
    json.end_object();
  }
  json.end_array();
  json.kv("spans_dropped", snap.spans_dropped);
  json.end_object();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace repro::obs
