// Low-overhead observability: monotonic counters, accumulating timers, and
// lightweight trace spans, collected in a registry that snapshots to the
// util/json writer.
//
// The paper's headline claims are quantitative (90–97 % of realignments
// skipped, < 0.70 % speculative over-alignment, > 1 G cells/s, 96.1 %
// cluster efficiency); this layer is how the finder, scheduler and cluster
// layers expose those numbers programmatically instead of only printing
// tables.
//
// Cost model:
//   * Compile-time toggle REPRO_OBS_ENABLED (CMake option REPRO_OBS,
//     default ON). With the toggle off every mutation — Counter::add,
//     TimeAccum::add, ScopedSpan — compiles to nothing: no atomic, no
//     branch, no data member. Hot paths are therefore instrumented
//     unconditionally.
//   * Registry slots are shared between threads, so they use relaxed
//     atomics. Per-thread state (e.g. an Engine's own cell count) stays a
//     plain integer and is published to the registry once per group
//     alignment or per run, never per matrix cell.
//   * Call sites on hot paths fetch their Counter& once (the lookup takes a
//     mutex) and then only do relaxed adds.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.hpp"

#ifndef REPRO_OBS_ENABLED
#define REPRO_OBS_ENABLED 1
#endif

namespace repro::util {
class JsonWriter;
}

namespace repro::obs {

/// True when the instrumented build is active (REPRO_OBS=ON, the default).
inline constexpr bool kEnabled = REPRO_OBS_ENABLED != 0;

/// Monotonic counter slot. Thread-shared (registry-owned) — relaxed atomic.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
#if REPRO_OBS_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
#if REPRO_OBS_ENABLED
    return value_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  void reset() noexcept {
#if REPRO_OBS_ENABLED
    value_.store(0, std::memory_order_relaxed);
#endif
  }

 private:
#if REPRO_OBS_ENABLED
  std::atomic<std::uint64_t> value_{0};
#endif
};

/// Accumulated wall time in integer nanoseconds (atomic doubles need CAS
/// loops; integer nanos keep the add a single relaxed fetch_add).
class TimeAccum {
 public:
  void add_seconds(double s) noexcept {
#if REPRO_OBS_ENABLED
    nanos_.fetch_add(static_cast<std::uint64_t>(s * 1e9),
                     std::memory_order_relaxed);
#else
    (void)s;
#endif
  }

  [[nodiscard]] double seconds() const noexcept {
#if REPRO_OBS_ENABLED
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
#else
    return 0.0;
#endif
  }

  void reset() noexcept {
#if REPRO_OBS_ENABLED
    nanos_.store(0, std::memory_order_relaxed);
#endif
  }

 private:
#if REPRO_OBS_ENABLED
  std::atomic<std::uint64_t> nanos_{0};
#endif
};

/// RAII scope that adds its elapsed wall time to a TimeAccum.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccum& target) noexcept
#if REPRO_OBS_ENABLED
      : target_(&target) {
  }
  ~ScopedTimer() { target_->add_seconds(timer_.seconds()); }
#else
  {
    (void)target;
  }
  ~ScopedTimer() = default;
#endif

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
#if REPRO_OBS_ENABLED
  TimeAccum* target_;
  util::WallTimer timer_;
#endif
};

/// One completed trace span. Times are seconds since the registry's epoch
/// (its construction or last reset), so spans from different threads share
/// one timeline.
struct Span {
  std::string name;
  double start_sec = 0.0;
  double duration_sec = 0.0;
};

/// Named counters, timers, gauges, and a bounded span log. All methods are
/// thread-safe. Slot references returned by counter()/timer() stay valid for
/// the registry's lifetime (reset() zeroes values, it never removes slots).
class Registry {
 public:
  /// The span log keeps at most this many spans; later spans are dropped
  /// and counted in Snapshot::spans_dropped.
  static constexpr std::size_t kMaxSpans = 4096;

  /// Finds or creates the named counter.
  Counter& counter(std::string_view name);

  /// Finds or creates the named timer.
  TimeAccum& timer(std::string_view name);

  /// Sets a named gauge (last write wins; derived values like percentages).
  void set_gauge(std::string_view name, double value);

  /// Appends a completed span (start relative to the registry epoch).
  void record_span(std::string_view name, double start_sec, double duration_sec);

  /// Seconds since the registry epoch — span timestamps use this clock.
  [[nodiscard]] double now() const { return epoch_.seconds(); }

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> timers_sec;
    std::map<std::string, double, std::less<>> gauges;
    std::vector<Span> spans;
    std::uint64_t spans_dropped = 0;
  };

  /// Consistent point-in-time copy of every slot.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes all counters and timers, clears gauges and spans, and restarts
  /// the span epoch. Slot references remain valid.
  void reset();

  /// Writes snapshot() as one JSON object:
  ///   {"counters":{...},"timers_sec":{...},"gauges":{...},
  ///    "spans":[{"name":...,"start_sec":...,"duration_sec":...}],
  ///    "spans_dropped":N}
  void write_json(util::JsonWriter& json) const;

  /// The process-wide registry all built-in instrumentation reports to.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<TimeAccum>, std::less<>> timers_;
  std::map<std::string, double, std::less<>> gauges_;
  std::vector<Span> spans_;
  std::uint64_t spans_dropped_ = 0;
  util::WallTimer epoch_;
};

/// RAII trace span recording into a registry on destruction.
class ScopedSpan {
 public:
  ScopedSpan(Registry& registry, std::string_view name)
#if REPRO_OBS_ENABLED
      : registry_(&registry), name_(name), start_(registry.now()) {
  }
  ~ScopedSpan() {
    registry_->record_span(name_, start_, registry_->now() - start_);
  }
#else
  {
    (void)registry;
    (void)name;
  }
  ~ScopedSpan() = default;
#endif

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
#if REPRO_OBS_ENABLED
  Registry* registry_;
  std::string name_;
  double start_;
#endif
};

}  // namespace repro::obs
