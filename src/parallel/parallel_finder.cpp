#include "parallel/parallel_finder.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "align/bottom_row_store.hpp"
#include "align/checkpoint_cache.hpp"
#include "align/override_triangle.hpp"
#include "align/traceback.hpp"
#include "core/task_queue.hpp"
#include "core/top_alignment_finder.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace repro::parallel {
namespace {

using core::GroupTask;
using core::TaskKey;

struct InflightCmp {
  bool operator()(const TaskKey& a, const TaskKey& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.r < b.r;
  }
};

/// Per-worker checkpoint state. Each worker owns a private cache partition
/// (checkpoint_mem / threads) and touches it only from its own thread;
/// invalidations are replayed from the shared dirty list under the run lock
/// before every lookup (`synced` is the replay cursor). The sink and output
/// spans are hoisted here so steady-state realignments allocate nothing.
struct WorkerCkpt {
  std::optional<align::CheckpointCache> cache;
  align::CheckpointSink sink;
  align::CheckpointView view;
  std::vector<std::span<align::Score>> outs;
  int synced = 0;  ///< shared dirty entries already applied to `cache`
};

/// All state shared between worker threads; one mutex guards everything
/// except the override triangle (atomic bits, see OverrideTriangle) and the
/// bottom-row store (first alignments write disjoint rows).
class SharedRun {
 public:
  SharedRun(const seq::Sequence& s, const seq::Scoring& scoring,
            const ParallelOptions& options, int lanes)
      : s_(s),
        scoring_(scoring),
        options_(options),
        triangle_(s.length()),
        rows_(s.length()),
        groups_(core::make_groups(s.length(), lanes)) {
    REPRO_CHECK(options.threads >= 1);
    REPRO_CHECK(options.finder.min_score >= 1);
    REPRO_CHECK_MSG(options.finder.memory == core::MemoryMode::kArchiveRows,
                    "the shared-memory finder archives bottom rows (the "
                    "store is shared); use the sequential finder for "
                    "MemoryMode::kRecomputeRows");
    REPRO_CHECK_MSG(
        options.finder.traceback == core::TracebackMode::kFullMatrix,
        "the shared-memory finder uses the full-matrix traceback; use the "
        "sequential finder for TracebackMode::kLinearSpace");
    for (std::size_t gi = 0; gi < groups_.size(); ++gi)
      queue_.push(static_cast<int>(gi), groups_[gi].key());
  }

  void worker(align::Engine& engine, int thread_index) {
    double idle = 0.0;
    WorkerCkpt ck;
    if (options_.finder.checkpoint_mem > 0 && engine.supports_checkpoints()) {
      const std::size_t budget = std::max<std::size_t>(
          1, options_.finder.checkpoint_mem /
                 static_cast<std::size_t>(options_.threads));
      ck.cache.emplace(budget);
    }
    try {
      worker_impl(engine, ck, idle);
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!error_) error_ = std::current_exception();
      done_ = true;
      cv_.notify_all();
    }
    if constexpr (obs::kEnabled) {
      auto& reg = obs::Registry::global();
      reg.timer("parallel.idle_wait_sec").add_seconds(idle);
      reg.timer("parallel.idle_wait_sec.t" + std::to_string(thread_index))
          .add_seconds(idle);
    }
    std::lock_guard lock(mutex_);
    stats_.idle_seconds += idle;
    if (ck.cache) {
      const align::CheckpointCacheStats& cs = ck.cache->stats();
      stats_.ckpt_hits += cs.hits;
      stats_.ckpt_misses += cs.misses;
      stats_.ckpt_evictions += cs.evictions;
    }
  }

  core::FinderResult finish(double seconds, std::uint64_t cells,
                            const align::PrecisionStats& prec) {
    if (error_) std::rethrow_exception(error_);
    stats_.seconds = seconds;
    stats_.cells = cells;
    stats_.i8_sweeps = prec.i8_sweeps;
    stats_.i16_sweeps = prec.i16_sweeps;
    stats_.precision_escalations = prec.escalations;
    stats_.profile_hits = prec.profile_hits;
    if constexpr (obs::kEnabled) {
      auto& reg = obs::Registry::global();
      reg.counter("parallel.queue.pushes").add(queue_.pushes());
      reg.counter("parallel.queue.pops").add(queue_.pops());
      reg.counter("parallel.queue.stale_skips").add(queue_.stale_skips());
      reg.counter("parallel.threads").add(
          static_cast<std::uint64_t>(options_.threads));
    }
    core::publish_finder_stats(stats_, s_.length(), "parallel.");
    core::FinderResult res;
    res.tops = std::move(tops_);
    res.stats = stats_;
    return res;
  }

 private:
  int version() const { return static_cast<int>(tops_.size()); }

  bool group_stale(int gi) const {
    const GroupTask& g = groups_[static_cast<std::size_t>(gi)];
    return g.version[static_cast<std::size_t>(g.best_member())] != version();
  }

  int ckpt_stride(int rows) const {
    const int c = std::max(1, options_.finder.checkpoints_per_sweep);
    return std::max(1, (rows + c - 1) / c);
  }

  /// Deepest plain-checkpoint row still clean for the group at r0, over every
  /// acceptance so far. Caller holds the run lock (dirty_ is shared).
  int plain_valid_limit_locked(int r0) const {
    int md = align::PairDirtyIndex::kNoDirtyRow;
    for (const auto& d : dirty_) md = std::min(md, d.min_dirty_row(r0));
    return md == align::PairDirtyIndex::kNoDirtyRow
               ? std::numeric_limits<int>::max()
               : md - 1;
  }

  /// `idle` accumulates this thread's cv-wait wall time locally and is
  /// published once by worker(); per-wait publication would add registry
  /// traffic inside the scheduler's lock dance.
  void worker_impl(align::Engine& engine, WorkerCkpt& ck, double& idle) {
    std::vector<std::vector<align::Score>> out_rows(
        static_cast<std::size_t>(engine.lanes()));
    util::WallTimer wait_timer;
    std::unique_lock lock(mutex_);
    while (!done_) {
      // 1. Acceptance: the head is up to date, nothing in flight can order
      //    before it, and no other acceptance is running.
      if (!accepting_) {
        const auto head = queue_.peek();
        if (head && !group_stale(head->second)) {
          const bool blocked =
              !inflight_.empty() &&
              InflightCmp{}(*inflight_.begin(), head->first);
          if (!blocked) {
            if (head->first.score < options_.finder.min_score) {
              done_ = true;  // every bound is lower: search exhausted
              cv_.notify_all();
              return;
            }
            accept_head(lock, head->second);
            if (static_cast<int>(tops_.size()) >=
                options_.finder.num_top_alignments)
              done_ = true;
            cv_.notify_all();
            continue;
          }
        }
      }

      // 2. Speculation: realign the best stale group not yet assigned.
      const auto gi = queue_.pop_best_if([this](int g) { return group_stale(g); });
      if (gi) {
        realign(lock, *gi, engine, ck, out_rows);
        cv_.notify_all();
        continue;
      }

      // 3. Exhaustion: nothing queued, nothing running, nothing accepting.
      if (queue_.empty() && inflight_.empty() && !accepting_) {
        done_ = true;
        cv_.notify_all();
        return;
      }
      wait_timer.reset();
      cv_.wait(lock);
      idle += wait_timer.seconds();
    }
  }

  void accept_head(std::unique_lock<std::mutex>& lock, int gi) {
    const auto popped = queue_.pop_best();
    REPRO_CHECK(popped && *popped == gi);
    GroupTask& g = groups_[static_cast<std::size_t>(gi)];
    const int b = g.best_member();
    const int r = g.r0 + b;
    const align::Score expected = g.score[static_cast<std::size_t>(b)];
    accepting_ = true;
    lock.unlock();
    // Traceback runs unlocked (the paper notes it is the slow sequential
    // part); it is the only writer of the triangle while accepting_ holds.
    core::TopAlignment top = core::accept_alignment(s_, scoring_, triangle_,
                                                    rows_, r, expected);
    lock.lock();
    tops_.push_back(std::move(top));
    if constexpr (check::kContractsEnabled) {
      // Acceptance order and triangle growth, as in the sequential finder.
      const std::size_t n = tops_.size();
      REPRO_DCHECK_MSG(n < 2 || tops_[n - 1].score <= tops_[n - 2].score,
                       "parallel acceptance " << n - 1 << " (score "
                           << tops_[n - 1].score
                           << ") outranks its predecessor (score "
                           << tops_[n - 2].score << ")");
      for (const auto& [pi, pj] : tops_.back().pairs)
        REPRO_DCHECK(triangle_.contains(pi, pj));
    }
    if (options_.finder.checkpoint_mem > 0)
      dirty_.emplace_back(
          std::span<const std::pair<int, int>>(tops_.back().pairs));
    ++stats_.tracebacks;
    accepting_ = false;
    queue_.push(gi, g.key());
  }

  void realign(std::unique_lock<std::mutex>& lock, int gi,
               align::Engine& engine, WorkerCkpt& ck,
               std::vector<std::vector<align::Score>>& out_rows) {
    GroupTask& g = groups_[static_cast<std::size_t>(gi)];
    const TaskKey bound = g.key();
    const int v = version();  // label: triangle version at kernel start
    const std::vector<int> prev_version = g.version;
    std::vector<align::Score> prev_score;  // contracts-only snapshot
    if constexpr (check::kContractsEnabled) prev_score = g.score;
    const auto it = inflight_.insert(bound);
    ++stats_.queue_pops;
    const int rows_g = g.r0 + g.count - 1;
    // Checkpoint sync + lookup while still locked: the dirty list is shared,
    // and replaying it keeps this worker's overridden entries current. The
    // returned view stays valid unlocked — only this thread mutates the cache.
    int resumed = 0;
    if (ck.cache) {
      for (; ck.synced < v; ++ck.synced)
        ck.cache->invalidate(dirty_[static_cast<std::size_t>(ck.synced)]);
      if (v > 0) {
        const auto found =
            ck.cache->find(g.r0, /*plain_sweep=*/false,
                           plain_valid_limit_locked(g.r0));
        if (found) {
          ck.view = *found;
          resumed = ck.view.row;
        }
      }
    }
    lock.unlock();

    align::GroupJob job;
    job.seq = s_.codes();
    job.scoring = &scoring_;
    job.overrides = v == 0 ? nullptr : &triangle_;
    job.r0 = g.r0;
    job.count = g.count;
    job.resume = resumed > 0 ? &ck.view : nullptr;
    if (ck.cache) {
      ck.sink.stride = ckpt_stride(rows_g);
      ck.sink.top_row = g.r0 - 1;
      job.sink = &ck.sink;
    }
    ck.outs.resize(static_cast<std::size_t>(g.count));
    for (int k = 0; k < g.count; ++k) {
      out_rows[static_cast<std::size_t>(k)].resize(
          static_cast<std::size_t>(s_.length() - (g.r0 + k)));
      ck.outs[static_cast<std::size_t>(k)] =
          out_rows[static_cast<std::size_t>(k)];
    }
    util::WallTimer sweep_timer;
    engine.align(job, ck.outs);
    const double sweep_seconds = sweep_timer.seconds();

    std::vector<align::Score> new_scores(static_cast<std::size_t>(g.count));
    for (int k = 0; k < g.count; ++k) {
      const int r = g.r0 + k;
      auto& row = out_rows[static_cast<std::size_t>(k)];
      if (prev_version[static_cast<std::size_t>(k)] == -1) {
        REPRO_CHECK(v == 0);  // first alignments precede any acceptance
        rows_.store(r, row);  // disjoint rows: safe unlocked
        new_scores[static_cast<std::size_t>(k)] =
            align::find_best_end(row).score;
      } else {
        new_scores[static_cast<std::size_t>(k)] =
            align::find_best_end(row, rows_.row(r)).score;
      }
    }

    lock.lock();
    inflight_.erase(it);
    if (ck.cache) {
      // The sweep ran unlocked, so the triangle may have grown under it:
      // staged rows at or past any mid-sweep acceptance's dirty row could
      // reflect torn override bits — drop them before committing. Rows below
      // every dirty row are pure and current by the monotone-growth argument.
      int md = align::PairDirtyIndex::kNoDirtyRow;
      for (int t = v; t < version(); ++t)
        md = std::min(md,
                      dirty_[static_cast<std::size_t>(t)].min_dirty_row(g.r0));
      ck.sink.drop_from(md);
      if constexpr (check::kContractsEnabled) {
        // Partition-commit correctness: no staged row at or past the min
        // dirty row of any mid-sweep acceptance may survive the drop —
        // such rows could reflect torn override-bit reads.
        for (int idx = 0; idx < ck.sink.count; ++idx)
          REPRO_DCHECK_MSG(
              ck.sink.rows[static_cast<std::size_t>(idx)].row < md,
              "torn-read-unsafe checkpoint row "
                  << ck.sink.rows[static_cast<std::size_t>(idx)].row
                  << " survived drop_from(" << md << ") for group r0="
                  << g.r0);
      }
      const align::Score priority =
          *std::max_element(new_scores.begin(), new_scores.end());
      ck.cache->store(g.r0, /*plain_class=*/v == 0, priority, ck.sink);
    }
    if (v > 0) {
      stats_.realign_seconds += sweep_seconds;
      stats_.rows_swept += static_cast<std::uint64_t>(rows_g);
      stats_.rows_skipped += static_cast<std::uint64_t>(resumed);
    }
    for (int k = 0; k < g.count; ++k) {
      if (prev_version[static_cast<std::size_t>(k)] == -1) {
        ++stats_.first_alignments;
      } else if (prev_version[static_cast<std::size_t>(k)] == v) {
        ++stats_.speculative;
      } else {
        ++stats_.realignments;
      }
      if constexpr (check::kContractsEnabled) {
        // Upper-bound property under speculation: the sweep observed at
        // least the version-v triangle (bits only get added), so a member
        // aligned before can never come back with a higher score.
        if (prev_version[static_cast<std::size_t>(k)] >= 0)
          REPRO_DCHECK_MSG(
              new_scores[static_cast<std::size_t>(k)] <=
                  prev_score[static_cast<std::size_t>(k)],
              "parallel realignment raised r=" << g.r0 + k << " from "
                  << prev_score[static_cast<std::size_t>(k)] << " to "
                  << new_scores[static_cast<std::size_t>(k)]);
      }
      g.score[static_cast<std::size_t>(k)] = new_scores[static_cast<std::size_t>(k)];
      g.version[static_cast<std::size_t>(k)] = v;
    }
    queue_.push(gi, g.key());
  }

  const seq::Sequence& s_;
  const seq::Scoring& scoring_;
  const ParallelOptions& options_;
  align::OverrideTriangle triangle_;
  align::BottomRowStore rows_;
  std::vector<GroupTask> groups_;
  core::GroupQueue queue_;
  std::multiset<TaskKey, InflightCmp> inflight_;
  std::vector<align::PairDirtyIndex> dirty_;  ///< one entry per acceptance

  std::mutex mutex_;
  std::condition_variable cv_;
  bool accepting_ = false;
  bool done_ = false;
  std::exception_ptr error_;

  std::vector<core::TopAlignment> tops_;
  core::FinderStats stats_;
};

}  // namespace

core::FinderResult find_top_alignments_parallel(const seq::Sequence& s,
                                                const seq::Scoring& scoring,
                                                const ParallelOptions& options,
                                                const EngineFactory& factory) {
  util::WallTimer timer;
  std::vector<std::unique_ptr<align::Engine>> engines;
  engines.reserve(static_cast<std::size_t>(options.threads));
  for (int t = 0; t < options.threads; ++t) {
    engines.push_back(factory());
    REPRO_CHECK_MSG(engines.back() != nullptr, "engine factory returned null");
    REPRO_CHECK_MSG(engines.back()->lanes() == engines.front()->lanes(),
                    "all worker engines must have the same lane count");
  }

  SharedRun run(s, scoring, options, engines.front()->lanes());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.threads));
  for (int t = 0; t < options.threads; ++t)
    threads.emplace_back([&run, &engines, t] {
      run.worker(*engines[static_cast<std::size_t>(t)], t);
    });
  for (auto& th : threads) th.join();

  std::uint64_t cells = 0;
  align::PrecisionStats prec;
  for (const auto& e : engines) {
    cells += e->cells_computed();
    // Worker engines are fresh from the factory, so their lifetime counters
    // are exactly this run's; each worker builds its profile once and every
    // later sweep of its partition is a hit.
    const align::PrecisionStats p = e->precision_stats();
    prec.i8_sweeps += p.i8_sweeps;
    prec.i16_sweeps += p.i16_sweeps;
    prec.escalations += p.escalations;
    prec.profile_hits += p.profile_hits;
    prec.profile_builds += p.profile_builds;
  }
  return run.finish(timer.seconds(), cells, prec);
}

}  // namespace repro::parallel
