// Shared-memory dynamic speculative scheduler (paper §4.2).
//
// Worker threads share the task queue, the override triangle, and the
// bottom-row store. Each idle worker takes the best *stale* group from the
// queue, realigns it with its private engine, and requeues it. A top
// alignment is accepted when the queue head is up to date — with one
// determinism refinement over the paper's prose: acceptance also waits until
// no in-flight realignment holds an upper bound that would order *before*
// the head (scores only decrease under a grown triangle, so an in-flight
// task whose bound precedes the head might still beat it). This makes the
// parallel finder produce byte-identical top alignments for every thread
// count, at the price of exactly the end-of-iteration idling the paper
// measures (§5.2).
//
// Speculation: realignments that overlap an acceptance are kept — their
// results are upper bounds for the grown triangle and are simply requeued
// (the paper's "the work for the superfluous tasks is not wasted").
#pragma once

#include "align/engine.hpp"
#include "core/options.hpp"
#include "seq/scoring.hpp"
#include "seq/sequence.hpp"

#include <functional>
#include <memory>

namespace repro::parallel {

/// Creates one engine per worker thread (engines are not thread-safe).
using EngineFactory = align::EngineFactory;

struct ParallelOptions {
  int threads = 2;
  core::FinderOptions finder;
};

/// Runs the shared-memory finder. Produces exactly the same top alignments
/// as the sequential finder with an identical-lane engine.
core::FinderResult find_top_alignments_parallel(const seq::Sequence& s,
                                                const seq::Scoring& scoring,
                                                const ParallelOptions& options,
                                                const EngineFactory& factory);

}  // namespace repro::parallel
