// A small fixed-size thread pool.
//
// Used by tests and benches for auxiliary parallel work; the ParallelFinder
// manages its own worker loop (the paper's dynamic scheduler needs richer
// coordination than fire-and-forget tasks).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace repro::parallel {

class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; the future resolves when it completes (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> fn);

  /// Runs fn(i) for i in [0, n) across the pool and waits; the calling
  /// thread participates. Exceptions are rethrown on the caller.
  void parallel_for(int n, const std::function<void(int)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace repro::parallel
