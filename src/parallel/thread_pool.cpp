#include "parallel/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace repro::parallel {

ThreadPool::ThreadPool(int threads) {
  REPRO_CHECK(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto future = task.get_future();
  {
    std::lock_guard lock(mutex_);
    REPRO_CHECK_MSG(!stop_, "submit() on a stopped pool");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  std::atomic<int> next{0};
  auto body = [&] {
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
  };
  std::vector<std::future<void>> futures;
  const int helpers = std::min(size(), n - 1);
  futures.reserve(static_cast<std::size_t>(helpers));
  for (int t = 0; t < helpers; ++t) futures.push_back(submit(body));
  // `next`, `fn` and `body` live on this stack frame, so every worker must
  // finish before this function exits — even when an iteration throws. Run
  // the caller's share and drain every future before propagating anything;
  // the first exception captured (caller's share, then workers in submission
  // order) wins and none is silently lost.
  std::exception_ptr error;
  try {
    body();  // caller participates
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace repro::parallel
