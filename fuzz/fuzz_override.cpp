// Override-triangle differential fuzz target.
//
// Drives OverrideTriangle with a byte-pair op stream against a trivially
// correct reference model (std::set of pairs), checking after every op that
// contains() / count() / row_empty() agree, and at the end that a full sweep
// over all (i, j) pairs matches — then that clear() empties both views.
// The triangle's word-packed atomic rows and per-row dirty flags are exactly
// the kind of bit bookkeeping a model-based fuzz loop catches regressions in.
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "align/override_triangle.hpp"

namespace {

[[noreturn]] void finding(const std::string& what) {
  throw std::runtime_error("override triangle: " + what);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  // Byte 0 picks the sequence length m in [2, 65]; each following byte pair
  // (a, b) encodes one set(i, j) with i = a % (m-1), j in (i, m).
  const int m = 2 + static_cast<int>(data[0] % 64);
  repro::align::OverrideTriangle tri(m);
  std::set<std::pair<int, int>> model;

  for (std::size_t p = 1; p + 1 < size; p += 2) {
    const int i = static_cast<int>(data[p]) % (m - 1);
    const int j = i + 1 + static_cast<int>(data[p + 1]) % (m - 1 - i);
    tri.set(i, j);
    model.emplace(i, j);
    if (!tri.contains(i, j))
      finding("set(" + std::to_string(i) + ", " + std::to_string(j) +
              ") not visible");
    if (tri.count() != static_cast<std::int64_t>(model.size()))
      finding("count " + std::to_string(tri.count()) + " != model " +
              std::to_string(model.size()));
  }

  for (int i = 0; i < m - 1; ++i) {
    bool any = false;
    for (int j = i + 1; j < m; ++j) {
      const bool expect = model.count({i, j}) != 0;
      any = any || expect;
      if (tri.contains(i, j) != expect)
        finding("contains(" + std::to_string(i) + ", " + std::to_string(j) +
                ") diverges from model");
    }
    // row_empty may only claim empty when the model row truly is; a false
    // "dirty" is allowed (it is a skip hint, not an exact census).
    if (tri.row_empty(i) && any)
      finding("row_empty(" + std::to_string(i) + ") hides set bits");
  }

  tri.clear();
  if (tri.count() != 0) finding("count nonzero after clear");
  for (const auto& [i, j] : model)
    if (tri.contains(i, j)) finding("bit survived clear");
  return 0;
}
