// Differential kernel fuzz target — the fuzzing counterpart of
// core_equivalence_test.
//
// From the input bytes it builds a small DNA sequence and a set of override
// bits, then for every split r checks that
//
//   * the scalar engine (reference), the striped scalar engine with a tiny
//     stripe, and the portable SIMD engines (8 x i16 lanes, 4 x i32 lanes)
//     produce bit-identical bottom rows, and
//   * resuming the scalar engine from any checkpoint row it emitted
//     reproduces the fresh bottom row exactly (§3 checkpoint-resume
//     bit-identity).
//
// Any divergence throws; the driver reports it with the reproducing input.
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "align/types.hpp"
#include "seq/scoring.hpp"

namespace {

using repro::align::CheckpointSink;
using repro::align::CheckpointView;
using repro::align::GroupJob;
using repro::align::Score;

[[noreturn]] void finding(const std::string& what) {
  throw std::runtime_error("kernel diff: " + what);
}

void compare_rows(const std::vector<Score>& ref, const std::vector<Score>& got,
                  const std::string& label, int r) {
  if (ref.size() != got.size())
    finding(label + ": row size differs at r=" + std::to_string(r));
  for (std::size_t x = 0; x < ref.size(); ++x)
    if (ref[x] != got[x])
      finding(label + ": H[" + std::to_string(x) + "] differs at r=" +
              std::to_string(r) + " (" + std::to_string(ref[x]) + " vs " +
              std::to_string(got[x]) + ")");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 4) return 0;
  // Byte 0: sequence length m in [3, 34]. Byte 1: checkpoint stride seed.
  // Bytes then alternate: residue stream (2 bits each), then override pairs.
  const int m = 3 + static_cast<int>(data[0] % 32);
  const int stride = 1 + static_cast<int>(data[1] % 5);
  std::vector<std::uint8_t> seq(static_cast<std::size_t>(m));
  std::size_t p = 2;
  for (int i = 0; i < m; ++i) {
    seq[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((data[p % size] >> ((i % 4) * 2)) & 3);
    if (i % 4 == 3) ++p;
  }

  repro::align::OverrideTriangle tri(m);
  for (; p + 1 < size; p += 2) {
    const int i = static_cast<int>(data[p]) % (m - 1);
    const int j = i + 1 + static_cast<int>(data[p + 1]) % (m - 1 - i);
    tri.set(i, j);
  }

  const repro::seq::Scoring scoring = repro::seq::Scoring::paper_example();
  const auto scalar = repro::align::make_engine(
      repro::align::EngineKind::kScalar);
  // Stripe width 3 forces many stripe boundaries even on tiny rectangles.
  const auto striped = repro::align::make_engine(
      repro::align::EngineKind::kScalarStriped, 3);
  const auto simd8 = repro::align::make_engine(
      repro::align::EngineKind::kSimd8Generic);
  const auto simd4x32 = repro::align::make_engine(
      repro::align::EngineKind::kSimd4x32Generic);

  for (int r = 1; r < m; ++r) {
    GroupJob job;
    job.seq = seq;
    job.scoring = &scoring;
    job.overrides = &tri;
    job.r0 = r;
    job.count = 1;

    CheckpointSink sink;
    sink.stride = stride;
    sink.top_row = r - 1;
    GroupJob fresh = job;
    fresh.sink = &sink;
    const auto ref = scalar->align_one(fresh);

    compare_rows(ref, striped->align_one(job), "striped", r);
    compare_rows(ref, simd8->align_one(job), "simd8generic", r);
    compare_rows(ref, simd4x32->align_one(job), "simd4x32generic", r);

    // Resume from every emitted checkpoint row strictly above the bottom row
    // and demand the identical bottom row (§3 bit-identity on resume).
    for (int t = 0; t < sink.count; ++t) {
      const auto& cr = sink.rows[static_cast<std::size_t>(t)];
      if (cr.row >= r) continue;
      CheckpointView view;
      view.row = cr.row;
      view.lanes = sink.lanes;
      view.elem_size = sink.elem_size;
      view.h = cr.h.data();
      view.max_y = cr.max_y.data();
      view.bytes = cr.h.size();
      GroupJob resumed = job;
      resumed.resume = &view;
      compare_rows(ref, scalar->align_one(resumed),
                   "resume@" + std::to_string(cr.row), r);
    }
  }
  return 0;
}
