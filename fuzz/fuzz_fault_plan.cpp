// Fault-plan fuzz target — grammar robustness plus a recovery differential.
//
// Mode byte (data[0]):
//   even — spec path: the remaining bytes are a fault-plan spec string.
//     FaultPlan::parse must either reject it with std::runtime_error or
//     accept it and round-trip losslessly through to_string()/parse().
//   odd — differential path: the bytes choose a from_seed schedule, a rank
//     count, and a row-storage mode; a miniature cluster run under that
//     schedule (drops, delays, duplicates, worker crashes) must produce
//     exactly the sequential finder's accepted top alignments — the
//     fault-tolerance guarantee of cluster/master_worker.cpp. Timeouts are
//     tightened so crash recovery stays fast enough to fuzz.
//
// Any divergence throws; the driver reports it with the reproducing input.
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "align/engine.hpp"
#include "cluster/fault.hpp"
#include "cluster/master_worker.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "seq/generator.hpp"
#include "seq/scoring.hpp"

namespace {

using namespace repro;

[[noreturn]] void finding(const std::string& what) {
  throw std::logic_error("fault plan: " + what);
}

// Sequential references are pure functions of the sequence length here (the
// generator seed is fixed), so the replay cache makes the differential path
// cheap across iterations.
const core::FinderResult& reference_for(int m, const seq::Sequence& s,
                                        const seq::Scoring& scoring,
                                        const core::FinderOptions& opt) {
  static std::map<int, core::FinderResult> cache;
  const auto it = cache.find(m);
  if (it != cache.end()) return it->second;
  const auto engine = align::make_engine(align::EngineKind::kScalar);
  return cache.emplace(m, core::find_top_alignments(s, scoring, opt, *engine))
      .first->second;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;

  if (data[0] % 2 == 0) {
    // Spec-grammar robustness: reject cleanly or round-trip losslessly.
    const std::string spec(reinterpret_cast<const char*>(data + 1), size - 1);
    cluster::FaultPlan plan;
    try {
      plan = cluster::FaultPlan::parse(spec);
    } catch (const std::runtime_error&) {
      return 0;  // malformed input, rejected with the documented error type
    }
    const std::string canon = plan.to_string();
    const cluster::FaultPlan reparsed = cluster::FaultPlan::parse(canon);
    if (reparsed.events.size() != plan.events.size())
      finding("round trip changed event count for '" + canon + "'");
    if (reparsed.to_string() != canon)
      finding("round trip not a fixed point: '" + canon + "' vs '" +
              reparsed.to_string() + "'");
    return 0;
  }

  // Differential path: faulted cluster run vs the sequential finder.
  if (size < 4) return 0;
  const int ranks = 2 + static_cast<int>(data[1] % 3);  // 2..4
  const bool partitioned = (data[2] & 1) != 0;
  const int m = 100 + static_cast<int>(data[3] % 21);  // 100..120
  std::uint64_t fault_seed = 0;
  for (std::size_t i = 1; i < size && i < 12; ++i)
    fault_seed = fault_seed * 131 + data[i];

  const auto g = seq::synthetic_titin(m, 91);
  const seq::Scoring scoring = seq::Scoring::protein_default();
  core::FinderOptions opt;
  opt.num_top_alignments = 2;
  const core::FinderResult& reference =
      reference_for(m, g.sequence, scoring, opt);

  cluster::ClusterOptions copt;
  copt.ranks = ranks;
  copt.row_storage = partitioned ? cluster::RowStorage::kPartitioned
                                 : cluster::RowStorage::kMasterReplica;
  copt.finder = opt;
  copt.fault_plan = cluster::FaultPlan::from_seed(fault_seed, ranks);
  copt.ft.task_timeout_ms = 60;
  copt.ft.row_timeout_ms = 30;
  copt.ft.hello_timeout_ms = 40;
  copt.ft.max_backoff_ms = 400;
  copt.ft.poll_ms = 5;

  const auto factory = align::engine_factory(align::EngineKind::kScalar);
  const core::FinderResult res = cluster::find_top_alignments_cluster(
      g.sequence, scoring, copt, factory, nullptr);

  std::string diff;
  if (!core::same_tops(res.tops, reference.tops, &diff))
    finding("faulted cluster diverged from sequential (ranks=" +
            std::to_string(ranks) + (partitioned ? ", partitioned" : "") +
            ", plan=" + copt.fault_plan.to_string() + "): " + diff);
  return 0;
}
