// FASTA parser fuzz target.
//
// Property 1 (robustness): read_fasta on arbitrary bytes either succeeds or
// rejects the input with the parser's own std::logic_error — never crashes,
// never loops, never returns half-parsed garbage silently.
//
// Property 2 (round trip): whatever it accepts must survive
// write_fasta -> read_fasta bit-identically (names and residue codes), at
// several wrap widths. Any divergence throws out of the target, which the
// driver (or libFuzzer) reports as a finding.
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "seq/fasta.hpp"
#include "seq/sequence.hpp"

namespace {

[[noreturn]] void finding(const std::string& what) {
  throw std::runtime_error("fasta round trip: " + what);
}

void check_round_trip(const std::vector<repro::seq::Sequence>& records,
                      const repro::seq::Alphabet& alphabet, int width) {
  std::ostringstream out;
  repro::seq::write_fasta(out, records, width);
  std::istringstream in(out.str());
  const auto again = repro::seq::read_fasta(in, alphabet);
  if (again.size() != records.size()) finding("record count differs");
  for (std::size_t k = 0; k < records.size(); ++k) {
    if (again[k].name() != records[k].name())
      finding("name differs for record " + std::to_string(k));
    const auto a = records[k].codes();
    const auto b = again[k].codes();
    if (a.size() != b.size())
      finding("length differs for record " + std::to_string(k));
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i] != b[i]) finding("codes differ for record " + std::to_string(k));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // First byte selects the alphabet; the rest is the FASTA payload.
  const auto& alphabet = (size != 0 && (data[0] & 1) != 0)
                             ? repro::seq::Alphabet::dna()
                             : repro::seq::Alphabet::protein();
  const std::string payload(reinterpret_cast<const char*>(data) + (size ? 1 : 0),
                            size ? size - 1 : 0);
  std::vector<repro::seq::Sequence> records;
  try {
    std::istringstream in(payload);
    records = repro::seq::read_fasta(in, alphabet);
  } catch (const std::logic_error&) {
    return 0;  // parser rejected the input: the expected failure mode
  }
  for (const int width : {1, 7, 70})
    check_round_trip(records, alphabet, width);
  return 0;
}
