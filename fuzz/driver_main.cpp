// Standalone fuzz driver used when the toolchain has no libFuzzer
// (-fsanitize=fuzzer). It feeds the same LLVMFuzzerTestOneInput entry point
// that libFuzzer would call, from two sources:
//
//   * every corpus file named on the command line (files or directories),
//   * `--rand-seconds S` of deterministic splitmix64-generated random
//     inputs (seeded via --seed, default 1), each up to --max-len bytes.
//
// It performs no coverage-guided mutation — the targets are differential
// (reference model vs implementation, engine vs engine, resume vs fresh),
// so random inputs alone exercise the comparisons. Any escaped exception or
// abort is a finding; the driver prints the reproducing seed/iteration.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/timer.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read corpus file %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double rand_seconds = 0.0;
  std::size_t max_len = 512;
  std::uint64_t seed = 1;
  std::vector<std::filesystem::path> inputs;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++a];
    };
    if (arg == "--rand-seconds") {
      rand_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--max-len") {
      max_len = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--help") {
      std::printf(
          "usage: %s [corpus-file-or-dir]... [--rand-seconds S] "
          "[--max-len N] [--seed X]\n",
          argv[0]);
      return 0;
    } else {
      inputs.emplace_back(arg);
    }
  }

  std::uint64_t corpus_runs = 0;
  try {
    for (const auto& p : inputs) {
      if (std::filesystem::is_directory(p)) {
        for (const auto& entry :
             std::filesystem::recursive_directory_iterator(p)) {
          if (!entry.is_regular_file()) continue;
          if (run_file(entry.path()) != 0) return 1;
          ++corpus_runs;
        }
      } else {
        if (run_file(p) != 0) return 1;
        ++corpus_runs;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FUZZ FINDING (corpus input): %s\n", e.what());
    return 1;
  }

  std::uint64_t rand_runs = 0;
  std::uint64_t state = seed;
  repro::util::WallTimer timer;
  std::vector<std::uint8_t> buf;
  while (timer.seconds() < rand_seconds) {
    const std::size_t len = max_len == 0
                                ? 0
                                : static_cast<std::size_t>(splitmix64(state) %
                                                           (max_len + 1));
    buf.resize(len);
    for (std::size_t i = 0; i < len; i += 8) {
      const std::uint64_t word = splitmix64(state);
      const std::size_t n = std::min<std::size_t>(8, len - i);
      std::memcpy(buf.data() + i, &word, n);
    }
    try {
      LLVMFuzzerTestOneInput(buf.data(), buf.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "FUZZ FINDING (seed %llu, iteration %llu, len %zu): %s\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(rand_runs),
                   buf.size(), e.what());
      return 1;
    }
    ++rand_runs;
  }

  std::printf("fuzz driver: %llu corpus inputs, %llu random inputs, "
              "no findings\n",
              static_cast<unsigned long long>(corpus_runs),
              static_cast<unsigned long long>(rand_runs));
  return 0;
}
