// Table 1 reproduction: run times of the old (O(n^4)) and new (O(n^3))
// sequential algorithms over growing prefixes of a titin-like protein.
//
// Paper (Pentium III, 50 top alignments, prefixes of human titin):
//   length   old (s)   new (s)   speedup
//     1000      1121      10.6       106
//     1200      2460      17.6       140
//     1400      5251      28.4       185
//     1600      8347      42.3       197
//     1800     14672      57.4       256
// ...extrapolated to thousands-fold for the full 34350-residue sequence.
//
// Default scale is reduced (the O(n^4) baseline is the bottleneck — exactly
// the paper's point); pass --paper-scale for the original lengths/tops and
// plan for hours. The *shape* to check: the speedup column grows with n,
// and the fitted log-log exponents are ~4 (old) vs ~3 (new).
#include <iostream>

#include "bench_common.hpp"
#include "core/old_finder.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"lengths", "comma-separated sequence lengths"},
                   {"tops", "top alignments per run (paper: 50)"},
                   {"seed", "generator seed"},
                   {"paper-scale", "run the paper's lengths (1000..1800, 50 tops)"},
                   {"verify", "cross-check old == new top alignments"},
                   {"json", bench::kJsonFlagHelp}});
  if (args.help_requested()) return 0;

  std::vector<std::int64_t> lengths =
      args.get_int_list("lengths", {100, 150, 200, 250, 300, 350});
  int tops = static_cast<int>(args.get_int("tops", 5));
  if (args.get_flag("paper-scale")) {
    lengths = {1000, 1200, 1400, 1600, 1800};
    tops = 50;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2003));
  const bool verify = args.get_flag("verify");

  bench::header("Table 1 — old vs new sequential algorithm (" +
                std::to_string(tops) + " top alignments, titin-like protein)");

  const seq::Scoring scoring = seq::Scoring::protein_default();
  util::Table table({"length", "old (s)", "new (s)", "speedup"});
  table.set_precision(4);

  std::vector<double> ns, t_old, t_new;
  for (const auto length : lengths) {
    const auto g = seq::synthetic_titin(static_cast<int>(length), seed);
    core::FinderOptions opt;
    opt.num_top_alignments = tops;

    const auto old_res = core::find_top_alignments_old(g.sequence, scoring, opt);
    const auto engine = align::make_engine(align::EngineKind::kScalar);
    const auto new_res =
        core::find_top_alignments(g.sequence, scoring, opt, *engine);

    if (verify) {
      std::string diff;
      if (!core::same_tops(old_res.tops, new_res.tops, &diff)) {
        std::cerr << "EQUIVALENCE VIOLATION at length " << length << ": "
                  << diff << '\n';
        return 1;
      }
    }

    ns.push_back(static_cast<double>(length));
    t_old.push_back(old_res.stats.seconds);
    t_new.push_back(new_res.stats.seconds);
    table.add_row({static_cast<long long>(length), old_res.stats.seconds,
                   new_res.stats.seconds,
                   old_res.stats.seconds / new_res.stats.seconds});
  }
  table.print(std::cout);

  const auto fit_old = util::fit_loglog(ns, t_old);
  const auto fit_new = util::fit_loglog(ns, t_new);
  std::cout << "\nfitted complexity exponents (log t vs log n):\n"
            << "  old algorithm: n^" << fit_old.slope << "  (paper: ~4; r2="
            << fit_old.r2 << ")\n"
            << "  new algorithm: n^" << fit_new.slope << "  (paper: ~3; r2="
            << fit_new.r2 << ")\n"
            << "shape check: speedup grows with n "
            << (t_old.back() / t_new.back() > t_old.front() / t_new.front()
                    ? "[OK]"
                    : "[MISMATCH]")
            << "\n\npaper reference rows (Pentium III, 50 tops):\n"
            << "  1000: 1121 s vs 10.6 s (106x)   1800: 14672 s vs 57.4 s (256x)\n";

  obs::MetricsReport report("bench_table1");
  report.param("tops", tops);
  report.param("lengths", static_cast<std::int64_t>(lengths.size()));
  report.metric("old_exponent", fit_old.slope);
  report.metric("new_exponent", fit_new.slope);
  report.metric("speedup_at_max_length", t_old.back() / t_new.back());
  report.metric("old_seconds_at_max_length", t_old.back());
  report.metric("new_seconds_at_max_length", t_new.back());
  bench::maybe_write_json(args, report);
  return 0;
}
