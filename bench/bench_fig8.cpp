// Figure 8 reproduction: speed improvements for computing up to 100 top
// alignments as a function of processor count (paper §5.2).
//
// Paper (titin, m = 34350, DAS-2: 64 dual-P-III nodes, Myrinet, 4-lane SSE
// workers): near-perfect scaling for the first top alignment — 831x at 128
// CPUs vs the sequential non-SSE algorithm (123x vs single-CPU SSE, 96.1 %
// efficiency) — degrading to ~500x at 100 top alignments because only
// 3-10 % of rectangles need realignment between acceptances.
//
// Substitution (DESIGN.md): this host is one CPU, so the cluster is the
// VirtualCluster discrete-event simulator replaying the real distributed
// scheduler; compute cost is calibrated with this host's real kernels, and
// all scheduling decisions are driven by real alignment scores (memoised
// AlignmentOracle). Speed improvements are reported exactly like the paper:
// against the sequential new algorithm on the conventional instruction set.
#include <iostream>

#include "bench_common.hpp"
#include "cluster/virtual_cluster.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(
      argc, argv,
      {{"m", "sequence length (paper: 34350)"},
       {"paper-scale", "use the paper's sequence length (very slow)"},
       {"tops", "comma-separated top-alignment counts"},
       {"procs", "comma-separated processor counts"},
       {"lanes", "SIMD lanes per worker CPU (paper: 4, P-III SSE)"},
       {"dual-cpu", "add the Sec. 5.2 dual-CPU memory-bus ablation"},
       {"json", bench::kJsonFlagHelp}});
  if (args.help_requested()) return 0;

  int m = static_cast<int>(args.get_int("m", 2500));
  if (args.get_flag("paper-scale")) m = 34350;
  const auto tops_list = args.get_int_list("tops", {1, 2, 5, 10, 25, 100});
  const auto procs = args.get_int_list("procs", {1, 2, 4, 8, 16, 32, 64, 96, 128});
  const int lanes = static_cast<int>(args.get_int("lanes", 4));

  bench::header("Figure 8 — speed improvement vs processors (titin-like, m=" +
                std::to_string(m) + ", " + std::to_string(lanes) +
                "-lane workers)");

  const auto g = seq::synthetic_titin(m, 2003);
  const seq::Scoring scoring = seq::Scoring::protein_default();

  // Calibrate the cost model with this host's real kernel rates.
  const auto scalar_probe = align::make_engine(align::EngineKind::kScalar);
  auto make_worker_engine = [&]() -> std::unique_ptr<align::Engine> {
#if REPRO_HAVE_SSE2
    if (lanes == 4 || lanes == 8)
      return align::make_engine(lanes == 4 ? align::EngineKind::kSimd4
                                           : align::EngineKind::kSimd8);
#endif
    if (lanes == 16 && align::avx2_available())
      return align::make_engine(align::EngineKind::kSimd16);
    return align::make_engine(align::EngineKind::kSimd4Generic);
  };
  const auto worker_probe = make_worker_engine();
  const int calib_m = std::min(m, 4000);
  const double scalar_rate =
      bench::measure_cells_per_sec(*scalar_probe, calib_m, scoring);
  const double simd_rate =
      bench::measure_cells_per_sec(*worker_probe, calib_m, scoring);
  std::cout << "calibration on this host: scalar "
            << scalar_rate / 1e6 << " Mcells/s, " << worker_probe->name()
            << " " << simd_rate / 1e6
            << " Mcells/s (lane-cells; paper: >1000 on a P4)\n";

  // One oracle per experiment sweep; its cache is shared by every processor
  // count (the acceptance sequence is deterministic).
  const auto oracle_engine = make_worker_engine();
  cluster::AlignmentOracle oracle(g.sequence, scoring, *oracle_engine);

  auto model_for = [&](int p, double rate) {
    cluster::ClusterModel model;
    model.processors = p;
    model.cpus_per_node = 2;
    model.worker_cells_per_sec = rate;
    model.traceback_cells_per_sec = scalar_rate;
    return model;
  };

  std::vector<std::string> headers{"procs"};
  for (const auto t : tops_list) headers.push_back(std::to_string(t) + " top" + (t > 1 ? "s" : ""));
  util::Table table(std::move(headers));
  table.set_precision(1);

  // The paper's y-axis baseline: the sequential new algorithm on the
  // conventional (scalar) instruction set.
  std::vector<double> scalar_seq(tops_list.size());
  for (std::size_t ti = 0; ti < tops_list.size(); ++ti) {
    core::FinderOptions opt;
    opt.num_top_alignments = static_cast<int>(tops_list[ti]);
    scalar_seq[ti] =
        cluster::simulate_cluster(oracle, model_for(1, scalar_rate), opt)
            .makespan_sec;
  }

  double t128_one_top = 0.0;
  double simd1_one_top = 0.0;
  for (const auto p : procs) {
    std::vector<util::Table::Cell> row{static_cast<long long>(p)};
    for (std::size_t ti = 0; ti < tops_list.size(); ++ti) {
      core::FinderOptions opt;
      opt.num_top_alignments = static_cast<int>(tops_list[ti]);
      const auto sim = cluster::simulate_cluster(
          oracle, model_for(static_cast<int>(p), simd_rate), opt);
      row.push_back(scalar_seq[ti] / sim.makespan_sec);
      if (ti == 0 && p == 1) simd1_one_top = sim.makespan_sec;
      if (ti == 0 && p == procs.back()) t128_one_top = sim.makespan_sec;
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  obs::MetricsReport report("bench_fig8");
  report.param("m", m);
  report.param("lanes", lanes);
  report.param("max_procs", static_cast<std::int64_t>(procs.back()));
  report.metric("scalar_calib_cells_per_sec", scalar_rate);
  report.metric("simd_calib_cells_per_sec", simd_rate);
  if (simd1_one_top > 0 && t128_one_top > 0) {
    const double vs_simd = simd1_one_top / t128_one_top;
    const auto pmax = static_cast<double>(procs.back());
    std::cout << "\nat " << procs.back()
              << " processors, 1 top alignment:\n  improvement vs sequential "
                 "scalar: "
              << scalar_seq[0] / t128_one_top << " (paper: 831 at 128)\n"
              << "  speedup vs single-CPU SIMD worker: " << vs_simd
              << " (paper: 123), efficiency " << 100.0 * vs_simd / pmax
              << " % (paper: 96.1 %)\n";
    report.metric("improvement_vs_scalar_1top", scalar_seq[0] / t128_one_top);
    report.metric("speedup_vs_simd1_1top", vs_simd);
    report.metric("efficiency_pct_1top", 100.0 * vs_simd / pmax);
  }
  std::cout << "speculation: " << oracle.computed_alignments()
            << " group alignments computed across the whole sweep "
               "(cache-shared; paper: parallel runs computed up to 8.4 % "
               "more alignments than sequential)\n";

  if (args.get_flag("dual-cpu")) {
    bench::header("Sec. 5.2 dual-CPU ablation (memory-bus contention model)");
    core::FinderOptions opt;
    opt.num_top_alignments = 5;
    auto aware = model_for(9, simd_rate);
    auto unaware = model_for(9, simd_rate);
    unaware.second_cpu_efficiency = 0.625;  // 25 % gain from the 2nd CPU
    const double t_aware =
        cluster::simulate_cluster(oracle, aware, opt).makespan_sec;
    const double t_unaware =
        cluster::simulate_cluster(oracle, unaware, opt).makespan_sec;
    std::cout << "cache-aware kernel: " << t_aware
              << " s; non-cache-aware model: " << t_unaware
              << " s  (paper: 100 % vs 25 % second-CPU gain)\n";
  }
  report.counter("oracle_group_alignments", oracle.computed_alignments());
  bench::maybe_write_json(args, report);
  return 0;
}
