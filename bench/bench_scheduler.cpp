// Scheduler-quality ablations (paper §3 and §5.1/§5.2):
//   * best-first upper-bound ordering skips 90-97 % of realignments
//     relative to realigning every rectangle per top alignment;
//   * between consecutive top alignments only 3-10 % of rectangles need a
//     realignment with the new override triangle;
//   * SIMD group scheduling computes < 0.70 % extra alignments.
#include <iostream>

#include "bench_common.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"m", "sequence length"},
                   {"tops", "top alignments"},
                   {"seeds", "comma-separated generator seeds"},
                   {"json", bench::kJsonFlagHelp}});
  if (args.help_requested()) return 0;
  const int m = static_cast<int>(args.get_int("m", 1200));
  const int tops = static_cast<int>(args.get_int("tops", 25));
  const auto seeds = args.get_int_list("seeds", {1, 2, 3});

  bench::header("Scheduler ablations (m=" + std::to_string(m) + ", " +
                std::to_string(tops) + " tops)");

  const seq::Scoring scoring = seq::Scoring::protein_default();
  util::Table table({"seed", "sweep realigns", "best-first realigns",
                     "avoided %", "realigns/top %", "SIMD extra aligns %"});
  table.set_precision(2);

  double avoided_sum = 0.0, per_top_sum = 0.0, extra_sum = 0.0;
  std::uint64_t sweep_realigns_sum = 0, best_realigns_sum = 0;
  std::uint64_t cells_sum = 0;
  double seconds_sum = 0.0;

  for (const auto seed : seeds) {
    const auto g = seq::synthetic_titin(m, static_cast<std::uint64_t>(seed));

    core::FinderOptions best;
    best.num_top_alignments = tops;
    core::FinderOptions sweep = best;
    sweep.policy = core::RescanPolicy::kExhaustiveSweep;

    const auto e_best = align::make_engine(align::EngineKind::kScalar);
    const auto e_sweep = align::make_engine(align::EngineKind::kScalar);
    const auto r_best = core::find_top_alignments(g.sequence, scoring, best, *e_best);
    const auto r_sweep =
        core::find_top_alignments(g.sequence, scoring, sweep, *e_sweep);
    std::string diff;
    if (!core::same_tops(r_best.tops, r_sweep.tops, &diff)) {
      std::cerr << "policy results diverge: " << diff << '\n';
      return 1;
    }

    const double avoided =
        100.0 * (1.0 - static_cast<double>(r_best.stats.realignments) /
                           static_cast<double>(r_sweep.stats.realignments));
    // Fraction of rectangles realigned per accepted top alignment.
    const double per_top =
        100.0 * static_cast<double>(r_best.stats.realignments) /
        static_cast<double>(r_best.tops.size()) / static_cast<double>(m - 1);

    // SIMD grouping overhead: total rectangle alignments vs scalar. Groups
    // of 4 to match the paper's P-III SSE configuration.
#if REPRO_HAVE_SSE2
    const auto e_simd = align::make_engine(align::EngineKind::kSimd4);
#else
    const auto e_simd = align::make_engine(align::EngineKind::kSimd4Generic);
#endif
    const auto r_simd = core::find_top_alignments(g.sequence, scoring, best, *e_simd);
    const auto aligned = [](const core::FinderStats& st) {
      return st.first_alignments + st.realignments + st.speculative;
    };
    const double extra =
        100.0 * (static_cast<double>(aligned(r_simd.stats)) /
                     static_cast<double>(aligned(r_best.stats)) -
                 1.0);

    table.add_row({static_cast<long long>(seed),
                   static_cast<long long>(r_sweep.stats.realignments),
                   static_cast<long long>(r_best.stats.realignments), avoided,
                   per_top, extra});
    avoided_sum += avoided;
    per_top_sum += per_top;
    extra_sum += extra;
    sweep_realigns_sum += r_sweep.stats.realignments;
    best_realigns_sum += r_best.stats.realignments;
    cells_sum += r_best.stats.cells;
    seconds_sum += r_best.stats.seconds;
  }
  table.print(std::cout);
  std::cout << "\npaper reference: 90-97 % of realignments avoided; 3-10 % of "
               "matrices realigned per top alignment; SSE grouping computed "
               "< 0.70 % extra alignments.\n";

  const double nseeds = static_cast<double>(seeds.size());
  obs::MetricsReport report("bench_scheduler");
  report.param("m", m);
  report.param("tops", tops);
  report.param("seeds", static_cast<std::int64_t>(seeds.size()));
  report.metric("realignments_avoided_pct", avoided_sum / nseeds);
  report.metric("realignments_per_top_pct", per_top_sum / nseeds);
  report.metric("simd_extra_alignments_pct", extra_sum / nseeds);
  if (seconds_sum > 0.0)
    report.metric("cells_per_sec",
                  static_cast<double>(cells_sum) / seconds_sum);
  report.counter("sweep_realignments", sweep_realigns_sum);
  report.counter("best_first_realignments", best_realigns_sum);
  report.counter("cells", cells_sum);
  bench::maybe_write_json(args, report);
  return 0;
}
