// Scheduler-quality ablations (paper §3 and §5.1/§5.2):
//   * best-first upper-bound ordering skips 90-97 % of realignments
//     relative to realigning every rectangle per top alignment;
//   * between consecutive top alignments only 3-10 % of rectangles need a
//     realignment with the new override triangle;
//   * SIMD group scheduling computes < 0.70 % extra alignments;
//   * checkpoint-resume realignment (the incremental-realignment subsystem)
//     skips the clean DP-row prefix of every realignment sweep — compared
//     against a cache-disabled run over the identical schedule.
#include <iostream>

#include "bench_common.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"m", "sequence length"},
                   {"tops", "top alignments"},
                   {"seeds", "comma-separated generator seeds"},
                   {"json", bench::kJsonFlagHelp}});
  if (args.help_requested()) return 0;
  const int m = static_cast<int>(args.get_int("m", 1200));
  const int tops = static_cast<int>(args.get_int("tops", 25));
  const auto seeds = args.get_int_list("seeds", {1, 2, 3});

  bench::header("Scheduler ablations (m=" + std::to_string(m) + ", " +
                std::to_string(tops) + " tops)");

  const seq::Scoring scoring = seq::Scoring::protein_default();
  util::Table table({"seed", "sweep realigns", "best-first realigns",
                     "avoided %", "realigns/top %", "SIMD extra aligns %"});
  table.set_precision(2);

  util::Table ckpt_table({"seed", "realign s (off)", "realign s (on)",
                          "speedup", "rows skipped %", "hit rate %"});
  ckpt_table.set_precision(2);

  double avoided_sum = 0.0, per_top_sum = 0.0, extra_sum = 0.0;
  std::uint64_t sweep_realigns_sum = 0, best_realigns_sum = 0;
  std::uint64_t cells_sum = 0;
  double seconds_sum = 0.0;
  double ckpt_speedup_sum = 0.0, realign_on_sum = 0.0, realign_off_sum = 0.0;
  std::uint64_t rows_skipped_sum = 0, rows_swept_sum = 0;
  std::uint64_t ckpt_hits_sum = 0, ckpt_misses_sum = 0, ckpt_evictions_sum = 0;

  // Checkpoint-ablation workload: a random background half followed by a
  // dense tandem repeat array (domain repeats concentrated in the distal
  // half, as in mucins or the titin PEVK region). Every accepted alignment
  // then lives in the second half, so the clean DP-row prefix of a
  // realignment sweep — everything above the first overridden pair — covers
  // at least m/2 rows. Full-length repeat arrays (plain synthetic_titin)
  // bound the skip depth by the accepted alignments' smallest prefix
  // position, which is near zero, hiding the resume path this table
  // measures.
  const auto distal_repeats = [&](std::uint64_t seed) {
    auto bg = seq::random_sequence(seq::Alphabet::protein(), m / 2, 7000 + seed);
    seq::RepeatSpec spec;
    spec.unit_length = 40;
    spec.copies = 12;
    spec.conservation = 0.8;
    spec.indel_rate = 0.02;
    spec.tandem = true;
    auto rep = seq::make_repeat_sequence(seq::Alphabet::protein(), m - m / 2,
                                         spec, seed);
    std::vector<std::uint8_t> codes(bg.codes().begin(), bg.codes().end());
    codes.insert(codes.end(), rep.sequence.codes().begin(),
                 rep.sequence.codes().end());
    return seq::Sequence("distal_repeats", std::move(codes),
                         seq::Alphabet::protein());
  };

  for (const auto seed : seeds) {
    const auto g = seq::synthetic_titin(m, static_cast<std::uint64_t>(seed));

    core::FinderOptions best;
    best.num_top_alignments = tops;
    core::FinderOptions sweep = best;
    sweep.policy = core::RescanPolicy::kExhaustiveSweep;

    const auto e_best = align::make_engine(align::EngineKind::kScalar);
    const auto e_sweep = align::make_engine(align::EngineKind::kScalar);
    const auto r_best = core::find_top_alignments(g.sequence, scoring, best, *e_best);
    const auto r_sweep =
        core::find_top_alignments(g.sequence, scoring, sweep, *e_sweep);
    std::string diff;
    if (!core::same_tops(r_best.tops, r_sweep.tops, &diff)) {
      std::cerr << "policy results diverge: " << diff << '\n';
      return 1;
    }

    const double avoided =
        100.0 * (1.0 - static_cast<double>(r_best.stats.realignments) /
                           static_cast<double>(r_sweep.stats.realignments));
    // Fraction of rectangles realigned per accepted top alignment.
    const double per_top =
        100.0 * static_cast<double>(r_best.stats.realignments) /
        static_cast<double>(r_best.tops.size()) / static_cast<double>(m - 1);

    // SIMD grouping overhead: total rectangle alignments vs scalar. Groups
    // of 4 to match the paper's P-III SSE configuration.
#if REPRO_HAVE_SSE2
    const auto e_simd = align::make_engine(align::EngineKind::kSimd4);
#else
    const auto e_simd = align::make_engine(align::EngineKind::kSimd4Generic);
#endif
    const auto r_simd = core::find_top_alignments(g.sequence, scoring, best, *e_simd);
    const auto aligned = [](const core::FinderStats& st) {
      return st.first_alignments + st.realignments + st.speculative;
    };
    const double extra =
        100.0 * (static_cast<double>(aligned(r_simd.stats)) /
                     static_cast<double>(aligned(r_best.stats)) -
                 1.0);

    // Checkpoint ablation: identical schedule on the distal-repeat
    // workload, default 256 MiB budget vs cache disabled (the off run
    // recomputes every DP row of every realignment sweep).
    const auto distal = distal_repeats(static_cast<std::uint64_t>(seed));
    core::FinderOptions off = best;
    off.checkpoint_mem = 0;
    const auto e_on = align::make_engine(align::EngineKind::kScalar);
    const auto e_off = align::make_engine(align::EngineKind::kScalar);
    const auto r_on = core::find_top_alignments(distal, scoring, best, *e_on);
    const auto r_off = core::find_top_alignments(distal, scoring, off, *e_off);
    if (!core::same_tops(r_on.tops, r_off.tops, &diff)) {
      std::cerr << "checkpoint results diverge: " << diff << '\n';
      return 1;
    }
    const double ckpt_speedup =
        r_on.stats.realign_seconds > 0.0
            ? r_off.stats.realign_seconds / r_on.stats.realign_seconds
            : 1.0;
    const double skipped_pct =
        r_on.stats.rows_swept > 0
            ? 100.0 * static_cast<double>(r_on.stats.rows_skipped) /
                  static_cast<double>(r_on.stats.rows_swept)
            : 0.0;
    const std::uint64_t lookups = r_on.stats.ckpt_hits + r_on.stats.ckpt_misses;
    const double hit_rate =
        lookups > 0 ? 100.0 * static_cast<double>(r_on.stats.ckpt_hits) /
                          static_cast<double>(lookups)
                    : 0.0;
    ckpt_table.add_row({static_cast<long long>(seed),
                        r_off.stats.realign_seconds,
                        r_on.stats.realign_seconds, ckpt_speedup,
                        skipped_pct, hit_rate});
    ckpt_speedup_sum += ckpt_speedup;
    realign_on_sum += r_on.stats.realign_seconds;
    realign_off_sum += r_off.stats.realign_seconds;
    rows_skipped_sum += r_on.stats.rows_skipped;
    rows_swept_sum += r_on.stats.rows_swept;
    ckpt_hits_sum += r_on.stats.ckpt_hits;
    ckpt_misses_sum += r_on.stats.ckpt_misses;
    ckpt_evictions_sum += r_on.stats.ckpt_evictions;

    table.add_row({static_cast<long long>(seed),
                   static_cast<long long>(r_sweep.stats.realignments),
                   static_cast<long long>(r_best.stats.realignments), avoided,
                   per_top, extra});
    avoided_sum += avoided;
    per_top_sum += per_top;
    extra_sum += extra;
    sweep_realigns_sum += r_sweep.stats.realignments;
    best_realigns_sum += r_best.stats.realignments;
    cells_sum += r_best.stats.cells;
    seconds_sum += r_best.stats.seconds;
  }
  table.print(std::cout);
  std::cout << "\npaper reference: 90-97 % of realignments avoided; 3-10 % of "
               "matrices realigned per top alignment; SSE grouping computed "
               "< 0.70 % extra alignments.\n";

  std::cout << "\nCheckpoint-resume realignment on the distal-repeat workload "
               "(random background + dense tandem array; default 256 MiB "
               "budget vs disabled, identical schedule):\n";
  ckpt_table.print(std::cout);

  const double nseeds = static_cast<double>(seeds.size());
  obs::MetricsReport report("bench_scheduler");
  report.param("m", m);
  report.param("tops", tops);
  report.param("seeds", static_cast<std::int64_t>(seeds.size()));
  report.metric("realignments_avoided_pct", avoided_sum / nseeds);
  report.metric("realignments_per_top_pct", per_top_sum / nseeds);
  report.metric("simd_extra_alignments_pct", extra_sum / nseeds);
  if (seconds_sum > 0.0)
    report.metric("cells_per_sec",
                  static_cast<double>(cells_sum) / seconds_sum);
  report.metric("ckpt_realign_speedup", ckpt_speedup_sum / nseeds);
  report.metric("ckpt_rows_skipped_pct",
                rows_swept_sum > 0
                    ? 100.0 * static_cast<double>(rows_skipped_sum) /
                          static_cast<double>(rows_swept_sum)
                    : 0.0);
  report.metric("ckpt_hit_rate_pct",
                ckpt_hits_sum + ckpt_misses_sum > 0
                    ? 100.0 * static_cast<double>(ckpt_hits_sum) /
                          static_cast<double>(ckpt_hits_sum + ckpt_misses_sum)
                    : 0.0);
  report.metric("ckpt_realign_seconds_on", realign_on_sum);
  report.metric("ckpt_realign_seconds_off", realign_off_sum);
  report.counter("ckpt_hits", ckpt_hits_sum);
  report.counter("ckpt_misses", ckpt_misses_sum);
  report.counter("ckpt_evictions", ckpt_evictions_sum);
  report.counter("ckpt_rows_skipped", rows_skipped_sum);
  report.counter("ckpt_rows_swept", rows_swept_sum);
  report.counter("sweep_realignments", sweep_realigns_sum);
  report.counter("best_first_realignments", best_realigns_sum);
  report.counter("cells", cells_sum);
  bench::maybe_write_json(args, report);
  return 0;
}
