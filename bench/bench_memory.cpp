// Memory accounting and the Appendix-A low-memory mode.
//
// The paper: the bottom-row archive of m(m-1)/2 shorts is the largest data
// structure (1.5 GB at m = 40000); the override triangle is a bit triangle
// that "can be compressed if memory usage is an issue"; and on-demand
// recomputation of last rows "would allow an implementation that requires
// only a linear amount of memory", at the cost of extra work. This bench
// reports the measured sizes and the measured cost of the recompute mode.
#include <iostream>

#include "align/bottom_row_store.hpp"
#include "align/override_triangle.hpp"
#include "align/sparse_override.hpp"
#include "bench_common.hpp"
#include "align/linear_traceback.hpp"
#include "align/traceback.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"m", "sequence length for the live run"},
                   {"tops", "top alignments for the live run"},
                   {"json", bench::kJsonFlagHelp}});
  if (args.help_requested()) return 0;
  const int m = static_cast<int>(args.get_int("m", 2000));
  const int tops = static_cast<int>(args.get_int("tops", 15));

  bench::header("Structure sizes vs sequence length");
  util::Table sizes({"m", "bottom rows (MiB)", "override triangle (MiB)",
                     "full matrix, worst rect (MiB)"});
  sizes.set_precision(1);
  for (const long long mm : {2000LL, 8000LL, 34350LL, 40000LL, 100000LL}) {
    const double rows_mib =
        static_cast<double>(mm) * (mm - 1) / 2 * 2 / 1024.0 / 1024.0;
    const double tri_mib =
        static_cast<double>(mm) * (mm - 1) / 2 / 8 / 1024.0 / 1024.0;
    const double matrix_mib =
        static_cast<double>(mm) / 2 * (mm - mm / 2) * 4 / 1024.0 / 1024.0;
    sizes.add_row({mm, rows_mib, tri_mib, matrix_mib});
  }
  sizes.print(std::cout);
  std::cout << "paper: \"1.5 GB at 40000\" for the bottom rows — matches the "
               "i16 layout above; the full traceback matrix exists only "
               "during an acceptance.\n";

  bench::header("Measured archive for m=" + std::to_string(m));
  {
    align::BottomRowStore rows(m);
    std::cout << "BottomRowStore: " << rows.bytes() / 1024.0 / 1024.0
              << " MiB allocated\n";
  }

  bench::header("Override triangle: dense bits vs compressed pair set");
  {
    // Pairs marked by a real run (the triangle is sparse — paper §3).
    core::FinderOptions opt;
    opt.num_top_alignments = tops;
    const auto engine = align::make_best_engine();
    const auto res = core::find_top_alignments(
        seq::synthetic_titin(m, 2003).sequence,
        seq::Scoring::protein_default(), opt, *engine);
    align::SparseOverrideSet sparse(m);
    std::size_t marked = 0;
    for (const auto& top : res.tops) {
      for (const auto& [i, j] : top.pairs) sparse.set(i, j);
      marked += top.pairs.size();
    }
    std::cout << tops << " top alignments mark " << marked << " pairs: dense "
              << align::SparseOverrideSet::dense_bytes(m) / 1024.0
              << " KiB vs sparse " << sparse.bytes() / 1024.0
              << " KiB (density "
              << 200.0 * static_cast<double>(sparse.count()) /
                     (static_cast<double>(m) * (m - 1))
              << " %)\n";
  }

  bench::header("Traceback memory: full matrix vs linear space");
  {
    const auto gg = seq::synthetic_titin(m, 2003);
    const seq::Scoring sc = seq::Scoring::protein_default();
    align::GroupJob job;
    job.seq = gg.sequence.codes();
    job.scoring = &sc;
    job.r0 = m / 2;
    job.count = 1;
    const double t_full =
        bench::time_best_of(3, [&] { (void)align::traceback_best(job); });
    const double t_linear = bench::time_best_of(
        3, [&] { (void)align::traceback_best_linear(job); });
    const double full_mib =
        static_cast<double>(m / 2) * (m - m / 2) * 4 / 1024.0 / 1024.0;
    std::cout << "largest rectangle (r=" << m / 2 << "): full matrix "
              << t_full << " s / ~" << full_mib << " MiB scratch; linear "
              << t_linear << " s / O(m) scratch (paper cites this family as "
                 "'not covered here')\n";
  }

  bench::header("Low-memory mode (Appendix A): archive vs recompute");
  const auto g = seq::synthetic_titin(m, 2003);
  const seq::Scoring scoring = seq::Scoring::protein_default();
  core::FinderOptions archive;
  archive.num_top_alignments = tops;
  core::FinderOptions recompute = archive;
  recompute.memory = core::MemoryMode::kRecomputeRows;

  const auto e1 = align::make_best_engine();
  const auto e2 = align::make_best_engine();
  const auto res_archive = core::find_top_alignments(g.sequence, scoring, archive, *e1);
  const auto res_recompute =
      core::find_top_alignments(g.sequence, scoring, recompute, *e2);
  std::string diff;
  if (!core::same_tops(res_archive.tops, res_recompute.tops, &diff)) {
    std::cerr << "MODE DIVERGENCE: " << diff << '\n';
    return 1;
  }

  util::Table table({"mode", "seconds", "lane-cells", "archive bytes"});
  table.set_precision(3);
  table.add_row({std::string("archive rows (paper)"), res_archive.stats.seconds,
                 static_cast<long long>(res_archive.stats.cells),
                 static_cast<long long>(static_cast<long long>(m) * (m - 1) / 2 * 2)});
  table.add_row({std::string("recompute rows (linear memory)"),
                 res_recompute.stats.seconds,
                 static_cast<long long>(res_recompute.stats.cells), 0LL});
  table.print(std::cout);
  std::cout << "recompute overhead: "
            << 100.0 * (res_recompute.stats.seconds / res_archive.stats.seconds - 1.0)
            << " % time, "
            << 100.0 * (static_cast<double>(res_recompute.stats.cells) /
                            static_cast<double>(res_archive.stats.cells) -
                        1.0)
            << " % cells — bounded by one extra alignment per realignment, "
               "and best-first keeps realignments rare.\nidentical top "
               "alignments in both modes [OK]\n";

  obs::MetricsReport report("bench_memory");
  report.param("m", m);
  report.param("tops", tops);
  report.metric("recompute_time_overhead_pct",
                100.0 * (res_recompute.stats.seconds /
                             res_archive.stats.seconds -
                         1.0));
  report.metric("recompute_cells_overhead_pct",
                100.0 * (static_cast<double>(res_recompute.stats.cells) /
                             static_cast<double>(res_archive.stats.cells) -
                         1.0));
  report.counter("archive_cells", res_archive.stats.cells);
  report.counter("recompute_cells", res_recompute.stats.cells);
  report.counter("archive_bytes",
                 static_cast<std::uint64_t>(m) * (static_cast<std::uint64_t>(m) - 1));
  bench::maybe_write_json(args, report);
  return 0;
}
