// Kernel microbenchmarks (google-benchmark): sustained cell rates of every
// alignment engine, override-triangle probes, queue operations, and the
// full-matrix traceback. These are the primitives behind every table in the
// paper; bench_table*.cpp report the paper-shaped numbers.
//
// With --json <path> the binary instead runs the adaptive-precision
// ablation (u8 vs i16 cell rates per ISA, a same-tops matrix over every
// engine/precision combo, and the escalation behavior on a saturating
// workload) and writes a repro-metrics-v1 record.
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "align/traceback.hpp"
#include "bench_common.hpp"
#include "core/task_queue.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "seq/generator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace repro;

const seq::Scoring& scoring() {
  static const seq::Scoring s = seq::Scoring::protein_default();
  return s;
}

const seq::Sequence& titin(int m) {
  static std::map<int, seq::Sequence> cache;
  auto it = cache.find(m);
  if (it == cache.end())
    it = cache.emplace(m, seq::synthetic_titin(m, 2003).sequence).first;
  return it->second;
}

// u8 microbench workload: random protein under blosum62 (gap open 10) has
// negative score drift, so actual split peaks stay ~O(log m) — around 60 at
// m = 6000, far inside the biased u8 ceiling of 240 — at any benchable
// length. (Random DNA under the paper's cheap gap model open 2 / extend 1
// drifts *positive* and saturates u8 past m ~ 600, so it is unusable here;
// the static headroom bound is a worst case the adaptive engine guards
// against, explicit u8 engines only need the *actual* peaks in range.)
const seq::Sequence& random_protein(int m) {
  static std::map<int, seq::Sequence> cache;
  auto it = cache.find(m);
  if (it == cache.end())
    it = cache.emplace(m,
                       seq::random_sequence(seq::Alphabet::protein(), m, 11))
             .first;
  return it->second;
}

const seq::Scoring& dna_scoring() {
  static const seq::Scoring s = seq::Scoring::paper_example();
  return s;
}

void run_engine_bench_on(benchmark::State& state, align::EngineKind kind,
                         const seq::Sequence& s, const seq::Scoring& sc) {
  const int m = s.length();
  const auto engine = align::make_engine(kind);
  const int r0 = m / 2;
  const int count = engine->lanes();
  std::vector<std::vector<align::Score>> store(static_cast<std::size_t>(count));
  std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    store[static_cast<std::size_t>(k)].resize(static_cast<std::size_t>(m - (r0 + k)));
    outs[static_cast<std::size_t>(k)] = store[static_cast<std::size_t>(k)];
  }
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &sc;
  job.r0 = r0;
  job.count = count;
  for (auto _ : state) {
    engine->align(job, outs);
    benchmark::DoNotOptimize(store[0].data());
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(engine->cells_computed()), benchmark::Counter::kIsRate);
}

void run_engine_bench(benchmark::State& state, align::EngineKind kind) {
  run_engine_bench_on(state, kind, titin(static_cast<int>(state.range(0))),
                      scoring());
}

void run_u8_engine_bench(benchmark::State& state, align::EngineKind kind) {
  run_engine_bench_on(state, kind,
                      random_protein(static_cast<int>(state.range(0))),
                      scoring());
}

void BM_Scalar(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kScalar);
}
void BM_ScalarStriped(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kScalarStriped);
}
void BM_Simd4Generic(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kSimd4Generic);
}
void BM_Simd8Generic(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kSimd8Generic);
}
#if REPRO_HAVE_SSE2
void BM_Simd4Sse2(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kSimd4);
}
void BM_Simd8Sse2(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kSimd8);
}
#endif
void BM_Simd16Avx2(benchmark::State& state) {
  if (!align::avx2_available()) {
    state.SkipWithError("AVX2 not available");
    return;
  }
  run_engine_bench(state, align::EngineKind::kSimd16);
}

// Saturating 8-bit engines (random-protein workload, see random_protein
// above) and the adaptive engine (titin/protein — escalates transparently).
void BM_Simd8x8Generic(benchmark::State& state) {
  run_u8_engine_bench(state, align::EngineKind::kSimd8x8Generic);
}
#if REPRO_HAVE_SSE2
void BM_Simd16x8Sse2(benchmark::State& state) {
  run_u8_engine_bench(state, align::EngineKind::kSimd16x8);
}
#endif
void BM_Simd32x8Avx2(benchmark::State& state) {
  if (!align::avx2_available()) {
    state.SkipWithError("AVX2 not available");
    return;
  }
  run_u8_engine_bench(state, align::EngineKind::kSimd32x8);
}
void BM_AutoBest(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kSimdAuto);
}

BENCHMARK(BM_Scalar)->Arg(1000)->Arg(3000);
BENCHMARK(BM_ScalarStriped)->Arg(1000)->Arg(3000);
BENCHMARK(BM_Simd4Generic)->Arg(3000);
BENCHMARK(BM_Simd8Generic)->Arg(3000);
#if REPRO_HAVE_SSE2
BENCHMARK(BM_Simd4Sse2)->Arg(1000)->Arg(3000);
BENCHMARK(BM_Simd8Sse2)->Arg(1000)->Arg(3000);
#endif
BENCHMARK(BM_Simd16Avx2)->Arg(1000)->Arg(3000);
BENCHMARK(BM_Simd8x8Generic)->Arg(3000);
#if REPRO_HAVE_SSE2
BENCHMARK(BM_Simd16x8Sse2)->Arg(1000)->Arg(3000);
#endif
BENCHMARK(BM_Simd32x8Avx2)->Arg(1000)->Arg(3000);
BENCHMARK(BM_AutoBest)->Arg(1000)->Arg(3000);

// Checkpoint-resume kernel cost: a sweep resumed from a saved (H, MaxY) row
// state at 50 % / 90 % of the group's depth versus the same sweep from
// scratch (depth 0). The per-sweep rate ("sweeps/s") shows the resume win;
// cells/s stays flat because resumed rows are discounted from the counter.
void run_resume_bench(benchmark::State& state, align::EngineKind kind) {
  const int m = static_cast<int>(state.range(0));
  const int pct = static_cast<int>(state.range(1));
  const auto& s = titin(m);
  const auto engine = align::make_engine(kind);
  const int r0 = m / 2;
  const int count = engine->lanes();
  std::vector<std::vector<align::Score>> store(static_cast<std::size_t>(count));
  std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    store[static_cast<std::size_t>(k)].resize(static_cast<std::size_t>(m - (r0 + k)));
    outs[static_cast<std::size_t>(k)] = store[static_cast<std::size_t>(k)];
  }
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &scoring();
  job.r0 = r0;
  job.count = count;
  align::CheckpointSink sink;
  align::CheckpointView view;
  if (pct > 0) {
    const int row = std::max(1, (r0 - 1) * pct / 100);
    sink.stride = row;  // emits rows row, 2*row, ... plus r0-1
    sink.top_row = r0 - 1;
    job.sink = &sink;
    engine->align(job, outs);
    job.sink = nullptr;
    for (int t = 0; t < sink.count; ++t) {
      const align::CheckpointRow& cr = sink.rows[static_cast<std::size_t>(t)];
      if (cr.row != row) continue;
      view.row = cr.row;
      view.lanes = sink.lanes;
      view.elem_size = sink.elem_size;
      view.h = cr.h.data();
      view.max_y = cr.max_y.data();
      view.bytes = cr.h.size();
      job.resume = &view;
    }
  }
  for (auto _ : state) {
    engine->align(job, outs);
    benchmark::DoNotOptimize(store[0].data());
  }
  state.counters["sweeps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(engine->cells_computed()), benchmark::Counter::kIsRate);
}
void BM_ScalarResume(benchmark::State& state) {
  run_resume_bench(state, align::EngineKind::kScalar);
}
void BM_Simd8GenericResume(benchmark::State& state) {
  run_resume_bench(state, align::EngineKind::kSimd8Generic);
}
BENCHMARK(BM_ScalarResume)
    ->Args({2000, 0})
    ->Args({2000, 50})
    ->Args({2000, 90});
BENCHMARK(BM_Simd8GenericResume)
    ->Args({2000, 0})
    ->Args({2000, 50})
    ->Args({2000, 90});

void BM_GeneralGapCell(benchmark::State& state) {
  // The old algorithm's O(n)/cell kernel on a small rectangle.
  const int m = static_cast<int>(state.range(0));
  const auto& s = titin(std::max(m, 200));
  const auto sub = s.subsequence(0, m);
  const auto engine = align::make_engine(align::EngineKind::kGeneralGap);
  align::GroupJob job;
  job.seq = sub.codes();
  job.scoring = &scoring();
  job.r0 = m / 2;
  job.count = 1;
  std::vector<align::Score> row(static_cast<std::size_t>(m - m / 2));
  std::span<align::Score> out(row);
  for (auto _ : state) {
    engine->align(job, std::span<const std::span<align::Score>>(&out, 1));
    benchmark::DoNotOptimize(row.data());
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(engine->cells_computed()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GeneralGapCell)->Arg(200)->Arg(400);

void BM_OverrideContains(benchmark::State& state) {
  const int m = 4000;
  align::OverrideTriangle tri(m);
  util::Rng rng(5);
  for (int k = 0; k < 20000; ++k) {
    const int i = static_cast<int>(rng.below(m - 1));
    const int j = i + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1 - i)));
    tri.set(i, j);
  }
  int i = 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const int a = i % (m - 1);
    acc += tri.contains(a, a + 1 + (i * 7) % (m - 1 - a)) ? 1 : 0;
    ++i;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_OverrideContains);

void BM_QueuePushPop(benchmark::State& state) {
  const auto groups = core::make_groups(8000, 8);
  for (auto _ : state) {
    core::GroupQueue queue;
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      queue.push(static_cast<int>(gi), groups[gi].key());
    while (auto top = queue.pop_best()) benchmark::DoNotOptimize(*top);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_QueuePushPop);

void BM_Traceback(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto& s = titin(m);
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &scoring();
  job.r0 = m / 2;
  job.count = 1;
  for (auto _ : state) {
    const auto tb = align::traceback_best(job);
    benchmark::DoNotOptimize(tb.score);
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * (m / 2) * (m - m / 2),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Traceback)->Arg(1000)->Arg(2000);

// ---------------------------------------------------------------------------
// Adaptive-precision ablation (--json path): u8 vs i16 kernel rates per ISA,
// a same-tops matrix over every engine/precision combo, and the escalation
// demonstration on a saturating workload.

double kernel_rate(align::EngineKind kind, const seq::Sequence& s,
                   const seq::Scoring& sc) {
  const auto engine = align::make_engine(kind);
  const int m = s.length();
  const int r0 = m / 2;
  const int count = engine->lanes();
  std::vector<std::vector<align::Score>> store(static_cast<std::size_t>(count));
  std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    store[static_cast<std::size_t>(k)].resize(
        static_cast<std::size_t>(m - (r0 + k)));
    outs[static_cast<std::size_t>(k)] = store[static_cast<std::size_t>(k)];
  }
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &sc;
  job.r0 = r0;
  job.count = count;
  engine->align(job, outs);  // warm-up: builds the query profile
  engine->reset_counters();
  constexpr int kReps = 5;
  const double secs = bench::time_best_of(kReps, [&] { engine->align(job, outs); });
  const double cells = static_cast<double>(engine->cells_computed()) / kReps;
  return cells / std::max(secs, 1e-12);
}

int run_precision_ablation(int argc, char** argv) {
  util::Args args(argc, argv,
                  {{"m", "kernel-rate sequence length (random DNA)"},
                   {"tops", "top alignments for the same-tops matrix"},
                   {"json", bench::kJsonFlagHelp}});
  if (args.help_requested()) return 0;
  const int m = static_cast<int>(args.get_int("m", 1500));
  const int tops = static_cast<int>(args.get_int("tops", 6));

  obs::MetricsReport report("bench_kernels.precision");
  report.param("m", m);
  report.param("tops", tops);

  // --- u8 vs i16 cell rates, one row per available ISA pair. The
  // random-protein workload stays inside the u8 headroom at any length
  // (see random_protein).
  bench::header("u8 vs i16 kernel rates (random protein, m=" +
                std::to_string(m) + ")");
  const auto& rate_seq = random_protein(m);
  const auto& rate_sc = scoring();
  struct IsaPair {
    std::string isa;
    align::EngineKind u8;
    align::EngineKind i16;
    bool available;
  };
  std::vector<IsaPair> pairs{{"generic", align::EngineKind::kSimd8x8Generic,
                              align::EngineKind::kSimd8Generic, true}};
#if REPRO_HAVE_SSE2
  pairs.push_back({"sse2", align::EngineKind::kSimd16x8,
                   align::EngineKind::kSimd8, true});
#endif
  pairs.push_back({"avx2", align::EngineKind::kSimd32x8,
                   align::EngineKind::kSimd16, align::avx2_available()});
  util::Table rate_table({"isa", "u8 cells/s", "i16 cells/s", "speedup"});
  rate_table.set_precision(2);
  double best_speedup = 0.0;
  for (const auto& p : pairs) {
    if (!p.available) continue;
    const double r8 = kernel_rate(p.u8, rate_seq, rate_sc);
    const double r16 = kernel_rate(p.i16, rate_seq, rate_sc);
    const double speedup = r8 / std::max(r16, 1e-12);
    rate_table.add_row({p.isa, r8, r16, speedup});
    report.metric("i8_cells_per_sec_" + p.isa, r8);
    report.metric("i16_cells_per_sec_" + p.isa, r16);
    report.metric("i8_vs_i16_speedup_" + p.isa, speedup);
    // The SIMD pairs double the lane count, so their speedup is the claim;
    // the generic pair keeps 8 lanes either way and is reported for context.
    if (p.isa != "generic") best_speedup = std::max(best_speedup, speedup);
  }
  rate_table.print(std::cout);
  report.metric("i8_vs_i16_speedup_best", best_speedup);

  // --- Same-tops matrix: every constructible engine/precision combo versus
  // the scalar oracle, on an in-range DNA workload (u8 engines included)
  // and a saturating protein workload (adaptive engines escalate).
  bench::header("same-tops matrix vs scalar");
  core::FinderOptions opt;
  opt.num_top_alignments = tops;
  std::int64_t combos = 0;
  bool all_match = true;
  const auto check_matrix = [&](const seq::Sequence& s, const seq::Scoring& sc,
                                const std::vector<align::EngineKind>& kinds,
                                const std::string& label) {
    const auto scalar = align::make_engine(align::EngineKind::kScalar);
    const auto reference = find_top_alignments(s, sc, opt, *scalar);
    for (const auto kind : kinds) {
      const auto engine = align::make_engine(kind);
      const auto res = find_top_alignments(s, sc, opt, *engine);
      std::string diff;
      const bool ok = core::same_tops(reference.tops, res.tops, &diff);
      ++combos;
      all_match = all_match && ok;
      std::cout << "  " << label << " / " << engine->name()
                << (ok ? ": tops identical\n" : ": MISMATCH " + diff + "\n");
    }
  };
  std::vector<align::EngineKind> wide_kinds{
      align::EngineKind::kScalarStriped, align::EngineKind::kSimd4Generic,
      align::EngineKind::kSimd8Generic, align::EngineKind::kSimd4x32Generic,
      align::EngineKind::kSimdAutoGeneric, align::EngineKind::kSimdAuto};
#if REPRO_HAVE_SSE2
  wide_kinds.push_back(align::EngineKind::kSimd4);
  wide_kinds.push_back(align::EngineKind::kSimd8);
  if (align::sse41_available())
    wide_kinds.push_back(align::EngineKind::kSimd4x32);
#endif
  if (align::avx2_available()) {
    wide_kinds.push_back(align::EngineKind::kSimd16);
    wide_kinds.push_back(align::EngineKind::kSimd8x32);
  }
  std::vector<align::EngineKind> u8_kinds{align::EngineKind::kSimd8x8Generic};
#if REPRO_HAVE_SSE2
  u8_kinds.push_back(align::EngineKind::kSimd16x8);
#endif
  if (align::avx2_available())
    u8_kinds.push_back(align::EngineKind::kSimd32x8);

  const auto in_range = seq::synthetic_dna_tandem(200, 9, 5, 21).sequence;
  std::vector<align::EngineKind> in_range_kinds = wide_kinds;
  in_range_kinds.insert(in_range_kinds.end(), u8_kinds.begin(), u8_kinds.end());
  check_matrix(in_range, dna_scoring(), in_range_kinds, "dna-in-range");

  seq::RepeatSpec spec;
  spec.unit_length = 24;
  spec.copies = 8;
  spec.conservation = 0.95;
  spec.indel_rate = 0.0;
  spec.tandem = true;
  const auto saturating =
      seq::make_repeat_sequence(seq::Alphabet::protein(), 240, spec, 22);
  check_matrix(saturating.sequence, scoring(), wide_kinds, "protein-saturating");
  report.metric("same_tops", all_match ? 1.0 : 0.0);
  report.counter("combos_checked", static_cast<std::uint64_t>(combos));

  // --- Escalation demonstration: the adaptive engine on the saturating
  // workload must escalate (and, per the matrix above, still match scalar).
  const auto auto_engine = align::make_engine(align::EngineKind::kSimdAuto);
  const auto sat_res =
      find_top_alignments(saturating.sequence, scoring(), opt, *auto_engine);
  const auto prec = auto_engine->precision_stats();
  const double esc_rate =
      prec.i8_sweeps > 0 ? 100.0 * static_cast<double>(prec.escalations) /
                               static_cast<double>(prec.i8_sweeps)
                         : 0.0;
  bench::header("adaptive escalation (saturating protein repeats)");
  std::cout << "  engine " << auto_engine->name() << ": " << prec.i8_sweeps
            << " u8 sweeps, " << prec.escalations << " escalations ("
            << esc_rate << " %), " << prec.i16_sweeps << " i16 sweeps, "
            << sat_res.tops.size() << " tops\n";
  report.counter("i8_sweeps", prec.i8_sweeps);
  report.counter("i16_sweeps", prec.i16_sweeps);
  report.counter("escalations", prec.escalations);
  report.counter("profile_hits", prec.profile_hits);
  report.metric("escalation_rate_pct", esc_rate);

  bench::maybe_write_json(args, report);
  return all_match && prec.escalations > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // --json selects the precision-ablation path; everything else is
  // google-benchmark's own CLI, exactly as BENCHMARK_MAIN() would run it.
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--json" || arg.rfind("--json=", 0) == 0)
      return run_precision_ablation(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
