// Kernel microbenchmarks (google-benchmark): sustained cell rates of every
// alignment engine, override-triangle probes, queue operations, and the
// full-matrix traceback. These are the primitives behind every table in the
// paper; bench_table*.cpp report the paper-shaped numbers.
#include <benchmark/benchmark.h>

#include <map>

#include "align/engine.hpp"
#include "align/override_triangle.hpp"
#include "align/traceback.hpp"
#include "core/task_queue.hpp"
#include "seq/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace repro;

const seq::Scoring& scoring() {
  static const seq::Scoring s = seq::Scoring::protein_default();
  return s;
}

const seq::Sequence& titin(int m) {
  static std::map<int, seq::Sequence> cache;
  auto it = cache.find(m);
  if (it == cache.end())
    it = cache.emplace(m, seq::synthetic_titin(m, 2003).sequence).first;
  return it->second;
}

void run_engine_bench(benchmark::State& state, align::EngineKind kind) {
  const int m = static_cast<int>(state.range(0));
  const auto& s = titin(m);
  const auto engine = align::make_engine(kind);
  const int r0 = m / 2;
  const int count = engine->lanes();
  std::vector<std::vector<align::Score>> store(static_cast<std::size_t>(count));
  std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    store[static_cast<std::size_t>(k)].resize(static_cast<std::size_t>(m - (r0 + k)));
    outs[static_cast<std::size_t>(k)] = store[static_cast<std::size_t>(k)];
  }
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &scoring();
  job.r0 = r0;
  job.count = count;
  for (auto _ : state) {
    engine->align(job, outs);
    benchmark::DoNotOptimize(store[0].data());
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(engine->cells_computed()), benchmark::Counter::kIsRate);
}

void BM_Scalar(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kScalar);
}
void BM_ScalarStriped(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kScalarStriped);
}
void BM_Simd4Generic(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kSimd4Generic);
}
void BM_Simd8Generic(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kSimd8Generic);
}
#if REPRO_HAVE_SSE2
void BM_Simd4Sse2(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kSimd4);
}
void BM_Simd8Sse2(benchmark::State& state) {
  run_engine_bench(state, align::EngineKind::kSimd8);
}
#endif
void BM_Simd16Avx2(benchmark::State& state) {
  if (!align::avx2_available()) {
    state.SkipWithError("AVX2 not available");
    return;
  }
  run_engine_bench(state, align::EngineKind::kSimd16);
}

BENCHMARK(BM_Scalar)->Arg(1000)->Arg(3000);
BENCHMARK(BM_ScalarStriped)->Arg(1000)->Arg(3000);
BENCHMARK(BM_Simd4Generic)->Arg(3000);
BENCHMARK(BM_Simd8Generic)->Arg(3000);
#if REPRO_HAVE_SSE2
BENCHMARK(BM_Simd4Sse2)->Arg(1000)->Arg(3000);
BENCHMARK(BM_Simd8Sse2)->Arg(1000)->Arg(3000);
#endif
BENCHMARK(BM_Simd16Avx2)->Arg(1000)->Arg(3000);

// Checkpoint-resume kernel cost: a sweep resumed from a saved (H, MaxY) row
// state at 50 % / 90 % of the group's depth versus the same sweep from
// scratch (depth 0). The per-sweep rate ("sweeps/s") shows the resume win;
// cells/s stays flat because resumed rows are discounted from the counter.
void run_resume_bench(benchmark::State& state, align::EngineKind kind) {
  const int m = static_cast<int>(state.range(0));
  const int pct = static_cast<int>(state.range(1));
  const auto& s = titin(m);
  const auto engine = align::make_engine(kind);
  const int r0 = m / 2;
  const int count = engine->lanes();
  std::vector<std::vector<align::Score>> store(static_cast<std::size_t>(count));
  std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    store[static_cast<std::size_t>(k)].resize(static_cast<std::size_t>(m - (r0 + k)));
    outs[static_cast<std::size_t>(k)] = store[static_cast<std::size_t>(k)];
  }
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &scoring();
  job.r0 = r0;
  job.count = count;
  align::CheckpointSink sink;
  align::CheckpointView view;
  if (pct > 0) {
    const int row = std::max(1, (r0 - 1) * pct / 100);
    sink.stride = row;  // emits rows row, 2*row, ... plus r0-1
    sink.top_row = r0 - 1;
    job.sink = &sink;
    engine->align(job, outs);
    job.sink = nullptr;
    for (int t = 0; t < sink.count; ++t) {
      const align::CheckpointRow& cr = sink.rows[static_cast<std::size_t>(t)];
      if (cr.row != row) continue;
      view.row = cr.row;
      view.lanes = sink.lanes;
      view.elem_size = sink.elem_size;
      view.h = cr.h.data();
      view.max_y = cr.max_y.data();
      view.bytes = cr.h.size();
      job.resume = &view;
    }
  }
  for (auto _ : state) {
    engine->align(job, outs);
    benchmark::DoNotOptimize(store[0].data());
  }
  state.counters["sweeps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(engine->cells_computed()), benchmark::Counter::kIsRate);
}
void BM_ScalarResume(benchmark::State& state) {
  run_resume_bench(state, align::EngineKind::kScalar);
}
void BM_Simd8GenericResume(benchmark::State& state) {
  run_resume_bench(state, align::EngineKind::kSimd8Generic);
}
BENCHMARK(BM_ScalarResume)
    ->Args({2000, 0})
    ->Args({2000, 50})
    ->Args({2000, 90});
BENCHMARK(BM_Simd8GenericResume)
    ->Args({2000, 0})
    ->Args({2000, 50})
    ->Args({2000, 90});

void BM_GeneralGapCell(benchmark::State& state) {
  // The old algorithm's O(n)/cell kernel on a small rectangle.
  const int m = static_cast<int>(state.range(0));
  const auto& s = titin(std::max(m, 200));
  const auto sub = s.subsequence(0, m);
  const auto engine = align::make_engine(align::EngineKind::kGeneralGap);
  align::GroupJob job;
  job.seq = sub.codes();
  job.scoring = &scoring();
  job.r0 = m / 2;
  job.count = 1;
  std::vector<align::Score> row(static_cast<std::size_t>(m - m / 2));
  std::span<align::Score> out(row);
  for (auto _ : state) {
    engine->align(job, std::span<const std::span<align::Score>>(&out, 1));
    benchmark::DoNotOptimize(row.data());
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(engine->cells_computed()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GeneralGapCell)->Arg(200)->Arg(400);

void BM_OverrideContains(benchmark::State& state) {
  const int m = 4000;
  align::OverrideTriangle tri(m);
  util::Rng rng(5);
  for (int k = 0; k < 20000; ++k) {
    const int i = static_cast<int>(rng.below(m - 1));
    const int j = i + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m - 1 - i)));
    tri.set(i, j);
  }
  int i = 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const int a = i % (m - 1);
    acc += tri.contains(a, a + 1 + (i * 7) % (m - 1 - a)) ? 1 : 0;
    ++i;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_OverrideContains);

void BM_QueuePushPop(benchmark::State& state) {
  const auto groups = core::make_groups(8000, 8);
  for (auto _ : state) {
    core::GroupQueue queue;
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      queue.push(static_cast<int>(gi), groups[gi].key());
    while (auto top = queue.pop_best()) benchmark::DoNotOptimize(*top);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_QueuePushPop);

void BM_Traceback(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto& s = titin(m);
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &scoring();
  job.r0 = m / 2;
  job.count = 1;
  for (auto _ : state) {
    const auto tb = align::traceback_best(job);
    benchmark::DoNotOptimize(tb.score);
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * (m / 2) * (m - m / 2),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Traceback)->Arg(1000)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
