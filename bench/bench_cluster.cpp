// Cluster-protocol bench: drives the REAL mpisim master/worker finder
// (paper §4.3) across rank counts and row-storage modes, fault-free and
// under a seeded fault schedule (drops, delays, duplicates, worker
// crashes). Every run is verified byte-identical to the sequential finder
// — the protocol's determinism guarantee — and the table reports message
// volume plus the recovery counters (retries, reassignments, rebuilds,
// workers lost) that quantify what fault tolerance costs.
//
// This measures protocol overhead and recovery behaviour, not scaling:
// ranks are threads on one host, so wall time grows with rank count. For
// the paper's Fig.-8 scaling shape, see bench_fig8 (virtual time).
#include <iostream>

#include "bench_common.hpp"
#include "cluster/master_worker.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"m", "sequence length"},
                   {"tops", "top alignments"},
                   {"seed", "sequence generator seed"},
                   {"ranks", "comma-separated rank counts incl. master"},
                   {"row-storage", "replica (default) | partitioned | both"},
                   {"fault-seed", "seed for the injected fault schedule"},
                   {"fault-plan",
                    "explicit fault schedule (overrides --fault-seed), e.g. "
                    "'drop:from=1,to=0,op=3;crash:rank=2,op=40'"},
                   {"json", bench::kJsonFlagHelp}});
  if (args.help_requested()) return 0;
  const int m = static_cast<int>(args.get_int("m", 600));
  const int tops = static_cast<int>(args.get_int("tops", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2003));
  const auto rank_list = args.get_int_list("ranks", {2, 4, 8});
  const std::string storage_arg = args.get("row-storage", "replica");
  const auto fault_seed =
      static_cast<std::uint64_t>(args.get_int("fault-seed", 1));

  bench::header("Cluster protocol (m=" + std::to_string(m) + ", " +
                std::to_string(tops) + " tops; faulted runs verified "
                "identical to sequential)");

  const auto g = seq::synthetic_titin(m, seed);
  const seq::Scoring scoring = seq::Scoring::protein_default();
  core::FinderOptions opt;
  opt.num_top_alignments = tops;

  const auto reference_engine = align::make_engine(align::EngineKind::kScalar);
  const auto reference =
      core::find_top_alignments(g.sequence, scoring, opt, *reference_engine);
  const auto factory = align::engine_factory(align::EngineKind::kScalar);

  std::vector<cluster::RowStorage> storages;
  if (storage_arg == "replica" || storage_arg == "both")
    storages.push_back(cluster::RowStorage::kMasterReplica);
  if (storage_arg == "partitioned" || storage_arg == "both")
    storages.push_back(cluster::RowStorage::kPartitioned);
  if (storages.empty()) {
    std::cerr << "--row-storage must be replica, partitioned, or both\n";
    return 1;
  }

  util::Table table({"ranks", "storage", "faults", "seconds", "messages",
                     "words", "injected", "retries", "reassigns", "rebuilds",
                     "lost"});
  table.set_precision(3);

  std::uint64_t messages_sum = 0, words_sum = 0, injected_sum = 0;
  std::uint64_t retries_sum = 0, reassign_sum = 0, rebuild_sum = 0,
                 lost_sum = 0;
  double clean_seconds_sum = 0.0, faulted_seconds_sum = 0.0;
  int runs = 0;

  for (const auto storage : storages) {
    const char* storage_name =
        storage == cluster::RowStorage::kPartitioned ? "partitioned"
                                                     : "replica";
    for (const auto ranks : rank_list) {
      for (const bool faulted : {false, true}) {
        cluster::ClusterOptions copt;
        copt.ranks = static_cast<int>(ranks);
        copt.row_storage = storage;
        copt.finder = opt;
        if (faulted) {
          if (args.has("fault-plan"))
            copt.fault_plan = cluster::FaultPlan::parse(
                args.get("fault-plan", ""));
          else
            copt.fault_plan =
                cluster::FaultPlan::from_seed(fault_seed, copt.ranks);
          if (copt.fault_plan.empty()) continue;  // nothing to inject
        }
        cluster::ClusterRunInfo info;
        core::FinderResult res;
        const double secs = bench::time_once([&] {
          res = cluster::find_top_alignments_cluster(g.sequence, scoring,
                                                     copt, factory, &info);
        });
        std::string diff;
        if (!core::same_tops(res.tops, reference.tops, &diff)) {
          std::cerr << "cluster run diverged from sequential (ranks="
                    << ranks << ", " << storage_name
                    << (faulted ? ", faulted" : "") << "): " << diff << '\n';
          return 1;
        }
        table.add_row({static_cast<long long>(ranks), storage_name,
                       faulted ? copt.fault_plan.to_string().substr(0, 24)
                               : "-",
                       secs, static_cast<long long>(info.messages),
                       static_cast<long long>(info.payload_words),
                       static_cast<long long>(info.faults_injected),
                       static_cast<long long>(info.retries),
                       static_cast<long long>(info.reassignments),
                       static_cast<long long>(info.row_rebuilds),
                       static_cast<long long>(info.workers_lost)});
        messages_sum += info.messages;
        words_sum += info.payload_words;
        injected_sum += info.faults_injected;
        retries_sum += info.retries;
        reassign_sum += info.reassignments;
        rebuild_sum += info.row_rebuilds;
        lost_sum += info.workers_lost;
        (faulted ? faulted_seconds_sum : clean_seconds_sum) += secs;
        ++runs;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nall " << runs << " runs matched the sequential finder's "
            << reference.tops.size() << " top alignments.\n";

  obs::MetricsReport report("bench_cluster");
  report.param("m", m);
  report.param("tops", tops);
  report.param("fault_seed", static_cast<std::int64_t>(fault_seed));
  report.param("runs", runs);
  report.metric("clean_seconds", clean_seconds_sum);
  report.metric("faulted_seconds", faulted_seconds_sum);
  report.counter("messages", messages_sum);
  report.counter("payload_words", words_sum);
  report.counter("faults_injected", injected_sum);
  report.counter("retries", retries_sum);
  report.counter("reassignments", reassign_sum);
  report.counter("row_rebuilds", rebuild_sum);
  report.counter("workers_lost", lost_sum);
  bench::maybe_write_json(args, report);
  return 0;
}
