// Group-width ablation (paper §4.1/§4.2): how the fixed SIMD group size
// trades kernel throughput against speculative lane work.
//
// The paper argues small fixed groups (4/8 neighbouring matrices) speculate
// cheaply because neighbours have similar scores, while "very large fixed
// groups" waste work on dissimilar members — that is why the MIMD levels
// use dynamic scheduling instead of bigger static groups. This bench sweeps
// the group width on one host: per-width wall time, realignments,
// speculative lane alignments, and the extra-alignment percentage vs the
// scalar (width-1) schedule.
#include <iostream>

#include "bench_common.hpp"
#include "core/top_alignment_finder.hpp"
#include "core/verify.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"m", "sequence length"},
                   {"tops", "top alignments"},
                   {"json", bench::kJsonFlagHelp}});
  if (args.help_requested()) return 0;
  const int m = static_cast<int>(args.get_int("m", 2000));
  const int tops = static_cast<int>(args.get_int("tops", 20));

  bench::header("Group-width ablation (m=" + std::to_string(m) + ", " +
                std::to_string(tops) + " tops)");
  const auto g = seq::synthetic_titin(m, 2003);
  const seq::Scoring scoring = seq::Scoring::protein_default();

  struct Config {
    std::string label;
    align::EngineKind kind;
  };
  std::vector<Config> configs{{"width 1 (scalar)", align::EngineKind::kScalar}};
#if REPRO_HAVE_SSE2
  configs.push_back({"width 4 (SSE2 i16)", align::EngineKind::kSimd4});
  configs.push_back({"width 8 (SSE2 i16)", align::EngineKind::kSimd8});
#endif
  if (align::sse41_available())
    configs.push_back({"width 4 (SSE4.1 i32)", align::EngineKind::kSimd4x32});
  if (align::avx2_available()) {
    configs.push_back({"width 8 (AVX2 i32)", align::EngineKind::kSimd8x32});
    configs.push_back({"width 16 (AVX2 i16)", align::EngineKind::kSimd16});
  }

  core::FinderOptions opt;
  opt.num_top_alignments = tops;

  util::Table table({"group", "seconds", "realigns", "speculative",
                     "extra aligns %", "Mcells/s"});
  table.set_precision(2);
  obs::MetricsReport report("bench_groups");
  report.param("m", m);
  report.param("tops", tops);
  std::uint64_t scalar_aligned = 0;
  std::vector<core::TopAlignment> reference;
  for (const auto& config : configs) {
    const auto engine = align::make_engine(config.kind);
    const auto res = core::find_top_alignments(g.sequence, scoring, opt, *engine);
    if (reference.empty()) {
      reference = res.tops;
    } else {
      std::string diff;
      if (!core::same_tops(reference, res.tops, &diff)) {
        std::cerr << "GROUPING CHANGED RESULTS (" << config.label << "): "
                  << diff << '\n';
        return 1;
      }
    }
    const std::uint64_t aligned = res.stats.first_alignments +
                                  res.stats.realignments + res.stats.speculative;
    if (config.kind == align::EngineKind::kScalar) scalar_aligned = aligned;
    const double extra = 100.0 * (static_cast<double>(aligned) /
                                      static_cast<double>(scalar_aligned) -
                                  1.0);
    table.add_row({config.label, res.stats.seconds,
                   static_cast<long long>(res.stats.realignments),
                   static_cast<long long>(res.stats.speculative),
                   extra,
                   static_cast<double>(res.stats.cells) / res.stats.seconds / 1e6});
    report.metric(engine->name() + ".extra_alignments_pct", extra);
    report.metric(engine->name() + ".cells_per_sec",
                  static_cast<double>(res.stats.cells) / res.stats.seconds);
    report.counter(engine->name() + ".speculative", res.stats.speculative);
  }
  table.print(std::cout);
  std::cout << "\nall widths produced identical top alignments [OK]\n"
            << "paper reference: width-4 SSE speculation cost < 0.70 % extra "
               "alignments on titin (m = 34350); the extra-alignment share "
               "grows as groups widen relative to the per-top realignment "
               "set — the reason the thread/cluster levels schedule "
               "dynamically instead of using larger static groups.\n";
  bench::maybe_write_json(args, report);
  return 0;
}
