// Cache-awareness ablation (paper §4.1 / §5.1): vertical striping keeps the
// row state in L1.
//
// Paper claims: for the SSE kernel, striping is up to 6.5x and on average
// ~4x faster than the same kernel without striping; for the conventional
// kernel the gain is a marginal 16 %. (2003-era cache hierarchies; modern
// hardware prefetchers shrink the gap — the shape to check is
// striped <= unstriped, with the gap growing with matrix width.)
#include <iostream>

#include "bench_common.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

double run_group(repro::align::Engine& engine, const repro::seq::Sequence& s,
                 const repro::seq::Scoring& scoring, int r0, int reps) {
  using namespace repro;
  const int m = s.length();
  const int count = std::min(engine.lanes(), m - 1 - r0 + 1);
  std::vector<std::vector<align::Score>> store(static_cast<std::size_t>(count));
  std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    store[static_cast<std::size_t>(k)].resize(static_cast<std::size_t>(m - (r0 + k)));
    outs[static_cast<std::size_t>(k)] = store[static_cast<std::size_t>(k)];
  }
  align::GroupJob job;
  job.seq = s.codes();
  job.scoring = &scoring;
  job.r0 = r0;
  job.count = count;
  return bench::time_best_of(reps, [&] { engine.align(job, outs); });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"m", "sequence length"},
                   {"paper-scale", "use the paper's sequence length (34350)"},
                   {"reps", "timing repetitions"},
                   {"json", bench::kJsonFlagHelp}});
  if (args.help_requested()) return 0;
  int m = static_cast<int>(args.get_int("m", 8000));
  if (args.get_flag("paper-scale")) m = 34350;
  const int reps = static_cast<int>(args.get_int("reps", 3));

  bench::header("Cache-aware striping ablation (m=" + std::to_string(m) + ")");

  const auto g = seq::synthetic_titin(m, 2003);
  const seq::Scoring scoring = seq::Scoring::protein_default();

  struct Config {
    std::string label;
    align::EngineKind striped;
    align::EngineKind plain;  // same kernel, striping disabled
  };
  std::vector<Config> configs{
      {"scalar", align::EngineKind::kScalarStriped, align::EngineKind::kScalarStriped}};
#if REPRO_HAVE_SSE2
  configs.push_back({"simd8-sse2", align::EngineKind::kSimd8, align::EngineKind::kSimd8});
  configs.push_back({"simd4-sse2", align::EngineKind::kSimd4, align::EngineKind::kSimd4});
#endif
  if (align::avx2_available())
    configs.push_back({"simd16-avx2", align::EngineKind::kSimd16, align::EngineKind::kSimd16});

  // Matrix shapes: wide-and-short rectangles stress the row state the most.
  const std::vector<int> splits{m / 8, m / 4, m / 2, 3 * m / 4};

  util::Table table({"kernel", "split r", "striped (s)", "no stripes (s)",
                     "speedup from striping"});
  table.set_precision(3);
  std::vector<double> ratios_simd, ratios_scalar;
  for (const auto& config : configs) {
    for (const int r0 : splits) {
      const auto striped = align::make_engine(config.striped, /*stripe=*/0);
      const auto plain = align::make_engine(config.plain, /*stripe=*/-1);
      const double t_striped = run_group(*striped, g.sequence, scoring, r0, reps);
      const double t_plain = run_group(*plain, g.sequence, scoring, r0, reps);
      const double ratio = t_plain / t_striped;
      (config.label == "scalar" ? ratios_scalar : ratios_simd).push_back(ratio);
      table.add_row({config.label, static_cast<long long>(r0), t_striped,
                     t_plain, ratio});
    }
  }
  table.print(std::cout);

  obs::MetricsReport report("bench_striping");
  report.param("m", m);
  report.param("reps", reps);
  if (!ratios_simd.empty()) {
    const auto s = util::summarize(ratios_simd);
    std::cout << "\nSIMD striping speedup: min " << s.min << ", avg " << s.mean
              << ", max " << s.max << "   (paper: avg ~4x, up to 6.5x on a "
                 "Pentium III)\n";
    report.metric("simd_striping_speedup_avg", s.mean);
    report.metric("simd_striping_speedup_max", s.max);
  }
  if (!ratios_scalar.empty()) {
    const auto s = util::summarize(ratios_scalar);
    std::cout << "scalar striping speedup: avg " << s.mean
              << "   (paper: ~1.16x)\n";
    report.metric("scalar_striping_speedup_avg", s.mean);
  }
  std::cout << "note: 2003-era L1/L2 penalties were far larger; modern "
               "prefetchers shrink these gaps (see EXPERIMENTS.md).\n";
  bench::maybe_write_json(args, report);
  return 0;
}
