// Shared helpers for the paper-reproduction benches.
#pragma once

#include <iostream>
#include <string>

#include "align/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "seq/generator.hpp"
#include "seq/scoring.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

namespace repro::bench {

/// Standard help text for the benches' --json flag; every table bench
/// accepts it and writes one BENCH_<name>.json-style perf record.
///
/// JSON parity note (the de-facto bench/README): the table benches
/// (bench_scheduler, bench_table*) emit the repro-metrics-v1 format below
/// via --json <path>. bench_kernels is a google-benchmark binary with one
/// carve-out: `bench_kernels --json <path>` runs the adaptive-precision
/// ablation (u8-vs-i16 rates, same-tops matrix, escalation stats) and
/// writes the same repro-metrics-v1 record as the table benches, while the
/// microbenchmarks' machine-readable output still comes from
/// google-benchmark's native serializer:
///
///   bench_kernels --benchmark_format=json [--benchmark_out=<path>]
///
/// which carries the same per-benchmark counters (cells/s, sweeps/s) as the
/// human-readable console table. tools/bench_smoke.sh consumes both formats
/// and compares bench_scheduler's record against the checked-in
/// BENCH_scheduler.json baseline.
inline constexpr const char* kJsonFlagHelp =
    "write a repro-metrics-v1 JSON perf record to this path";

/// When the bench was invoked with --json <path>, attaches the global obs
/// registry to `report` and writes it there. Returns true when written.
inline bool maybe_write_json(const util::Args& args, obs::MetricsReport& report) {
  const std::string path = args.get("json", "");
  if (path.empty()) return false;
  report.include_registry(obs::Registry::global());
  report.write_file(path);
  std::cout << "wrote perf record to " << path << '\n';
  return true;
}

/// Prints a section header in a uniform style.
inline void header(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

/// Median-of-three timing of a callable returning its wall seconds.
template <typename Fn>
double time_once(Fn&& fn) {
  util::WallTimer timer;
  fn();
  return timer.seconds();
}

template <typename Fn>
double time_best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) best = std::min(best, time_once(fn));
  return best;
}

/// Measures an engine's sustained lane-cells/second on the largest rectangle
/// of a titin-like sequence of length m (used to calibrate the virtual
/// cluster's cost model with *this host's* real kernel throughput).
inline double measure_cells_per_sec(align::Engine& engine, int m,
                                    const seq::Scoring& scoring) {
  const auto g = seq::synthetic_titin(m, 7);
  const int r0 = m / 2;
  const int count = std::min(engine.lanes(), m - 1 - r0 + 1);
  std::vector<std::vector<align::Score>> rows(static_cast<std::size_t>(count));
  std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    rows[static_cast<std::size_t>(k)].resize(static_cast<std::size_t>(m - (r0 + k)));
    outs[static_cast<std::size_t>(k)] = rows[static_cast<std::size_t>(k)];
  }
  align::GroupJob job;
  job.seq = g.sequence.codes();
  job.scoring = &scoring;
  job.r0 = r0;
  job.count = count;
  engine.reset_counters();
  const double secs = time_best_of(3, [&] { engine.align(job, outs); });
  const auto cells = static_cast<double>(engine.cells_computed()) / 3.0;
  return cells / std::max(secs, 1e-12) / 1.0;
}

}  // namespace repro::bench
