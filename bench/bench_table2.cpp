// Table 2 reproduction: maximum alignment times — conventional instruction
// set vs coarse-grained SIMD (paper §5.1).
//
// Paper (times for the largest titin rectangle, 17175 x 17175):
//                 conventional   SSE (4 lanes)   SSE2 (8 lanes)
//   Pentium III   5.2 s / 1       3.0 s / 4       —
//   Pentium 4     2.7 s / 1       1.8 s / 4       2.2 s / 8
//   speed improvements: 6.9 (P-III SSE), 6.0 (P4 SSE), 9.8 (P4 SSE2);
//   >1 G cells/s; whole-run SSE speedup 6.8; extra SSE alignments < 0.70 %.
//
// We run the same experiment on this host: the largest rectangle of a
// titin-like protein, one engine per column, plus the whole-run ratio. The
// shape to check: per-matrix speed improvement well above the lane count's
// naive share, i.e. the coarse-grained trick pays beyond vector width.
#include <iostream>

#include "bench_common.hpp"
#include "core/top_alignment_finder.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct EngineRow {
  std::string label;
  repro::align::EngineKind kind;
  int lanes;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  util::Args args(argc, argv,
                  {{"m", "sequence length (paper: 34350)"},
                   {"paper-scale", "use the paper's sequence length"},
                   {"tops", "top alignments for the whole-run ratio"},
                   {"reps", "timing repetitions"},
                   {"json", bench::kJsonFlagHelp}});
  if (args.help_requested()) return 0;

  int m = static_cast<int>(args.get_int("m", 6000));
  if (args.get_flag("paper-scale")) m = 34350;
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const int tops = static_cast<int>(args.get_int("tops", 10));

  bench::header("Table 2 — maximum alignment times, largest rectangle of a "
                "titin-like protein (m=" + std::to_string(m) + ")");

  const auto g = seq::synthetic_titin(m, 2003);
  const seq::Scoring scoring = seq::Scoring::protein_default();

  std::vector<EngineRow> rows{
      {"conventional (scalar, 32-bit)", align::EngineKind::kScalar, 1},
      {"scalar + cache striping", align::EngineKind::kScalarStriped, 1},
  };
#if REPRO_HAVE_SSE2
  rows.push_back({"SIMD 4 x i16 (paper: P-III SSE)", align::EngineKind::kSimd4, 4});
  rows.push_back({"SIMD 8 x i16 (paper: P4 SSE2)", align::EngineKind::kSimd8, 8});
#endif
  if (align::avx2_available())
    rows.push_back({"SIMD 16 x i16 (AVX2 successor)", align::EngineKind::kSimd16, 16});

  util::Table table({"engine", "sec / group", "matrices", "per-matrix speedup",
                     "Mcells/s"});
  table.set_precision(3);

  const int r0 = m / 2;
  double scalar_per_matrix = 0.0;
  obs::MetricsReport report("bench_table2");
  report.param("m", m);
  report.param("tops", tops);
  report.param("reps", reps);
  for (const auto& row : rows) {
    const auto engine = align::make_engine(row.kind);
    const int count = row.lanes;
    std::vector<std::vector<align::Score>> outs_store(static_cast<std::size_t>(count));
    std::vector<std::span<align::Score>> outs(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
      outs_store[static_cast<std::size_t>(k)].resize(
          static_cast<std::size_t>(m - (r0 + k)));
      outs[static_cast<std::size_t>(k)] = outs_store[static_cast<std::size_t>(k)];
    }
    align::GroupJob job;
    job.seq = g.sequence.codes();
    job.scoring = &scoring;
    job.r0 = r0;
    job.count = count;
    const double secs = bench::time_best_of(reps, [&] { engine->align(job, outs); });
    const double per_matrix = secs / count;
    if (row.kind == align::EngineKind::kScalar) scalar_per_matrix = per_matrix;
    const double cells = static_cast<double>(r0 + count - 1) *
                         static_cast<double>(m - r0) * row.lanes;
    table.add_row({row.label, secs, static_cast<long long>(count),
                   scalar_per_matrix / per_matrix, cells / secs / 1e6});
    report.metric(engine->name() + ".cells_per_sec", cells / secs);
    report.metric(engine->name() + ".per_matrix_speedup",
                  scalar_per_matrix / per_matrix);
  }
  table.print(std::cout);
  std::cout << "\npaper reference: SSE 6.9x (P-III) / 6.0x (P4), SSE2 9.8x; "
               ">1000 Mcells/s on the P4.\n";

  // Whole-run ratio (the paper's "total runtime of the SSE version is 6.8
  // times as low"), on a smaller instance so the scalar run stays short.
  const int run_m = std::min(m, 1500);
  const auto small = seq::synthetic_titin(run_m, 7);
  core::FinderOptions opt;
  opt.num_top_alignments = tops;
  const auto scalar_engine = align::make_engine(align::EngineKind::kScalar);
  const auto scalar_run =
      core::find_top_alignments(small.sequence, scoring, opt, *scalar_engine);
#if REPRO_HAVE_SSE2
  const auto simd_engine = align::make_engine(align::EngineKind::kSimd8);
#else
  const auto simd_engine = align::make_engine(align::EngineKind::kSimd8Generic);
#endif
  const auto simd_run =
      core::find_top_alignments(small.sequence, scoring, opt, *simd_engine);
  const auto aligned = [](const core::FinderStats& st) {
    return st.first_alignments + st.realignments + st.speculative;
  };
  const double extra =
      100.0 * (static_cast<double>(aligned(simd_run.stats)) /
                   static_cast<double>(aligned(scalar_run.stats)) -
               1.0);
  std::cout << "\nwhole-run comparison (m=" << run_m << ", " << tops
            << " tops):\n  scalar " << scalar_run.stats.seconds << " s vs "
            << simd_engine->name() << " " << simd_run.stats.seconds
            << " s  ->  total-runtime speedup "
            << scalar_run.stats.seconds / simd_run.stats.seconds
            << " (paper: 6.8)\n  extra lane-cells computed by SIMD grouping: "
            << extra << " % (paper: < 0.70 % extra alignments)\n";

  report.param("run_m", run_m);
  report.metric("whole_run_speedup",
                scalar_run.stats.seconds / simd_run.stats.seconds);
  report.metric("simd_extra_alignments_pct", extra);
  if (simd_run.stats.seconds > 0.0)
    report.metric("whole_run_cells_per_sec",
                  static_cast<double>(simd_run.stats.cells) /
                      simd_run.stats.seconds);
  report.counter("scalar_run_cells", scalar_run.stats.cells);
  report.counter("simd_run_cells", simd_run.stats.cells);
  report.counter("simd_run_realignments", simd_run.stats.realignments);
  bench::maybe_write_json(args, report);
  return 0;
}
